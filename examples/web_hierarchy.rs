//! Exploring the density hierarchy of a web-like graph with LCPS — the
//! k-core analysis that Carmi et al. and Alvarez-Hamelin et al. ran on
//! internet topologies (paper §3.1), on an R-MAT surrogate.
//!
//! ```sh
//! cargo run --release --example web_hierarchy
//! ```

use nucleus_hierarchy::gen::rmat::{rmat, RmatParams};
use nucleus_hierarchy::prelude::*;

fn main() {
    let g = rmat(14, 8, RmatParams::skewed(), 7);
    println!("R-MAT web surrogate: {} vertices, {} edges", g.n(), g.m());

    // LCPS: the paper's fastest k-core hierarchy algorithm (Table 4).
    let d = decompose(&g, Kind::Core, Algorithm::Lcps).expect("core decomposition");
    println!("{}\n", describe(&d));

    // Shell sizes: how many vertices sit at each λ (the "core collapse
    // sequence" of Seidman).
    let hist = d.peeling.lambda_histogram();
    println!("core number distribution (non-empty shells):");
    for (k, count) in hist.iter().enumerate() {
        if *count > 0 && (k < 4 || k % 4 == 0 || k == hist.len() - 1) {
            println!("  λ={k:<3} {count:>7} vertices");
        }
    }

    // Walk the deepest chain of nested cores: the "drill-down" use case.
    println!("\ndrill-down into the deepest core chain:");
    let mut cur = Hierarchy::ROOT;
    loop {
        let node = d.hierarchy.node(cur);
        let deepest_child = node
            .children
            .iter()
            .copied()
            .max_by_key(|&c| d.hierarchy.node(c).lambda);
        println!(
            "  λ={:<3} members={:<8} delta={}",
            node.lambda,
            node.subtree_cells,
            node.cells.len()
        );
        match deepest_child {
            Some(c) => cur = c,
            None => break,
        }
    }

    // Density ladder: density of the nucleus at each level of the chain.
    let vs = VertexSpace::new(&g);
    let deepest = d
        .hierarchy
        .leaves()
        .into_iter()
        .max_by_key(|&id| d.hierarchy.node(id).lambda)
        .expect("non-trivial graph");
    println!("\ndensity ladder along the deepest nucleus's ancestry:");
    let mut chain = d.hierarchy.ancestors(deepest);
    chain.reverse();
    chain.push(deepest);
    for id in chain {
        let s = summarize_nucleus(&g, &vs, &d.hierarchy, id, 600);
        match s.density {
            Some(dens) => println!(
                "  k={:<3} vertices={:<6} density={dens:.4}",
                s.lambda, s.vertices
            ),
            None => println!(
                "  k={:<3} vertices={:<6} density=(too large)",
                s.lambda, s.vertices
            ),
        }
    }

    // Sanity: LCPS output equals DFT output.
    let d2 = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
    assert!(d.hierarchy == d2.hierarchy);
    println!("\nLCPS hierarchy verified against DFT ✓");
}
