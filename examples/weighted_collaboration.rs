//! Weighted cores on a collaboration-style network — §3.1's weighted
//! adaptation done *with* the connectivity step the paper shows the
//! literature skipped.
//!
//! Edge weights model collaboration strength (papers co-authored). The
//! weighted hierarchy surfaces strongly-bound teams that the unweighted
//! decomposition cannot see: a clique of weight-1 acquaintances ranks
//! below a triangle of weight-10 co-authors.
//!
//! ```sh
//! cargo run --release --example weighted_collaboration
//! ```

use nucleus_hierarchy::core::weighted::weighted_core_decomposition;
use nucleus_hierarchy::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Planted structure: a large, loosely-connected community (many
    // weight-1 edges) and two small tight teams (weight 8–12 edges).
    let mut b = GraphBuilder::new();
    let mut rng = StdRng::seed_from_u64(17);
    // loose community: 40 vertices, ER-ish weight-1 edges
    for _ in 0..220 {
        let u = rng.gen_range(0..40u32);
        let v = rng.gen_range(0..40u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    // tight team A: vertices 40..45, clique
    for u in 40..45u32 {
        for v in u + 1..45 {
            b.add_edge(u, v);
        }
    }
    // tight team B: vertices 45..49, clique
    for u in 45..49u32 {
        for v in u + 1..49 {
            b.add_edge(u, v);
        }
    }
    // bridges from teams into the loose community
    b.add_edge(0, 40);
    b.add_edge(1, 45);
    let g = b.build();

    let mut weights = vec![0u64; g.m()];
    for (e, u, v) in g.edges() {
        weights[e as usize] = if u >= 40 && v >= 40 && (u < 45) == (v < 45) {
            rng.gen_range(8..=12) // intra-team: strong
        } else {
            1 // loose or bridge
        };
    }

    println!("collaboration graph: {} researchers, {} ties", g.n(), g.m());

    // Unweighted view: the loose community dominates by raw degree.
    let plain = decompose(&g, Kind::Core, Algorithm::Lcps).unwrap();
    let plain_top = plain.hierarchy.nuclei_at(plain.hierarchy.max_lambda());
    println!(
        "\nunweighted k-core: max λ = {}, deepest core spans {} vertices",
        plain.hierarchy.max_lambda(),
        plain_top
            .iter()
            .map(|&id| plain.hierarchy.node(id).subtree_cells)
            .sum::<u64>()
    );

    // Weighted view: the tight teams surface at the top.
    let wd = weighted_core_decomposition(&g, &weights);
    wd.hierarchy.validate().expect("valid weighted hierarchy");
    println!(
        "weighted cores: {} distinct strength levels, strongest = {}",
        wd.levels.len(),
        wd.levels.last().unwrap()
    );
    let top = wd.hierarchy.nuclei_at(wd.hierarchy.max_lambda());
    println!("\nstrongest weighted cores:");
    for id in top {
        let mut members = wd.hierarchy.nucleus_cells(id);
        members.sort_unstable();
        println!(
            "  threshold {:>2}: researchers {:?}",
            wd.threshold(id),
            members
        );
    }

    // The two teams must be separate nuclei at team B's strength level
    // (they touch only through weight-1 bridges — connectivity matters!).
    let k_b = wd.hierarchy.lambda_of(46); // rank level of team B
    let team_a = wd.hierarchy.nucleus_of_cell_at(41, k_b);
    let team_b = wd.hierarchy.nucleus_of_cell_at(46, k_b);
    match (team_a, team_b) {
        (Some(a), Some(bn)) if a != bn => {
            println!(
                "\nat strength ≥ {}, teams A and B are distinct strongly-bound cores ✓",
                wd.threshold(bn)
            )
        }
        other => println!("\nunexpected team structure: {other:?}"),
    }
}
