//! Walks through the paper's illustrative figures on their example
//! graphs, demonstrating the definitional points each figure makes.
//! Each graph's spaces are prepared once through the session API and
//! reused across the algorithms that inspect them.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```

use nucleus_hierarchy::gen::paper;
use nucleus_hierarchy::prelude::*;

fn main() {
    // --- Figure 2: λ values alone cannot separate the two 3-cores ---
    println!("Figure 2 — multiple 3-cores:");
    let g = paper::fig2_two_three_cores();
    let cores = Nucleus::builder(&g).kind(Kind::Core).prepare().unwrap();
    let d = cores.run(Algorithm::Dft).unwrap();
    let threes = d.hierarchy.nuclei_at(3);
    println!(
        "  {} vertices share λ=3, but the hierarchy finds {} distinct 3-cores:",
        d.peeling.lambda.iter().filter(|&&l| l == 3).count(),
        threes.len()
    );
    for id in threes {
        println!(
            "    3-core on vertices {:?}",
            cores.nucleus_vertices(&d.hierarchy, id)
        );
    }

    // --- Figure 3: connectivity semantics split the k-truss variants ---
    println!("\nFigure 3 — bowtie, k-dense vs k-truss vs k-truss community:");
    let g = paper::fig3_bowtie();
    let truss = Nucleus::builder(&g).kind(Kind::Truss).prepare().unwrap();
    let d = truss.run(Algorithm::Dft).unwrap();
    println!(
        "  every edge has λ₃ = {} → ONE k-dense / classical k-truss subgraph",
        d.peeling.lambda[0]
    );
    println!(
        "  but triangle connectivity splits it into {} (2,3) nuclei (k-truss communities)",
        d.hierarchy.nuclei_at(1).len()
    );

    // --- Figure 4: distant equal-λ sub-nuclei in one core ---
    println!("\nFigure 4 — T₁,₂ regions and the hierarchy-skeleton:");
    let (g, reps) = paper::fig4_chained_towers();
    let d = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
    let [f, dd, gg, a, e] = reps;
    println!(
        "  towers F/D/G have λ = {}, bridges A/E have λ = {}",
        d.peeling.lambda_of(f),
        d.peeling.lambda_of(a)
    );
    println!(
        "  A and E land in the same 2-core node: {} == {} ✓",
        d.hierarchy.node_of_cell(a),
        d.hierarchy.node_of_cell(e)
    );
    println!(
        "  while the three towers are distinct 3-cores: {:?}",
        [f, dd, gg].map(|v| d.hierarchy.node_of_cell(v))
    );

    // --- Figure 1: (2,3), (2,4) and (3,4) nuclei disagree ---
    println!("\nFigure 1 — octahedron ∪ K5: triangle vs four-clique nuclei:");
    let g = paper::fig1_nucleus_contrast();
    let truss = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    println!(
        "  (2,3): max λ₃ = {}, {} nuclei — both halves are dense triangle-wise",
        truss.hierarchy.max_lambda(),
        truss.hierarchy.nucleus_count()
    );
    // the 2-(2,4) nucleus is the figure's headline object: edges peeled
    // by K4 count single out the K5 exactly
    let s24 = Nucleus::builder(&g).kind(Kind::EdgeK4).prepare().unwrap();
    let d24 = s24.run(Algorithm::Fnd).unwrap();
    for id in d24.hierarchy.nuclei_at(d24.hierarchy.max_lambda()) {
        println!(
            "  (2,4): max λ₄ = {}, deepest nucleus vertices {:?} — the K5 alone",
            d24.hierarchy.max_lambda(),
            s24.nucleus_vertices(&d24.hierarchy, id)
        );
    }
    let s34 = Nucleus::builder(&g)
        .kind(Kind::Nucleus34)
        .prepare()
        .unwrap();
    let n34 = s34.run(Algorithm::Fnd).unwrap();
    println!(
        "  (3,4): max λ₄ = {}, {} nuclei — only the K5 survives (octahedron has no K4)",
        n34.hierarchy.max_lambda(),
        n34.hierarchy.nucleus_count()
    );
    for id in n34.hierarchy.nuclei_at(n34.hierarchy.max_lambda()) {
        println!(
            "    deepest (3,4) nucleus vertices: {:?}",
            s34.nucleus_vertices(&n34.hierarchy, id)
        );
    }

    // --- Figure 5's mechanism: the skeleton visible through stats ---
    println!("\nFigure 5 — sub-nuclei counts (skeleton size) on karate club:");
    let g = nucleus_hierarchy::gen::karate::karate_club();
    for kind in Kind::all() {
        let d = decompose(&g, kind, Algorithm::Fnd).unwrap();
        println!(
            "  {kind}: |T*| = {:>3}, |c↓(T*)| = {:>3}, nuclei = {:>2}",
            d.stats.subnuclei,
            d.stats.adj_connections,
            d.hierarchy.nucleus_count()
        );
    }
}
