//! Streaming maintenance: keep λ current while a social graph churns —
//! the dynamic-data setting of §3.1 (Sarıyüce et al.'s streaming
//! k-core, whose *subcore* notion is the paper's T₁,₂), generalized by
//! the `nucleus-dynamic` crate to batched updates and more families.
//!
//! Replays a growing Holme–Kim network in small batches with occasional
//! deletions through [`DynamicGraph::apply`], for both the (1,2) core
//! and (2,3) truss maintainers, verifying against full recomputation at
//! checkpoints.
//!
//! ```sh
//! cargo run --release --example streaming_cores
//! ```

use nucleus_hierarchy::dynamic::{DynamicGraph, EdgeOp};
use nucleus_hierarchy::gen::holme_kim::holme_kim;
use nucleus_hierarchy::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const BATCH: usize = 32;

fn stream_family(target: &CsrGraph, kind: Kind) {
    let mut dg = DynamicGraph::with_vertices(target.n(), kind);
    let mut rng = StdRng::seed_from_u64(7);
    let mut inserted: Vec<(u32, u32)> = Vec::new();
    let mut pending: Vec<EdgeOp> = Vec::new();
    let mut total = nucleus_hierarchy::dynamic::UpdateReport::default();
    let mut batches = 0usize;
    let mut checkpoints = 0usize;
    let t0 = Instant::now();
    let edges: Vec<(u32, u32)> = target.edges().map(|(_, u, v)| (u, v)).collect();
    for (i, &(u, v)) in edges.iter().enumerate() {
        pending.push(EdgeOp::Insert(u, v));
        inserted.push((u, v));
        // Occasional churn: delete a random earlier edge.
        if rng.gen_bool(0.1) && inserted.len() > 10 {
            let j = rng.gen_range(0..inserted.len());
            let (a, b) = inserted.swap_remove(j);
            pending.push(EdgeOp::Delete(a, b));
        }
        if pending.len() >= BATCH || i + 1 == edges.len() {
            total.absorb(&dg.apply(&pending));
            pending.clear();
            batches += 1;
            // Verify against a full static recompute at checkpoints.
            if batches.is_multiple_of(16) {
                let snapshot = dg.to_graph();
                let expect = DynamicGraph::new(&snapshot, kind);
                assert_eq!(
                    dg.lambda_snapshot(&snapshot),
                    expect.lambda_snapshot(&snapshot),
                    "{} drift at batch {batches}",
                    kind.name()
                );
                checkpoints += 1;
            }
        }
    }
    let elapsed = t0.elapsed();
    let ops = total.applied + total.skipped + total.coalesced;
    println!(
        "  {:<5} [{}]: {ops} ops in {batches} batches ({} applied, {} skipped, \
         {} coalesced) in {elapsed:.2?}; {} λ changes over {} visited cells; \
         {checkpoints} checkpoints verified",
        kind.name(),
        total.strategy.name(),
        total.applied,
        total.skipped,
        total.coalesced,
        total.cells_changed,
        total.scope_cells,
    );
}

fn main() {
    let target = holme_kim(900, 4, 0.7, 31);
    println!(
        "replaying {} edges over {} vertices in batches of {BATCH}, with 10% random deletions",
        target.m(),
        target.n()
    );
    stream_family(&target, Kind::Core);
    stream_family(&target, Kind::Truss);

    // Final state: full hierarchy of the surviving core graph.
    let mut dg = DynamicGraph::with_vertices(target.n(), Kind::Core);
    let ops: Vec<EdgeOp> = target
        .edges()
        .map(|(_, u, v)| EdgeOp::Insert(u, v))
        .collect();
    let report = dg.apply(&ops);
    println!(
        "one-shot rebuild: {} inserts, max core = {}",
        report.inserted,
        dg.core_numbers()
            .and_then(|l| l.iter().max().copied())
            .unwrap_or(0)
    );
    let final_graph = dg.to_graph();
    let d = decompose(&final_graph, Kind::Core, Algorithm::Lcps).unwrap();
    println!("final hierarchy: {}", describe(&d));
    print!("{}", render_tree(&d.hierarchy, 2, 5));
}
