//! Streaming core maintenance: keep core numbers current while a social
//! graph churns — the dynamic-data setting of §3.1 (Sarıyüce et al.'s
//! streaming k-core, whose *subcore* notion is the paper's T₁,₂).
//!
//! Simulates a growing Holme–Kim network replayed edge-by-edge with
//! occasional deletions, and tracks the deepest core live, verifying
//! against full recomputation at checkpoints.
//!
//! ```sh
//! cargo run --release --example streaming_cores
//! ```

use nucleus_hierarchy::core::maintenance::DynamicCores;
use nucleus_hierarchy::gen::holme_kim::holme_kim;
use nucleus_hierarchy::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let target = holme_kim(4000, 4, 0.7, 31);
    println!(
        "replaying {} edges over {} vertices, with 10% random deletions",
        target.m(),
        target.n()
    );

    let mut dc = DynamicCores::with_vertices(target.n());
    let mut rng = StdRng::seed_from_u64(7);
    let mut inserted: Vec<(u32, u32)> = Vec::new();
    let t0 = Instant::now();
    let mut checkpoints = 0;
    for (i, (_, u, v)) in target.edges().enumerate() {
        dc.insert_edge(u, v);
        inserted.push((u, v));
        // occasional churn: delete a random earlier edge
        if rng.gen_bool(0.1) && inserted.len() > 10 {
            let j = rng.gen_range(0..inserted.len());
            let (a, b) = inserted.swap_remove(j);
            dc.remove_edge(a, b);
        }
        if i % 4000 == 0 {
            let max_core = dc.core_numbers().iter().max().copied().unwrap_or(0);
            println!("  step {i:>6}: m={:>6}, max core = {max_core}", dc.m());
        }
        // verify against a full static recompute at checkpoints
        if i % 5000 == 2500 {
            let snapshot = dc.to_graph();
            let expect = peel(&VertexSpace::new(&snapshot)).lambda;
            assert_eq!(dc.core_numbers(), expect.as_slice(), "drift at step {i}");
            checkpoints += 1;
        }
    }
    let elapsed = t0.elapsed();
    println!(
        "\nprocessed {} updates in {elapsed:.2?} ({:.0} updates/s), {checkpoints} checkpoints verified",
        target.m(),
        target.m() as f64 / elapsed.as_secs_f64()
    );

    // Final state: full hierarchy of the surviving graph.
    let final_graph = dc.to_graph();
    let d = decompose(&final_graph, Kind::Core, Algorithm::Lcps).unwrap();
    println!("final hierarchy: {}", describe(&d));
    print!("{}", render_tree(&d.hierarchy, 2, 5));
}
