//! Community detection with (2,3) nuclei — the paper-intro use case of
//! finding communities in social networks (Huang et al.'s k-truss
//! communities are exactly the (2,3) nuclei).
//!
//! A planted-partition graph provides ground truth; we recover the
//! communities as the leaf nuclei of the (2,3) hierarchy and score the
//! assignment against the plant.
//!
//! ```sh
//! cargo run --release --example community_detection
//! ```

use std::collections::HashMap;

use nucleus_hierarchy::gen::planted::{planted_block_of, planted_partition};
use nucleus_hierarchy::prelude::*;

const BLOCKS: u32 = 8;
const BLOCK_SIZE: u32 = 60;

fn main() {
    let g = planted_partition(BLOCKS, BLOCK_SIZE, 0.35, 0.01, 42);
    println!(
        "planted partition: {} blocks × {} vertices, {} edges",
        BLOCKS,
        BLOCK_SIZE,
        g.m()
    );

    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).expect("decomposition");
    println!("(2,3) hierarchy: {}", describe(&d));

    // Communities = maximal nuclei at a chosen strength k. Sweep k and
    // report how well each level matches the plant.
    let es = EdgeSpace::new(&g);
    println!("\n  k | nuclei | coverage | purity");
    println!("----|--------|----------|-------");
    let mut best = (0u32, 0.0f64);
    for k in 1..=d.hierarchy.max_lambda() {
        let nuclei = d.hierarchy.nuclei_at(k);
        if nuclei.is_empty() {
            continue;
        }
        let mut covered = 0usize;
        let mut pure = 0usize;
        let mut assigned = 0usize;
        for &node in &nuclei {
            let verts = nucleus_vertices(&es, &d.hierarchy, node);
            covered += verts.len();
            // majority block inside this nucleus
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &v in &verts {
                *counts.entry(planted_block_of(v, BLOCK_SIZE)).or_default() += 1;
            }
            let majority = counts.values().copied().max().unwrap_or(0);
            pure += majority;
            assigned += verts.len();
        }
        let coverage = covered as f64 / g.n() as f64;
        let purity = if assigned == 0 {
            0.0
        } else {
            pure as f64 / assigned as f64
        };
        println!(
            "{k:>3} | {:>6} | {:>7.1}% | {:>5.1}%",
            nuclei.len(),
            coverage * 100.0,
            purity * 100.0
        );
        // favor levels that recover the planted count with high purity
        let score = purity
            * coverage
            * if nuclei.len() == BLOCKS as usize {
                1.2
            } else {
                1.0
            };
        if score > best.1 {
            best = (k, score);
        }
    }
    println!("\nbest level: k = {}", best.0);

    let nuclei = d.hierarchy.nuclei_at(best.0);
    println!(
        "recovered {} communities (planted: {BLOCKS}):",
        nuclei.len()
    );
    for &node in nuclei.iter().take(10) {
        let verts = nucleus_vertices(&es, &d.hierarchy, node);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &v in &verts {
            *counts.entry(planted_block_of(v, BLOCK_SIZE)).or_default() += 1;
        }
        let (block, majority) = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&b, &c)| (b, c))
            .unwrap_or((0, 0));
        println!(
            "  nucleus k={:<2} |V|={:<4} → block {block} ({:.0}% pure)",
            d.hierarchy.node(node).lambda,
            verts.len(),
            100.0 * majority as f64 / verts.len() as f64
        );
    }
}
