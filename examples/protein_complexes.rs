//! Finding dense "molecular complexes" with (3,4) nuclei — the PPI-style
//! use case from the paper's introduction (Bader & Hogue's complex
//! detection), on a synthetic network of planted complexes.
//!
//! (3,4) nuclei demand every *triangle* to sit in many four-cliques, so
//! they cut much tighter groups than k-core and come with the most
//! detailed hierarchy (paper §5.3).
//!
//! ```sh
//! cargo run --release --example protein_complexes
//! ```

use nucleus_hierarchy::gen::er::gnp;
use nucleus_hierarchy::graph::GraphBuilder;
use nucleus_hierarchy::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Background interaction network with planted near-clique complexes.
fn planted_complexes(seed: u64) -> (nucleus_hierarchy::graph::CsrGraph, Vec<Vec<u32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let background = gnp(1500, 0.002, seed);
    let mut b = GraphBuilder::new();
    for (_, u, v) in background.edges() {
        b.add_edge(u, v);
    }
    b.ensure_vertex(1499);
    // plant 6 complexes: near-cliques of sizes 8..=13 at 85% density
    let mut complexes = vec![];
    for c in 0..6u32 {
        let size = 8 + (c % 6);
        let members: Vec<u32> = (0..size).map(|_| rng.gen_range(0..1500u32)).collect();
        let mut members: Vec<u32> = members;
        members.sort_unstable();
        members.dedup();
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if rng.gen_bool(0.85) {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
        complexes.push(members);
    }
    (b.build_with_n(1500), complexes)
}

fn main() {
    let (g, planted) = planted_complexes(2026);
    println!(
        "interaction network: {} proteins, {} interactions, {} planted complexes",
        g.n(),
        g.m(),
        planted.len()
    );

    let d = decompose(&g, Kind::Nucleus34, Algorithm::Fnd).expect("(3,4) decomposition");
    println!("{}", describe(&d));

    let ts = TriangleSpace::new(&g);
    println!(
        "substrate: {} triangles, {} four-cliques",
        ts.cell_count(),
        ts.k4_count()
    );

    // Report the strongest nuclei (highest k leaves) as predicted complexes.
    let mut leaves = d.hierarchy.leaves();
    leaves.sort_by_key(|&id| std::cmp::Reverse(d.hierarchy.node(id).lambda));
    println!("\npredicted complexes (top (3,4) nuclei):");
    let mut hits = 0;
    for &leaf in leaves.iter().take(8) {
        let s = summarize_nucleus(&g, &ts, &d.hierarchy, leaf, 200);
        let verts = nucleus_vertices(&ts, &d.hierarchy, leaf);
        // does it match a planted complex? (≥ 60% overlap both ways)
        let matched = planted.iter().position(|p| {
            let overlap = p.iter().filter(|v| verts.contains(v)).count();
            overlap * 10 >= p.len() * 6 && overlap * 10 >= verts.len() * 6
        });
        if matched.is_some() {
            hits += 1;
        }
        println!(
            "  k={:<2} proteins={:<3} density={:<5} planted_match={:?}",
            s.lambda,
            s.vertices,
            s.density.map(|x| format!("{x:.2}")).unwrap_or_default(),
            matched
        );
    }
    println!(
        "\nrecovered {hits} of {} planted complexes in the top nuclei",
        planted.len()
    );

    // Contrast with k-core: the 4-clique nuclei are far more selective.
    let core = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    let deepest_core = core
        .hierarchy
        .leaves()
        .into_iter()
        .max_by_key(|&id| core.hierarchy.node(id).lambda)
        .unwrap();
    let core_node = core.hierarchy.node(deepest_core);
    println!(
        "k-core's deepest nucleus: k={} with {} vertices — (3,4) nuclei are \
         sharper complex candidates",
        core_node.lambda, core_node.subtree_cells,
    );
}
