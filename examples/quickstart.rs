//! Quickstart: build a small graph, run all three nucleus
//! decompositions, and walk the hierarchy.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nucleus_hierarchy::prelude::*;

fn main() {
    // A graph with visible structure: a K5 "core team", a 2-core ring
    // around it, and a pendant hanger-on.
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            b.add_edge(u, v); // K5
        }
    }
    for (u, v) in [(0, 5), (5, 6), (6, 7), (7, 8), (8, 1)] {
        b.add_edge(u, v); // ring through the K5
    }
    b.add_edge(5, 9); // pendant
    let g = b.build();
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // --- k-core (1,2) with the traversal-free FND algorithm ---
    let d = decompose(&g, Kind::Core, Algorithm::Fnd).expect("core decomposition");
    println!("\n(1,2) k-core hierarchy  [{}]", describe(&d));
    print!("{}", render_tree(&d.hierarchy, 5, 8));
    for v in [0u32, 5, 9] {
        println!("  core number of vertex {v}: {}", d.peeling.lambda_of(v));
    }

    // --- k-truss community (2,3) ---
    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).expect("truss decomposition");
    println!("\n(2,3) k-truss hierarchy  [{}]", describe(&d));
    print!("{}", render_tree(&d.hierarchy, 5, 8));

    // The deepest (2,3) nucleus is the K5: extract its vertices.
    let es = EdgeSpace::new(&g);
    if let Some(&leaf) = d.hierarchy.leaves().first() {
        let verts = nucleus_vertices(&es, &d.hierarchy, leaf);
        let node = d.hierarchy.node(leaf);
        println!(
            "  densest (2,3) nucleus: k={} on vertices {:?} (density {:.2})",
            node.lambda,
            verts,
            g.induced_density(&verts)
        );
    }

    // --- (3,4) nuclei ---
    let d = decompose(&g, Kind::Nucleus34, Algorithm::Fnd).expect("(3,4) decomposition");
    println!("\n(3,4) nucleus hierarchy  [{}]", describe(&d));
    print!("{}", render_tree(&d.hierarchy, 5, 8));

    // All algorithms agree — the paper's Table 4/5 correctness baseline.
    let a = decompose(&g, Kind::Core, Algorithm::Naive)
        .unwrap()
        .hierarchy;
    let b = decompose(&g, Kind::Core, Algorithm::Dft).unwrap().hierarchy;
    let c = decompose(&g, Kind::Core, Algorithm::Lcps)
        .unwrap()
        .hierarchy;
    assert!(a == b && b == c);
    println!("\nNaive, DFT, LCPS and FND all produced identical hierarchies ✓");
}
