//! Algorithm tour: run every hierarchy algorithm on the same graph,
//! verify they agree, and print a timing table — a miniature of the
//! paper's Tables 4 and 5.
//!
//! ```sh
//! cargo run --release --example algorithm_tour [n_blocks]
//! ```

use nucleus_hierarchy::gen::planted::planted_partition;
use nucleus_hierarchy::prelude::*;

fn main() {
    let blocks: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let g = planted_partition(blocks, 80, 0.30, 0.005, 9);
    println!("graph: {} vertices, {} edges\n", g.n(), g.m());

    for kind in [Kind::Core, Kind::Truss, Kind::Nucleus34] {
        println!("--- {kind} decomposition ---");
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>8}",
            "algo", "peel", "post", "total", "nuclei"
        );
        let mut reference: Option<Hierarchy> = None;
        for &algo in Algorithm::for_kind(kind) {
            let d = decompose(&g, kind, algo).expect("supported");
            println!(
                "{:<8} {:>12} {:>12} {:>12} {:>8}",
                algo.to_string(),
                format!("{:.2?}", d.times.peel),
                format!("{:.2?}", d.times.post),
                format!("{:.2?}", d.times.total()),
                d.hierarchy.nucleus_count()
            );
            match &reference {
                None => reference = Some(d.hierarchy),
                Some(r) => assert!(
                    *r == d.hierarchy,
                    "{algo} disagrees with the reference hierarchy for {kind}"
                ),
            }
        }
        let (times, _) = hypo_baseline(&g, kind);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>8}",
            "Hypo",
            format!("{:.2?}", times.peel),
            format!("{:.2?}", times.post),
            format!("{:.2?}", times.total()),
            "—"
        );
        println!("all algorithms agree ✓\n");
    }
}
