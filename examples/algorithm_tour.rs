//! Algorithm tour: prepare each (r,s) space **once**, run every
//! hierarchy algorithm over it, verify they agree, and print a timing
//! table — a miniature of the paper's Tables 4 and 5, now covering all
//! five families.
//!
//! The tour uses the prepared-pipeline API (`Nucleus::builder`): the
//! clique enumeration and container index behind each family are built
//! one time and shared by every algorithm row, instead of being rebuilt
//! per `decompose` call. The `prepare` row shows that one-time cost;
//! the per-algorithm rows show only each algorithm's own work.
//!
//! ```sh
//! cargo run --release --example algorithm_tour [n_blocks]
//! ```

use std::time::Instant;

use nucleus_hierarchy::gen::planted::planted_partition;
use nucleus_hierarchy::prelude::*;

fn main() {
    let blocks: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let g = planted_partition(blocks, 80, 0.30, 0.005, 9);
    println!("graph: {} vertices, {} edges\n", g.n(), g.m());

    for kind in Kind::all() {
        println!("--- {kind} {} decomposition ---", kind.name());
        let t0 = Instant::now();
        let prepared = Nucleus::builder(&g).kind(kind).prepare().expect("prepare");
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>8}",
            "prepare",
            "",
            "",
            format!("{:.2?}", t0.elapsed()),
            format!("{} cells", prepared.cells()),
        );
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>8}",
            "algo", "peel", "post", "total", "nuclei"
        );
        let mut reference: Option<Hierarchy> = None;
        for &algo in Algorithm::for_kind(kind) {
            let t0 = Instant::now();
            let d = prepared.run(algo).expect("supported");
            let wall = t0.elapsed();
            // d.times.peel folds the (amortized) prepare time back in
            // for comparability with one-shot runs; `wall` is what this
            // run actually cost on the prepared session.
            println!(
                "{:<8} {:>12} {:>12} {:>12} {:>8}",
                algo.to_string(),
                format!("{:.2?}", d.times.peel - prepared.prep_time()),
                format!("{:.2?}", d.times.post),
                format!("{:.2?}", wall),
                d.hierarchy.nucleus_count()
            );
            match &reference {
                None => reference = Some(d.hierarchy),
                Some(r) => assert!(
                    *r == d.hierarchy,
                    "{algo} disagrees with the reference hierarchy for {kind}"
                ),
            }
        }
        let t0 = Instant::now();
        let (times, _) = prepared.hypo_baseline();
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>8}",
            "Hypo",
            format!("{:.2?}", times.peel - prepared.prep_time()),
            format!("{:.2?}", times.post),
            format!("{:.2?}", t0.elapsed()),
            "—"
        );
        println!("all algorithms agree ✓\n");
    }
}
