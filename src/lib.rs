#![warn(missing_docs)]

//! # nucleus-hierarchy
//!
//! Umbrella crate for the workspace reproducing **"Fast Hierarchy
//! Construction for Dense Subgraphs"** (Sarıyüce & Pinar, VLDB 2016):
//! k-core, k-truss-community and (3,4)-nucleus decompositions *with
//! their full containment hierarchies*, built by the paper's DFT and FND
//! algorithms plus every baseline the paper compares against.
//!
//! The heavy lifting lives in the member crates, re-exported here:
//!
//! * [`graph`] — CSR graphs, edge ids, bucket queues, I/O;
//! * [`dsf`] — classic and root-augmented disjoint-set forests;
//! * [`cliques`] — triangle / K4 enumeration substrate;
//! * [`gen`] — seeded synthetic generators and surrogate datasets;
//! * [`core`] — peeling, hierarchies, and the algorithms themselves;
//! * [`dynamic`] — batched incremental maintenance for mutable graphs.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the
//! `nucleus-bench` crate for the harness that regenerates every table
//! and figure of the paper's evaluation.

pub use nucleus_cliques as cliques;
pub use nucleus_core as core;
pub use nucleus_dsf as dsf;
pub use nucleus_dynamic as dynamic;
pub use nucleus_gen as gen;
pub use nucleus_graph as graph;

/// Everything a typical application needs.
pub mod prelude {
    pub use nucleus_core::prelude::*;
    pub use nucleus_dynamic::{DynamicGraph, EdgeOp, UpdateReport};
    pub use nucleus_graph::{CsrGraph, GraphBuilder};
}
