//! Cross-crate integration: every algorithm produces the identical
//! canonical hierarchy on every surrogate dataset (Small scale), for all
//! three decomposition families.

use nucleus_hierarchy::core::validate::check_semantics;
use nucleus_hierarchy::gen::{dataset, dataset_names, Scale};
use nucleus_hierarchy::prelude::*;

#[test]
fn all_algorithms_agree_on_all_surrogates() {
    for name in dataset_names() {
        let g = dataset(name, Scale::Small);
        for kind in [Kind::Core, Kind::Truss, Kind::Nucleus34] {
            let mut reference: Option<(Algorithm, Hierarchy)> = None;
            for &algo in Algorithm::for_kind(kind) {
                let d = decompose(&g, kind, algo).expect("supported combo");
                d.hierarchy
                    .validate()
                    .unwrap_or_else(|e| panic!("{name}/{kind}/{algo}: invalid hierarchy: {e}"));
                match &reference {
                    None => reference = Some((algo, d.hierarchy)),
                    Some((ref_algo, ref_h)) => assert!(
                        *ref_h == d.hierarchy,
                        "{name}/{kind}: {algo} disagrees with {ref_algo}"
                    ),
                }
            }
        }
    }
}

#[test]
fn semantics_hold_on_structured_surrogates() {
    // Full Definition-2 check (quadratic) on the two smallest datasets.
    for name in ["mit-s", "uk2005-s"] {
        let g = dataset(name, Scale::Small);
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = nucleus_hierarchy::core::algo::dft::dft(&vs, &p);
        check_semantics(&vs, &h).expect("(1,2) semantics");

        let es = EdgeSpace::new(&g);
        let p = peel(&es);
        let (h, _) = nucleus_hierarchy::core::algo::dft::dft(&es, &p);
        check_semantics(&es, &h).expect("(2,3) semantics");
    }
}

#[test]
fn phase_times_and_stats_are_reported() {
    let g = dataset("stanford3-s", Scale::Small);
    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    assert!(d.stats.subnuclei > 0, "FND must report |T*|");
    assert!(d.times.total().as_nanos() > 0);
    let d2 = decompose(&g, Kind::Truss, Algorithm::Dft).unwrap();
    assert!(d2.stats.subnuclei > 0, "DFT must report |T|");
    // |T| (maximal) never exceeds |T*| (possibly split)
    assert!(d2.stats.subnuclei <= d.stats.subnuclei);
}

#[test]
fn nuclei_nest_across_levels() {
    let g = dataset("berkeley13-s", Scale::Small);
    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    let h = &d.hierarchy;
    for k in 2..=h.max_lambda() {
        for id in h.nuclei_at(k) {
            // each k-nucleus is contained in exactly one (k-1)-nucleus
            let members = h.nucleus_cells(id);
            let parents: std::collections::HashSet<u32> = h
                .nuclei_at(k - 1)
                .into_iter()
                .filter(|&p| {
                    let pm = h.nucleus_cells(p);
                    members.iter().all(|c| pm.contains(c))
                })
                .collect();
            assert_eq!(parents.len(), 1, "k={k} nucleus {id} containment");
        }
    }
}
