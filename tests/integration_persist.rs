//! End-to-end persisted-index flow through the CLI: generate a graph,
//! `prepare --out` an index, then `decompose --index` — the output must
//! match a fresh `decompose` exactly, and a stale index must fail with
//! a non-zero (Err) result naming the mismatch.

use std::path::PathBuf;

fn cli(argv: &[&str]) -> Result<String, String> {
    let mut out = Vec::new();
    nucleus_cli::run(argv.iter().map(|s| s.to_string()).collect(), &mut out)?;
    Ok(String::from_utf8(out).unwrap())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nucleus-integration-persist");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Everything after the first line; the first line carries wall-clock
/// timings that legitimately differ between runs.
fn body(out: &str) -> String {
    out.lines().skip(1).collect::<Vec<_>>().join("\n")
}

#[test]
fn prepare_then_decompose_matches_fresh_decompose() {
    let graph = tmp("ba.txt");
    let graph_s = graph.to_str().unwrap();
    cli(&[
        "generate", "--model", "ba", "--n", "300", "--m", "4", "--seed", "11", "--out", graph_s,
    ])
    .unwrap();

    for kind in ["truss", "nucleus34"] {
        let index = tmp(&format!("ba.{kind}.nidx"));
        let index_s = index.to_str().unwrap();
        let prepared = cli(&[
            "prepare", "--input", graph_s, "--kind", kind, "--out", index_s,
        ])
        .unwrap();
        assert!(prepared.contains("wrote"), "{prepared}");

        let fresh = cli(&[
            "decompose",
            "--input",
            graph_s,
            "--kind",
            kind,
            "--algo",
            "fnd",
            "--depth",
            "4",
        ])
        .unwrap();
        let indexed = cli(&[
            "decompose",
            "--input",
            graph_s,
            "--index",
            index_s,
            "--algo",
            "fnd",
            "--depth",
            "4",
        ])
        .unwrap();
        assert_eq!(body(&fresh), body(&indexed), "{kind}: outputs diverge");

        // Redundant --kind is accepted when it agrees with the file.
        let with_kind = cli(&[
            "decompose",
            "--input",
            graph_s,
            "--index",
            index_s,
            "--kind",
            kind,
            "--algo",
            "fnd",
            "--depth",
            "4",
        ])
        .unwrap();
        assert_eq!(body(&fresh), body(&with_kind));

        // The plan must attribute the backend to the loaded index.
        let explained = cli(&[
            "decompose",
            "--input",
            graph_s,
            "--index",
            index_s,
            "--explain",
        ])
        .unwrap();
        assert!(explained.contains("loaded index"), "{explained}");

        std::fs::remove_file(&index).ok();
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn index_for_a_changed_graph_exits_with_an_error() {
    let graph = tmp("karate.txt");
    let graph_s = graph.to_str().unwrap();
    cli(&["generate", "--model", "karate", "--out", graph_s]).unwrap();

    let index = tmp("karate.truss.nidx");
    let index_s = index.to_str().unwrap();
    cli(&[
        "prepare", "--input", graph_s, "--kind", "truss", "--out", index_s,
    ])
    .unwrap();

    // A different graph behind the same path: the fingerprint check
    // must reject the pairing (the binary maps Err to exit code 1).
    let other = tmp("er.txt");
    let other_s = other.to_str().unwrap();
    cli(&[
        "generate", "--model", "er", "--n", "34", "--p", "0.1", "--seed", "3", "--out", other_s,
    ])
    .unwrap();
    let err = cli(&["decompose", "--input", other_s, "--index", index_s]).unwrap_err();
    assert!(err.contains("does not match"), "{err}");

    // Conflicting --kind is also refused.
    let err = cli(&[
        "decompose",
        "--input",
        graph_s,
        "--index",
        index_s,
        "--kind",
        "core",
    ])
    .unwrap_err();
    assert!(err.contains("conflicts"), "{err}");

    for p in [&graph, &index, &other] {
        std::fs::remove_file(p).ok();
    }
}
