//! End-to-end ground-truth facts on Zachary's karate club — a dataset
//! whose density structure is documented across three decades of
//! literature.

use nucleus_hierarchy::gen::karate::karate_club;
use nucleus_hierarchy::prelude::*;

#[test]
fn karate_core_structure() {
    let g = karate_club();
    let d = decompose(&g, Kind::Core, Algorithm::Lcps).unwrap();
    // degeneracy 4
    assert_eq!(d.hierarchy.max_lambda(), 4);
    // the famous 4-core: instructor (0), president (33) and the inner circle
    let deepest = d.hierarchy.nuclei_at(4);
    assert_eq!(deepest.len(), 1);
    let vs = VertexSpace::new(&g);
    let members = nucleus_vertices(&vs, &d.hierarchy, deepest[0]);
    assert!(members.contains(&0), "Mr. Hi is in the 4-core");
    assert!(members.contains(&33), "the president is in the 4-core");
    // whole graph is connected: exactly one 1-core
    assert_eq!(d.hierarchy.nuclei_at(1).len(), 1);
    assert_eq!(
        d.hierarchy.node(d.hierarchy.nuclei_at(1)[0]).subtree_cells,
        34
    );
}

#[test]
fn karate_truss_structure() {
    let g = karate_club();
    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    assert!(d.hierarchy.max_lambda() >= 3, "karate has strong triangles");
    // the deepest truss community contains the 0-33 axis cliques
    let es = EdgeSpace::new(&g);
    let deepest = d
        .hierarchy
        .leaves()
        .into_iter()
        .max_by_key(|&id| d.hierarchy.node(id).lambda)
        .unwrap();
    let verts = nucleus_vertices(&es, &d.hierarchy, deepest);
    assert!(verts.len() >= 4);
    let density = g.induced_density(&verts);
    assert!(
        density > 0.5,
        "deepest truss community must be dense, got {density}"
    );
}

#[test]
fn karate_34_structure() {
    let g = karate_club();
    let d = decompose(&g, Kind::Nucleus34, Algorithm::Fnd).unwrap();
    // karate club has K5s around the hubs → λ₄ ≥ 1 somewhere
    assert!(d.hierarchy.max_lambda() >= 1);
    // all algorithms agree here too
    let d2 = decompose(&g, Kind::Nucleus34, Algorithm::Naive).unwrap();
    assert!(d.hierarchy == d2.hierarchy);
}

#[test]
fn karate_hierarchy_depth_ordering() {
    // hierarchy depth grows with decomposition strength on this graph:
    // (3,4) ≤ (1,2) ≤ (2,3) nuclei counts reported by the paper's thesis
    // that higher-order nuclei are fewer but denser.
    let g = karate_club();
    let core = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    let truss = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    let n34 = decompose(&g, Kind::Nucleus34, Algorithm::Fnd).unwrap();
    assert!(n34.hierarchy.nucleus_count() <= truss.hierarchy.nucleus_count());
    assert!(core.hierarchy.nucleus_count() <= truss.hierarchy.nucleus_count());
}
