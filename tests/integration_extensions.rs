//! Integration coverage for the extension modules: weighted cores,
//! dynamic maintenance, skeleton analytics, export, truss variants and
//! the extra (1,3)/(2,4) spaces — all driven through the public API on
//! surrogate data.

use nucleus_hierarchy::core::algo::variants;
use nucleus_hierarchy::core::analytics::skeleton_profile;
#[allow(deprecated)]
use nucleus_hierarchy::core::maintenance::DynamicCores;
use nucleus_hierarchy::core::space::{EdgeK4Space, VertexTriangleSpace};
use nucleus_hierarchy::core::weighted::weighted_core_decomposition;
use nucleus_hierarchy::gen::{dataset, Scale};
use nucleus_hierarchy::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn weighted_decomposition_on_surrogate() {
    let g = dataset("mit-s", Scale::Small);
    let mut rng = StdRng::seed_from_u64(3);
    let weights: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(1..=5u64)).collect();
    let wd = weighted_core_decomposition(&g, &weights);
    wd.hierarchy.validate().expect("valid");
    // weighted λ dominates unweighted λ when every weight ≥ 1
    let plain = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    for v in 0..g.n() {
        assert!(
            wd.lambda[v] >= plain.peeling.lambda[v] as u64,
            "vertex {v}: weighted core below unweighted"
        );
    }
}

// Keeps the deprecated shim honest: the legacy single-op surface must
// stay consistent with the batch decomposition until it is removed.
#[test]
#[allow(deprecated)]
fn dynamic_cores_replay_matches_batch() {
    let g = dataset("uk2005-s", Scale::Small);
    let mut dc = DynamicCores::with_vertices(g.n());
    for (_, u, v) in g.edges() {
        dc.insert_edge(u, v);
    }
    let expect = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    let got: Vec<u32> = dc.core_numbers().to_vec();
    assert_eq!(got, expect.peeling.lambda);
    // and removal back to empty
    for (_, u, v) in g.edges() {
        assert!(dc.remove_edge(u, v));
    }
    assert!(dc.core_numbers().iter().all(|&l| l == 0));
    assert_eq!(dc.m(), 0);
}

#[test]
fn skeleton_profiles_match_decomposition_stats() {
    let g = dataset("stanford3-s", Scale::Small);
    let vs = VertexSpace::new(&g);
    let p = peel(&vs);
    let prof = skeleton_profile(&vs, &p);
    let d = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
    assert_eq!(prof.count(), d.stats.subnuclei);
    // total cells across sub-nuclei + unassigned == all cells
    let total: u64 = prof.sub_nuclei.iter().map(|s| s.size as u64).sum();
    assert_eq!(total as usize + prof.unassigned_cells, g.n());
    // per-level counts sum to the total count
    assert_eq!(prof.per_level().iter().sum::<usize>(), prof.count());
}

#[test]
fn dot_export_is_parseable_shape() {
    let g = dataset("mit-s", Scale::Small);
    let d = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    let dot = hierarchy_to_dot(&d.hierarchy, 50);
    assert!(dot.starts_with("digraph"));
    assert!(dot.trim_end().ends_with('}'));
    // every edge references declared nodes
    for line in dot.lines() {
        if let Some((a, b)) = line.trim().trim_end_matches(';').split_once(" -> ") {
            assert!(dot.contains(&format!("{a} [")), "undeclared {a}");
            assert!(dot.contains(&format!("{} [", b)), "undeclared {b}");
        }
    }
}

#[test]
fn extracted_nuclei_are_densest_at_leaves() {
    let g = dataset("berkeley13-s", Scale::Small);
    let d = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    let vs = VertexSpace::new(&g);
    let deepest = d
        .hierarchy
        .leaves()
        .into_iter()
        .max_by_key(|&id| d.hierarchy.node(id).lambda)
        .unwrap();
    let sub = extract_nucleus(&g, &vs, &d.hierarchy, deepest);
    // the extracted subgraph's min degree is ≥ the nucleus level
    let k = d.hierarchy.node(deepest).lambda as usize;
    for v in sub.graph.vertices() {
        assert!(sub.graph.degree(v) >= k);
    }
    // extraction is a real induced subgraph: re-decomposition of it has
    // max core ≥ k
    let inner = decompose(&sub.graph, Kind::Core, Algorithm::Fnd).unwrap();
    assert!(inner.hierarchy.max_lambda() >= k as u32);
}

#[test]
fn truss_variants_are_consistent_on_surrogates() {
    let g = dataset("texas84-s", Scale::Small);
    let es = EdgeSpace::new(&g);
    let truss = peel(&es);
    let d = decompose(&g, Kind::Truss, Algorithm::Dft).unwrap();
    for k in [1, 2, truss.max_lambda.max(1)] {
        let dense = variants::k_dense(&truss, k);
        let trusses = variants::k_trusses_connected(&g, &truss, k);
        let comms = variants::k_truss_communities(&d.hierarchy, k);
        assert_eq!(dense.len(), trusses.iter().map(|t| t.len()).sum::<usize>());
        assert_eq!(dense.len(), comms.iter().map(|c| c.len()).sum::<usize>());
        assert!(comms.len() >= trusses.len());
    }
}

#[test]
fn exotic_spaces_agree_across_algorithms() {
    use nucleus_hierarchy::core::algo::{dft::dft, fnd::fnd, naive::naive};
    let g = dataset("mit-s", Scale::Small);
    // (1,3)
    let s13 = VertexTriangleSpace::new(&g);
    let p = peel(&s13);
    let h_naive = naive(&s13, &p);
    let (h_dft, _) = dft(&s13, &p);
    let out = fnd(&s13);
    assert_eq!(h_naive, h_dft);
    assert_eq!(h_dft, out.hierarchy);
    // (2,4)
    let s24 = EdgeK4Space::new(&g);
    let p = peel(&s24);
    let h_naive = naive(&s24, &p);
    let (h_dft, _) = dft(&s24, &p);
    let out = fnd(&s24);
    assert_eq!(h_naive, h_dft);
    assert_eq!(h_dft, out.hierarchy);
    // nesting across decompositions: (2,4) λ never exceeds (2,3) λ for
    // the same edge (every K4 through an edge contributes ≥ 2 triangles)
    let s23 = EdgeSpace::new(&g);
    let p23 = peel(&s23);
    let p24 = peel(&s24);
    for e in 0..g.m() {
        assert!(p24.lambda[e] <= p23.lambda[e] * 2, "edge {e}");
    }
}

#[test]
fn parallel_supports_power_the_truss_peeling() {
    // parallel edge supports equal the serial ones the EdgeSpace uses
    let g = dataset("stanford3-s", Scale::Small);
    let par = nucleus_hierarchy::cliques::parallel::edge_supports_parallel(&g, 4);
    let ser = nucleus_hierarchy::cliques::triangles::edge_supports(&g);
    assert_eq!(par, ser);
}
