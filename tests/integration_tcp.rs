//! TCP index (the paper's (2,3) comparator) answers k-truss-community
//! queries identically to the hierarchy, across surrogate datasets.

use nucleus_hierarchy::core::algo::tcp::{tcp_query, TcpIndex};
use nucleus_hierarchy::gen::{dataset, Scale};
use nucleus_hierarchy::prelude::*;

#[test]
fn tcp_queries_equal_hierarchy_nuclei() {
    for name in ["mit-s", "google-s", "uk2005-s"] {
        let g = dataset(name, Scale::Small);
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        let idx = TcpIndex::build(&g, &truss);
        let d = decompose(&g, Kind::Truss, Algorithm::Dft).unwrap();
        let h = &d.hierarchy;
        for k in (1..=h.max_lambda()).step_by(2) {
            for node in h.nuclei_at(k) {
                let mut cells = h.nucleus_cells(node);
                cells.sort_unstable();
                let (u, v) = g.endpoints(cells[0]);
                let got = tcp_query(&g, &truss, &idx, u, v, k)
                    .unwrap_or_else(|| panic!("{name}: no community for k={k}"));
                assert_eq!(got, cells, "{name}: k={k} node={node}");
            }
        }
    }
}

#[test]
fn tcp_rejects_out_of_range_queries() {
    let g = dataset("mit-s", Scale::Small);
    let es = EdgeSpace::new(&g);
    let truss = peel(&es);
    let idx = TcpIndex::build(&g, &truss);
    let (_, u, v) = g.edges().next().unwrap();
    let max = truss.max_lambda;
    assert!(tcp_query(&g, &truss, &idx, u, v, max + 1).is_none());
}

#[test]
fn tcp_index_size_is_bounded() {
    let g = dataset("stanford3-s", Scale::Small);
    let es = EdgeSpace::new(&g);
    let truss = peel(&es);
    let idx = TcpIndex::build(&g, &truss);
    // each vertex's maximum spanning forest has < deg(x) edges
    let bound: usize = g.vertices().map(|v| g.degree(v)).sum();
    assert!(idx.size() < bound);
}
