//! End-to-end parallel-FND flow through the CLI: `decompose --algo fnd
//! --engine frontier` must produce the same hierarchy rendering as the
//! serial engine on every peeling family, at every hybrid-drain
//! setting, and `--explain` must name the frontier engine and its
//! hybrid-round policy.

use std::path::PathBuf;

fn cli(argv: &[&str]) -> Result<String, String> {
    let mut out = Vec::new();
    nucleus_cli::run(argv.iter().map(|s| s.to_string()).collect(), &mut out)?;
    Ok(String::from_utf8(out).unwrap())
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nucleus-integration-parallel-fnd");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Everything after the first line; the first line carries wall-clock
/// timings that legitimately differ between runs.
fn body(out: &str) -> String {
    out.lines().skip(1).collect::<Vec<_>>().join("\n")
}

#[test]
fn frontier_fnd_matches_serial_on_every_kind() {
    let graph = tmp("ba.txt");
    let graph_s = graph.to_str().unwrap();
    cli(&[
        "generate", "--model", "ba", "--n", "250", "--m", "4", "--seed", "7", "--out", graph_s,
    ])
    .unwrap();

    for kind in ["core", "vertex-triangle", "truss", "edge-k4", "nucleus34"] {
        let serial = cli(&[
            "decompose",
            "--input",
            graph_s,
            "--kind",
            kind,
            "--algo",
            "fnd",
            "--engine",
            "serial",
            "--depth",
            "4",
        ])
        .unwrap();
        assert!(serial.contains("[serial]"), "{kind}: {serial}");
        // hybrid drain disabled (0), aggressive (8) and default: all
        // must agree with the serial hierarchy exactly
        for threshold in ["0", "8", "256"] {
            let frontier = cli(&[
                "decompose",
                "--input",
                graph_s,
                "--kind",
                kind,
                "--algo",
                "fnd",
                "--engine",
                "frontier",
                "--threads",
                "2",
                "--frontier-serial-below",
                threshold,
                "--depth",
                "4",
            ])
            .unwrap();
            assert!(
                frontier.contains("[materialized][frontier]"),
                "{kind}/{threshold}: {frontier}"
            );
            assert_eq!(
                body(&serial),
                body(&frontier),
                "{kind}/{threshold}: hierarchies diverge"
            );
        }
    }
    std::fs::remove_file(&graph).ok();
}

#[test]
fn explain_names_the_hybrid_round_policy() {
    let graph = tmp("karate.txt");
    let graph_s = graph.to_str().unwrap();
    cli(&["generate", "--model", "karate", "--out", graph_s]).unwrap();

    let explained = cli(&[
        "decompose",
        "--input",
        graph_s,
        "--kind",
        "truss",
        "--algo",
        "fnd",
        "--engine",
        "frontier",
        "--threads",
        "2",
        "--frontier-serial-below",
        "64",
        "--explain",
    ])
    .unwrap();
    assert!(explained.contains("plan:"), "{explained}");
    assert!(explained.contains("frontier"), "{explained}");
    assert!(explained.contains("hybrid, serial below 64"), "{explained}");

    // disabling the drain is reported too
    let explained = cli(&[
        "decompose",
        "--input",
        graph_s,
        "--kind",
        "truss",
        "--algo",
        "fnd",
        "--engine",
        "frontier",
        "--threads",
        "2",
        "--frontier-serial-below",
        "0",
        "--explain",
    ])
    .unwrap();
    assert!(explained.contains("hybrid drain disabled"), "{explained}");

    // a malformed threshold is a flag error, not a panic
    let err = cli(&[
        "decompose",
        "--input",
        graph_s,
        "--kind",
        "truss",
        "--frontier-serial-below",
        "many",
    ])
    .unwrap_err();
    assert!(err.contains("frontier-serial-below"), "{err}");

    std::fs::remove_file(&graph).ok();
}
