//! Persistence round-trips: graphs through text and binary formats,
//! hierarchies through serde JSON — decomposition results must survive.

use nucleus_hierarchy::gen::{dataset, Scale};
use nucleus_hierarchy::graph::io;
use nucleus_hierarchy::prelude::*;

#[test]
fn graph_text_round_trip_preserves_decomposition() {
    let g = dataset("mit-s", Scale::Small);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).expect("write");
    let g2 = io::read_edge_list(buf.as_slice()).expect("read");
    // The text loader remaps labels in first-seen order, so compare
    // relabeling-invariant facts: λ histogram and hierarchy shape.
    let d1 = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
    let d2 = decompose(&g2, Kind::Core, Algorithm::Fnd).unwrap();
    assert_eq!(d1.peeling.lambda_histogram(), d2.peeling.lambda_histogram());
    assert_eq!(d1.hierarchy.nucleus_count(), d2.hierarchy.nucleus_count());
    assert_eq!(d1.hierarchy.max_lambda(), d2.hierarchy.max_lambda());
    assert_eq!(d1.hierarchy.depth(), d2.hierarchy.depth());
}

#[test]
fn graph_binary_round_trip_preserves_decomposition() {
    let g = dataset("google-s", Scale::Small);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).expect("write");
    let g2 = io::read_binary(buf.as_slice()).expect("read");
    assert_eq!(g.n(), g2.n());
    assert_eq!(g.m(), g2.m());
    let d1 = decompose(&g, Kind::Truss, Algorithm::Fnd).unwrap();
    let d2 = decompose(&g2, Kind::Truss, Algorithm::Fnd).unwrap();
    assert!(d1.hierarchy == d2.hierarchy);
}

#[test]
fn hierarchy_serde_json_round_trip() {
    let g = dataset("uk2005-s", Scale::Small);
    let d = decompose(&g, Kind::Nucleus34, Algorithm::Fnd).unwrap();
    let json = serde_json::to_string(&d.hierarchy).expect("serialize");
    let back: Hierarchy = serde_json::from_str(&json).expect("deserialize");
    assert!(back == d.hierarchy);
    back.validate().expect("still valid after round trip");
}

#[test]
fn files_on_disk_round_trip() {
    let dir = std::env::temp_dir().join("nucleus-hierarchy-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("karate.txt");
    let g = nucleus_hierarchy::gen::karate::karate_club();
    io::write_edge_list(&g, std::fs::File::create(&path).unwrap()).unwrap();
    let g2 = io::read_edge_list_file(&path).unwrap();
    assert_eq!(g2.n(), 34);
    assert_eq!(g2.m(), 78);
    std::fs::remove_file(&path).ok();
}
