//! Smoke test: the showcase examples must build *and run* — otherwise
//! `examples/` rots silently, since example code is never exercised by
//! unit tests. Runs the examples the README points newcomers at.

use std::process::Command;

/// Builds and runs one example via the same cargo that runs this test,
/// returning its stdout.
fn run_example(name: &str) -> String {
    let cargo = env!("CARGO");
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .env("RUST_BACKTRACE", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn quickstart_example_runs() {
    let out = run_example("quickstart");
    assert!(
        out.contains("k-core hierarchy"),
        "quickstart output changed shape:\n{out}"
    );
    assert!(
        out.contains("k-truss hierarchy"),
        "quickstart output changed shape:\n{out}"
    );
}

#[test]
fn streaming_cores_example_runs() {
    let out = run_example("streaming_cores");
    // Both maintained families verify against full recomputation at
    // every checkpoint, and the run ends with a full hierarchy.
    assert!(
        out.contains("checkpoints verified"),
        "streaming_cores output changed shape:\n{out}"
    );
    assert!(
        out.contains("[incremental]"),
        "streaming_cores no longer reports its update strategy:\n{out}"
    );
    assert!(
        out.contains("final hierarchy"),
        "streaming_cores output changed shape:\n{out}"
    );
}

#[test]
fn algorithm_tour_example_runs() {
    let out = run_example("algorithm_tour");
    assert!(
        !out.trim().is_empty(),
        "algorithm_tour printed nothing at all"
    );
}
