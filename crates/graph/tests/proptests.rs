//! Property tests for the graph substrate: CSR construction invariants,
//! bucket-queue model checking against naive priority structures, and
//! I/O round trips.

use proptest::prelude::*;

use nucleus_graph::bucket::{MaxBuckets, PeelBuckets};
use nucleus_graph::order::degeneracy_order;
use nucleus_graph::traversal::connected_components;
use nucleus_graph::{io, CsrGraph};

fn edges_strategy(n: u32, m_max: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..=m_max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_invariants(edges in edges_strategy(40, 120)) {
        let g = CsrGraph::from_edges(40, &edges);
        // adjacency sorted & symmetric, edge ids consistent
        let mut arc_count = 0usize;
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for (w, eid) in g.arcs(v) {
                prop_assert_ne!(w, v, "no self loops");
                prop_assert!(g.neighbors(w).binary_search(&v).is_ok(), "symmetry");
                prop_assert_eq!(g.endpoints(eid), (v.min(w), v.max(w)));
                arc_count += 1;
            }
        }
        prop_assert_eq!(arc_count, 2 * g.m());
        // degree sum
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.m());
    }

    #[test]
    fn peel_buckets_match_naive_min_selection(keys in proptest::collection::vec(0u32..20, 1..60)) {
        // model: repeatedly pick min key, decrement a random eligible other
        let mut q = PeelBuckets::new(keys.clone());
        let mut popped = vec![];
        let mut last = 0;
        while let Some((x, k)) = q.pop_min() {
            prop_assert!(k >= last, "monotone");
            last = k;
            popped.push((x, k));
            // decrement every unpopped element with key > k once
            // (mimics the peeling decrement pattern)
            for y in 0..keys.len() as u32 {
                if !q.is_popped(y) && q.key(y) > k {
                    q.decrement(y);
                }
            }
        }
        prop_assert_eq!(popped.len(), keys.len());
        // every element popped exactly once
        let mut ids: Vec<u32> = popped.iter().map(|&(x, _)| x).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), keys.len());
    }

    #[test]
    fn max_buckets_match_binary_heap(ops in proptest::collection::vec((0u32..32, prop::bool::ANY), 1..120)) {
        let mut q = MaxBuckets::new(31);
        let mut model = std::collections::BinaryHeap::<u32>::new();
        let mut next_id = 0u32;
        for (prio, push) in ops {
            if push || model.is_empty() {
                q.push(next_id, prio);
                next_id += 1;
                model.push(prio);
            } else {
                let (_, got) = q.pop_max().expect("non-empty");
                let want = model.pop().expect("non-empty");
                prop_assert_eq!(got, want, "max priority must match");
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    #[test]
    fn degeneracy_is_max_of_min_degrees(edges in edges_strategy(24, 80)) {
        let g = CsrGraph::from_edges(24, &edges);
        let (ord, d) = degeneracy_order(&g);
        // check the defining property: for every suffix of the order,
        // the first vertex has degree ≤ d within the suffix
        let pos = &ord.rank;
        for v in g.vertices() {
            let later_deg = g
                .neighbors(v)
                .iter()
                .filter(|&&w| pos[w as usize] > pos[v as usize])
                .count();
            prop_assert!(later_deg as u32 <= d, "vertex {} violates degeneracy", v);
        }
    }

    #[test]
    fn components_are_bfs_closed(edges in edges_strategy(30, 60)) {
        let g = CsrGraph::from_edges(30, &edges);
        let (labels, count) = connected_components(&g);
        prop_assert!(count >= 1 || g.n() == 0);
        for (_, u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    #[test]
    fn binary_io_round_trips(edges in edges_strategy(32, 100)) {
        let g = CsrGraph::from_edges(32, &edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g.n(), g2.n());
        prop_assert_eq!(g.edge_endpoints(), g2.edge_endpoints());
    }
}
