//! Error type for graph I/O and construction.

use std::fmt;

/// Errors produced by this crate's fallible operations (chiefly I/O).
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Offending content (truncated).
        content: String,
    },
    /// A binary graph file had an invalid header or truncated body.
    Format(String),
    /// Flat-record invariants were violated (non-monotone offsets, a
    /// mis-sized data buffer, …). Produced by the fallible record
    /// constructors ([`crate::flat::FlatRecords::try_from_parts`],
    /// [`crate::flat::FlatRecordsRef::new`]), which loaders of untrusted
    /// bytes use instead of the panicking assemblers.
    Records(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
            GraphError::Format(msg) => write!(f, "format error: {msg}"),
            GraphError::Records(msg) => write!(f, "invalid flat records: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
