//! Breadth-first traversal and connected components.

use crate::csr::CsrGraph;

/// Connected-component labeling.
///
/// Returns `(labels, count)` where `labels[v]` is a dense component id in
/// `0..count`. Components are numbered in order of their smallest vertex.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut labels = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut next = 0u32;
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            for &w in g.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// BFS visit order from `start` (only the reachable component).
pub fn bfs_order(g: &CsrGraph, start: u32) -> Vec<u32> {
    let mut visited = vec![false; g.n()];
    let mut queue = vec![start];
    visited[start as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in g.neighbors(v) {
            if !visited[w as usize] {
                visited[w as usize] = true;
                queue.push(w);
            }
        }
    }
    queue
}

/// Single full sweep over all vertices and arcs, touching every adjacency
/// entry exactly once. This is the "hypothetical best possible traversal"
/// cost model for the (1,2) case (the paper's *Hypo* baseline does
/// peeling + exactly this).
///
/// Returns the number of connected components, so the optimizer cannot
/// discard the work.
pub fn full_sweep_component_count(g: &CsrGraph) -> usize {
    connected_components(g).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[3], labels[5]);
    }

    #[test]
    fn components_numbered_by_smallest_vertex() {
        let g = CsrGraph::from_edges(4, &[(2, 3)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[2], 2);
    }

    #[test]
    fn bfs_covers_component() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let mut order = bfs_order(&g, 0);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(bfs_order(&g, 3).len(), 2);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(full_sweep_component_count(&g), 0);
    }
}
