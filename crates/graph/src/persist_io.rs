//! On-disk encoding of a persisted container index.
//!
//! A persisted index file stores one [`crate::flat::FlatRecords`] (the
//! materialized (r,s) container incidence built by the core crate) plus
//! the per-cell ω counts, behind a header that pins down *which* graph
//! and *which* decomposition kind the bytes belong to. Everything is
//! little-endian and 8-byte aligned, so a loader can hand out borrowed
//! [`crate::flat::FlatRecordsRef`] views straight over the file bytes —
//! the same layout works for a heap buffer today and an mmap'd file
//! later.
//!
//! # Layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"NUCINDX1"
//!      8     8  file hash: [`hash64`] over the whole file with these
//!               8 bytes zeroed (detects any single flipped byte)
//!     16     4  format version (u32, currently 1)
//!     20     4  r (u32)        — nucleus family parameter
//!     24     4  s (u32)        — nucleus family parameter
//!     28     4  arity (u32)    — words per record, C(s,r) - 1
//!     32     8  n (u64)        — graph vertex count   ┐
//!     40     8  m (u64)        — graph edge count     │ fingerprint
//!     48     8  degree hash    — [`hash64`] of degrees┘
//!     56     8  cells (u64)    — number of peeling cells
//!     64     8  records (u64)  — total container records
//!     72     4  section count (u32, currently 3)
//!     76     4  reserved (u32, 0)
//!     80    96  3 × 32-byte section entries:
//!               { tag u32, reserved u32, offset u64, len u64, hash u64 }
//!    176     …  payload sections, 8-byte aligned, zero padding between
//! ```
//!
//! Sections appear in tag order: `COUNTS` (cells × u32 ω counts),
//! `OFFSETS` ((cells + 1) × u64 record offsets), `DATA`
//! (records × arity × u32 words). Each entry carries its own
//! [`hash64`] so a loader can localize corruption.
//!
//! # Compatibility policy
//!
//! Any change to the header layout, section encoding, or the meaning of
//! an existing field bumps [`FORMAT_VERSION`]; loaders reject files with
//! a different version outright (no migration shims at this stage).
//! Adding a *new* section tag also bumps the version, because the
//! section count is validated exactly.
//!
//! The fingerprint intentionally hashes only `(n, m, degree sequence)` —
//! it catches vertex/edge count changes and any degree change, but a
//! degree-preserving rewire produces the same fingerprint. Callers that
//! need stronger guarantees should compare the graph files themselves.

use std::io::Write;
use std::path::Path;

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::flat::{FlatRecords, FlatRecordsRef, MAX_ARITY};

/// Magic bytes opening every persisted index file.
pub const MAGIC: [u8; 8] = *b"NUCINDX1";
/// Current format version; see the module docs for the bump rule.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header length in bytes (magic through the section table).
pub const HEADER_LEN: usize = 176;
/// Byte range of the whole-file hash, zeroed while hashing.
pub const FILE_HASH_RANGE: std::ops::Range<usize> = 8..16;

/// Section tag: per-cell ω counts, `cells` × u32.
pub const SEC_COUNTS: u32 = 1;
/// Section tag: record offsets, `(cells + 1)` × u64.
pub const SEC_OFFSETS: u32 = 2;
/// Section tag: record words, `records * arity` × u32.
pub const SEC_DATA: u32 = 3;
const SECTION_COUNT: usize = 3;
const SECTION_ENTRY_LEN: usize = 32;

/// The dependency-free checksum this format uses for both the whole
/// file and each section: FNV-style multiply-xor over 8-byte
/// little-endian chunks (zero-padded tail), finished with the length.
///
/// Each step `h = (h ^ chunk) * PRIME` is a bijection of `h` (odd
/// multiplier mod 2^64), so two equal-length inputs differing in any
/// byte diverge at the first differing chunk and stay divergent
/// through every later step — the guarantee behind the loader's
/// "every flipped byte is rejected" property — while hashing runs a
/// word, not a byte, at a time (index files are megabytes; the load
/// path hashes each byte twice, once for the file and once for its
/// section). Changing this function is a format break: bump
/// [`FORMAT_VERSION`].
pub fn hash64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    (h ^ bytes.len() as u64).wrapping_mul(PRIME)
}

/// Identity of the graph an index was built from: enough to reject an
/// index when the graph has since changed shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphFingerprint {
    /// Vertex count.
    pub n: u64,
    /// Undirected edge count.
    pub m: u64,
    /// [`hash64`] over the little-endian `u32` degree sequence.
    pub degree_hash: u64,
}

/// Fingerprints `g` for index validation; see [`GraphFingerprint`].
pub fn graph_fingerprint(g: &CsrGraph) -> GraphFingerprint {
    let mut bytes = Vec::with_capacity(g.n() * 4);
    for v in 0..g.n() as u32 {
        bytes.extend_from_slice(&(g.degree(v) as u32).to_le_bytes());
    }
    GraphFingerprint {
        n: g.n() as u64,
        m: g.m() as u64,
        degree_hash: hash64(&bytes),
    }
}

/// Parsed fixed header of an index file.
#[derive(Clone, Copy, Debug)]
pub struct IndexHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Nucleus family parameter r (cell clique size).
    pub r: u32,
    /// Nucleus family parameter s (container clique size).
    pub s: u32,
    /// Words per record, `C(s,r) - 1`.
    pub arity: u32,
    /// Fingerprint of the source graph.
    pub fingerprint: GraphFingerprint,
    /// Number of peeling cells.
    pub cells: u64,
    /// Total container records.
    pub records: u64,
}

fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// Encodes `flat` (plus its per-cell counts) into the version-1 byte
/// image for the `(r, s)` family of a graph with fingerprint `fp`.
pub fn encode_index(r: u32, s: u32, fp: GraphFingerprint, flat: &FlatRecords) -> Vec<u8> {
    let cells = flat.cells();
    let records = flat.record_count();
    let arity = flat.arity();

    let counts: Vec<u8> = flat.counts().iter().flat_map(|c| c.to_le_bytes()).collect();
    let offsets: Vec<u8> = flat
        .offsets()
        .iter()
        .flat_map(|&o| (o as u64).to_le_bytes())
        .collect();
    let data: Vec<u8> = flat.data().iter().flat_map(|w| w.to_le_bytes()).collect();
    let sections: [(u32, &[u8]); SECTION_COUNT] = [
        (SEC_COUNTS, &counts),
        (SEC_OFFSETS, &offsets),
        (SEC_DATA, &data),
    ];

    let mut total = HEADER_LEN;
    for (_, body) in &sections {
        total = pad8(total) + body.len();
    }
    let mut buf = vec![0u8; pad8(total)];

    buf[0..8].copy_from_slice(&MAGIC);
    // bytes 8..16 (file hash) stay zero until the end
    buf[16..20].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf[20..24].copy_from_slice(&r.to_le_bytes());
    buf[24..28].copy_from_slice(&s.to_le_bytes());
    buf[28..32].copy_from_slice(&(arity as u32).to_le_bytes());
    buf[32..40].copy_from_slice(&fp.n.to_le_bytes());
    buf[40..48].copy_from_slice(&fp.m.to_le_bytes());
    buf[48..56].copy_from_slice(&fp.degree_hash.to_le_bytes());
    buf[56..64].copy_from_slice(&(cells as u64).to_le_bytes());
    buf[64..72].copy_from_slice(&(records as u64).to_le_bytes());
    buf[72..76].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    // bytes 76..80 reserved, zero

    let mut cursor = HEADER_LEN;
    for (i, (tag, body)) in sections.iter().enumerate() {
        cursor = pad8(cursor);
        let e = 80 + i * SECTION_ENTRY_LEN;
        buf[e..e + 4].copy_from_slice(&tag.to_le_bytes());
        // entry reserved u32 stays zero
        buf[e + 8..e + 16].copy_from_slice(&(cursor as u64).to_le_bytes());
        buf[e + 16..e + 24].copy_from_slice(&(body.len() as u64).to_le_bytes());
        buf[e + 24..e + 32].copy_from_slice(&hash64(body).to_le_bytes());
        buf[cursor..cursor + body.len()].copy_from_slice(body);
        cursor += body.len();
    }

    let hash = hash64(&buf);
    buf[FILE_HASH_RANGE].copy_from_slice(&hash.to_le_bytes());
    buf
}

/// Streams [`encode_index`]'s image to `w`.
pub fn write_index<W: Write>(
    w: &mut W,
    r: u32,
    s: u32,
    fp: GraphFingerprint,
    flat: &FlatRecords,
) -> Result<(), GraphError> {
    w.write_all(&encode_index(r, s, fp, flat))?;
    Ok(())
}

/// Writes [`encode_index`]'s image to a file at `path`.
pub fn write_index_file<P: AsRef<Path>>(
    path: P,
    r: u32,
    s: u32,
    fp: GraphFingerprint,
    flat: &FlatRecords,
) -> Result<(), GraphError> {
    std::fs::write(path, encode_index(r, s, fp, flat))?;
    Ok(())
}

/// A fully validated in-memory image of an index file.
///
/// Construction ([`IndexImage::from_bytes`]) is the trust boundary: it
/// verifies the magic, version, whole-file and per-section checksums,
/// section-table bounds, and the structural invariants of the flat
/// records before any accessor can observe the bytes. After that,
/// [`IndexImage::flat`] hands out zero-copy [`FlatRecordsRef`] views
/// borrowing the image buffer.
#[derive(Clone, Debug)]
pub struct IndexImage {
    buf: Vec<u8>,
    header: IndexHeader,
    counts: std::ops::Range<usize>,
    offsets: std::ops::Range<usize>,
    data: std::ops::Range<usize>,
}

fn bad(msg: impl Into<String>) -> GraphError {
    GraphError::Format(msg.into())
}

impl IndexImage {
    /// Validates `buf` as a version-1 index image and takes ownership.
    ///
    /// Returns [`GraphError::Format`] (or [`GraphError::Records`] from
    /// the flat-record validator) on any violation — truncation, bad
    /// magic, unsupported version, checksum mismatch, out-of-bounds or
    /// overlapping sections, or malformed record structure. Never
    /// panics on untrusted bytes.
    pub fn from_bytes(buf: Vec<u8>) -> Result<Self, GraphError> {
        if buf.len() < 16 {
            return Err(bad(format!("truncated file: {} bytes", buf.len())));
        }
        if buf[0..8] != MAGIC {
            return Err(bad("bad magic (not a nucleus index file)"));
        }
        if buf.len() < HEADER_LEN {
            return Err(bad(format!(
                "truncated header: {} bytes, need {HEADER_LEN}",
                buf.len()
            )));
        }
        let u32_at = |i: usize| -> u32 {
            let mut w = [0u8; 4];
            w.copy_from_slice(&buf[i..i + 4]);
            u32::from_le_bytes(w)
        };
        let u64_at = |i: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&buf[i..i + 8]);
            u64::from_le_bytes(w)
        };
        // Version before checksums, so a future-version file reports
        // "unsupported version" rather than a checksum mismatch.
        let version = u32_at(16);
        if version != FORMAT_VERSION {
            return Err(bad(format!(
                "unsupported index version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let stored_hash = u64_at(8);
        let mut hashed = buf.clone();
        hashed[FILE_HASH_RANGE].fill(0);
        let actual = hash64(&hashed);
        if actual != stored_hash {
            return Err(bad(format!(
                "file checksum mismatch (stored {stored_hash:#018x}, computed {actual:#018x})"
            )));
        }
        let header = IndexHeader {
            version,
            r: u32_at(20),
            s: u32_at(24),
            arity: u32_at(28),
            fingerprint: GraphFingerprint {
                n: u64_at(32),
                m: u64_at(40),
                degree_hash: u64_at(48),
            },
            cells: u64_at(56),
            records: u64_at(64),
        };
        if header.r == 0 || header.r >= header.s {
            return Err(bad(format!(
                "invalid family (r, s) = ({}, {})",
                header.r, header.s
            )));
        }
        if header.arity == 0 || header.arity as usize > MAX_ARITY {
            return Err(bad(format!("invalid arity {}", header.arity)));
        }
        if header.cells > u32::MAX as u64 {
            return Err(bad(format!("cell count {} exceeds u32 ids", header.cells)));
        }
        let section_count = u32_at(72) as usize;
        if section_count != SECTION_COUNT {
            return Err(bad(format!(
                "expected {SECTION_COUNT} sections, header says {section_count}"
            )));
        }

        let expected_lens: [u64; SECTION_COUNT] = [
            header
                .cells
                .checked_mul(4)
                .ok_or_else(|| bad("counts size overflows"))?,
            (header.cells + 1)
                .checked_mul(8)
                .ok_or_else(|| bad("offsets size overflows"))?,
            header
                .records
                .checked_mul(header.arity as u64)
                .and_then(|w| w.checked_mul(4))
                .ok_or_else(|| bad("data size overflows"))?,
        ];
        let expected_tags = [SEC_COUNTS, SEC_OFFSETS, SEC_DATA];
        let mut ranges = [0..0, 0..0, 0..0];
        let mut prev_end = HEADER_LEN as u64;
        for i in 0..SECTION_COUNT {
            let e = 80 + i * SECTION_ENTRY_LEN;
            let tag = u32_at(e);
            if tag != expected_tags[i] {
                return Err(bad(format!(
                    "section {i}: expected tag {}, found {tag}",
                    expected_tags[i]
                )));
            }
            let off = u64_at(e + 8);
            let len = u64_at(e + 16);
            if off % 8 != 0 {
                return Err(bad(format!("section {i}: offset {off} not 8-aligned")));
            }
            if off < prev_end {
                return Err(bad(format!(
                    "section {i}: offset {off} overlaps previous section"
                )));
            }
            let end = off
                .checked_add(len)
                .ok_or_else(|| bad(format!("section {i}: bounds overflow")))?;
            if end > buf.len() as u64 {
                return Err(bad(format!(
                    "section {i}: extends to {end}, file is {} bytes",
                    buf.len()
                )));
            }
            if len != expected_lens[i] {
                return Err(bad(format!(
                    "section {i}: length {len} does not match header (expected {})",
                    expected_lens[i]
                )));
            }
            let range = off as usize..end as usize;
            let stored = u64_at(e + 24);
            let actual = hash64(&buf[range.clone()]);
            if actual != stored {
                return Err(bad(format!(
                    "section {i}: checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
                )));
            }
            ranges[i] = range;
            prev_end = end;
        }
        let [counts, offsets, data] = ranges;

        // Structural validation of the record store itself.
        let flat = FlatRecordsRef::new(
            &buf[offsets.clone()],
            &buf[data.clone()],
            header.arity as usize,
        )?;
        if flat.record_count() as u64 != header.records {
            return Err(bad(format!(
                "offsets imply {} records, header says {}",
                flat.record_count(),
                header.records
            )));
        }
        // Cross-check the counts section against the offsets: a loaded
        // index must never disagree with itself about ω.
        for (cell, expect) in flat.counts().into_iter().enumerate() {
            let at = counts.start + cell * 4;
            let mut w = [0u8; 4];
            w.copy_from_slice(&buf[at..at + 4]);
            let stored = u32::from_le_bytes(w);
            if stored != expect {
                return Err(bad(format!(
                    "cell {cell}: counts section says {stored}, offsets imply {expect}"
                )));
            }
        }

        Ok(IndexImage {
            buf,
            header,
            counts,
            offsets,
            data,
        })
    }

    /// Reads and validates the index file at `path`.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Parsed header of the image.
    pub fn header(&self) -> &IndexHeader {
        &self.header
    }

    /// Zero-copy record view borrowing this image's buffer. O(1):
    /// [`IndexImage::from_bytes`] already proved the invariants, so the
    /// view skips the re-scan — peeling constructs one per container
    /// lookup.
    pub fn flat(&self) -> FlatRecordsRef<'_> {
        FlatRecordsRef::new_prevalidated(
            &self.buf[self.offsets.clone()],
            &self.buf[self.data.clone()],
            self.header.arity as usize,
        )
    }

    /// Per-cell ω counts decoded from the counts section.
    pub fn counts(&self) -> Vec<u32> {
        self.buf[self.counts.clone()]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Total size of the image in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when the image holds no bytes (never, for a valid image).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The raw validated bytes, e.g. for re-writing the file elsewhere.
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::offsets_from_counts;

    fn sample_flat() -> FlatRecords {
        let offsets = offsets_from_counts(&[2, 0, 1, 3]);
        let data: Vec<u32> = (0..12).collect();
        FlatRecords::from_parts(offsets, data, 2)
    }

    fn sample_graph() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    fn sample_image_bytes() -> Vec<u8> {
        encode_index(2, 3, graph_fingerprint(&sample_graph()), &sample_flat())
    }

    #[test]
    fn hash_distinguishes_every_byte_flip_and_length() {
        // The format's integrity story rests on two properties of
        // `hash64` (see its docs): equal-length inputs differing in
        // any single byte hash differently, and appending bytes —
        // even zeros, which the tail padding could otherwise absorb —
        // changes the hash.
        let base: Vec<u8> = (0..41u8).map(|i| i.wrapping_mul(37)).collect();
        let h = hash64(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut bad = base.clone();
                bad[i] ^= flip;
                assert_ne!(hash64(&bad), h, "byte {i} flip {flip:#x}");
            }
        }
        let mut extended = base.clone();
        extended.push(0);
        assert_ne!(hash64(&extended), h, "zero-extension must not collide");
        assert_ne!(hash64(&base[..base.len() - 1]), h, "truncation");
    }

    #[test]
    fn fingerprint_tracks_shape() {
        let g = sample_graph();
        let fp = graph_fingerprint(&g);
        assert_eq!(fp.n, 4);
        assert_eq!(fp.m, 5);
        // Removing an edge changes m and the degree hash.
        let g2 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3)]);
        let fp2 = graph_fingerprint(&g2);
        assert_ne!(fp, fp2);
        assert_ne!(fp.degree_hash, fp2.degree_hash);
    }

    #[test]
    fn encode_then_load_round_trips() {
        let flat = sample_flat();
        let img = IndexImage::from_bytes(sample_image_bytes()).unwrap();
        let h = img.header();
        assert_eq!(h.version, FORMAT_VERSION);
        assert_eq!((h.r, h.s), (2, 3));
        assert_eq!(h.arity as usize, flat.arity());
        assert_eq!(h.cells as usize, flat.cells());
        assert_eq!(h.records as usize, flat.record_count());
        assert_eq!(h.fingerprint, graph_fingerprint(&sample_graph()));
        assert_eq!(img.counts(), flat.counts());
        assert_eq!(img.flat().to_owned_records(), flat);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("nucleus-persist-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("rt-{}.nidx", std::process::id()));
        let flat = sample_flat();
        write_index_file(&path, 2, 3, graph_fingerprint(&sample_graph()), &flat).unwrap();
        let img = IndexImage::read_file(&path).unwrap();
        assert_eq!(img.flat().to_owned_records(), flat);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = sample_image_bytes();
        bytes[0] = b'X';
        let err = IndexImage::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample_image_bytes();
        bytes[16..20].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal so the version check (not the hash) is what trips.
        let mut hashed = bytes.clone();
        hashed[FILE_HASH_RANGE].fill(0);
        let h = hash64(&hashed);
        bytes[FILE_HASH_RANGE].copy_from_slice(&h.to_le_bytes());
        let err = IndexImage::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn rejects_every_truncation() {
        let bytes = sample_image_bytes();
        for len in 0..bytes.len() {
            assert!(
                IndexImage::from_bytes(bytes[..len].to_vec()).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
    }

    #[test]
    fn rejects_every_flipped_byte() {
        let bytes = sample_image_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(
                IndexImage::from_bytes(bad).is_err(),
                "flipped byte {i} was accepted"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample_image_bytes();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        assert!(IndexImage::from_bytes(bytes).is_err());
    }

    #[test]
    fn empty_store_round_trips() {
        let flat = FlatRecords::from_parts(vec![0], vec![], 2);
        let bytes = encode_index(2, 3, graph_fingerprint(&sample_graph()), &flat);
        let img = IndexImage::from_bytes(bytes).unwrap();
        assert_eq!(img.header().cells, 0);
        assert_eq!(img.flat().record_count(), 0);
    }
}
