//! Immutable undirected graph in compressed-sparse-row (CSR) form.

use serde::{Deserialize, Serialize};

/// Vertex identifier. Dense in `0..n`.
pub type VertexId = u32;
/// Undirected edge identifier. Dense in `0..m`, assigned in CSR order of
/// the lexicographically smaller endpoint.
pub type EdgeId = u32;

/// A simple (no self-loops, no multi-edges), undirected graph stored in
/// CSR form with per-arc undirected edge ids.
///
/// Both directions of every edge are materialized, so `neighbors(v)` is a
/// sorted slice and `edge_id(u, v)` is a binary search. Edge ids are the
/// peeling *cells* of the (2,3)-nucleus decomposition, which is why they
/// are first-class here rather than an afterthought.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`edge_ids` for `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists (both directions).
    neighbors: Vec<u32>,
    /// `edge_ids[i]` is the undirected id of the arc `neighbors[i]`.
    edge_ids: Vec<u32>,
    /// Endpoints of every undirected edge, `u < v`.
    endpoints: Vec<(u32, u32)>,
}

impl CsrGraph {
    /// Builds a graph over vertices `0..n` from an arbitrary edge list.
    ///
    /// Self-loops are dropped and duplicate/reversed copies of the same
    /// edge are merged. Endpoints must be `< n`.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut canon: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range for n={n}"
            );
            if a == b {
                continue; // self-loop
            }
            canon.push(if a < b { (a, b) } else { (b, a) });
        }
        canon.sort_unstable();
        canon.dedup();
        Self::from_sorted_unique_edges(n, canon)
    }

    /// Builds from edges already canonicalized: `u < v`, sorted, unique.
    /// This is the fast path used by generators that produce clean lists.
    pub fn from_sorted_unique_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges not sorted/unique"
        );
        let m = edges.len();
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            debug_assert!(u < v, "edge not canonical");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut neighbors = vec![0u32; acc];
        let mut edge_ids = vec![0u32; acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            let eid = eid as u32;
            let cu = cursor[u as usize];
            neighbors[cu] = v;
            edge_ids[cu] = eid;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neighbors[cv] = u;
            edge_ids[cv] = eid;
            cursor[v as usize] += 1;
        }
        // Each adjacency list must be sorted for binary-search lookups.
        // Edges were inserted in sorted order of (min, max); the arcs of a
        // vertex toward *larger* neighbors arrive sorted, but arcs toward
        // smaller neighbors are interleaved, so sort each list with its
        // parallel edge-id array.
        let mut scratch: Vec<(u32, u32)> = Vec::new();
        for v in 0..n {
            let (s, e) = (offsets[v], offsets[v + 1]);
            let window = &neighbors[s..e];
            if window.windows(2).all(|w| w[0] < w[1]) {
                continue;
            }
            scratch.clear();
            scratch.extend(
                neighbors[s..e]
                    .iter()
                    .copied()
                    .zip(edge_ids[s..e].iter().copied()),
            );
            scratch.sort_unstable();
            for (i, &(nb, id)) in scratch.iter().enumerate() {
                neighbors[s + i] = nb;
                edge_ids[s + i] = id;
            }
        }
        debug_assert_eq!(edges.len(), m);
        CsrGraph {
            offsets,
            neighbors,
            edge_ids,
            endpoints: edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Undirected edge ids parallel to [`Self::neighbors`].
    #[inline]
    pub fn neighbor_edge_ids(&self, v: u32) -> &[u32] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates `(neighbor, edge_id)` pairs of `v` in sorted neighbor order.
    #[inline]
    pub fn arcs(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_edge_ids(v).iter().copied())
    }

    /// Endpoints `(u, v)` with `u < v` of the undirected edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (u32, u32) {
        self.endpoints[e as usize]
    }

    /// All edges as an endpoint slice, indexed by edge id.
    #[inline]
    pub fn edge_endpoints(&self) -> &[(u32, u32)] {
        &self.endpoints
    }

    /// Whether the edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Id of the edge `{u, v}`, if present.
    #[inline]
    pub fn edge_id(&self, u: u32, v: u32) -> Option<EdgeId> {
        let s = self.offsets[u as usize];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_ids[s + i])
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = u32> {
        0..self.n() as u32
    }

    /// Iterator over `(edge_id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, u32, u32)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (e as u32, u, v))
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.degree(v as u32))
            .max()
            .unwrap_or(0)
    }

    /// Sum of `degree(v)^2`; a cheap density/skew indicator used by the
    /// bench harness when describing datasets.
    pub fn degree_square_sum(&self) -> u64 {
        (0..self.n())
            .map(|v| (self.degree(v as u32) as u64).pow(2))
            .sum()
    }

    /// Induced edge count among `set` (must be small; O(|set|·log·deg)).
    /// Used for density reports on extracted nuclei.
    pub fn induced_edge_count(&self, set: &[u32]) -> usize {
        let mut count = 0usize;
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if self.has_edge(u.min(v), u.max(v)) || self.has_edge(u.max(v), u.min(v)) {
                    count += 1;
                }
            }
        }
        count
    }

    /// Density `2m / (n (n-1))` of the subgraph induced by `set`.
    pub fn induced_density(&self, set: &[u32]) -> f64 {
        let k = set.len();
        if k < 2 {
            return 0.0;
        }
        let m = self.induced_edge_count(set);
        (2.0 * m as f64) / (k as f64 * (k as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-2, 1-3, 2-3 : two triangles sharing edge 1-2.
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn edge_ids_are_consistent_both_directions() {
        let g = diamond();
        for (e, u, v) in g.edges() {
            assert_eq!(g.edge_id(u, v), Some(e));
            assert_eq!(g.edge_id(v, u), Some(e));
            assert_eq!(g.endpoints(e), (u, v));
            assert!(u < v);
        }
    }

    #[test]
    fn arcs_match_neighbors() {
        let g = diamond();
        for v in g.vertices() {
            let via_arcs: Vec<u32> = g.arcs(v).map(|(n, _)| n).collect();
            assert_eq!(via_arcs.as_slice(), g.neighbors(v));
            for (nb, eid) in g.arcs(v) {
                let (a, b) = g.endpoints(eid);
                assert!((a, b) == (v.min(nb), v.max(nb)));
            }
        }
    }

    #[test]
    fn induced_density() {
        let g = diamond();
        assert_eq!(g.induced_edge_count(&[0, 1, 2]), 3);
        assert!((g.induced_density(&[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert_eq!(g.induced_edge_count(&[0, 3]), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_edges(5, &[(1, 3)]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
    }
}
