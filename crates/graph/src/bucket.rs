//! Bucket queues used by the peeling and LCPS algorithms.
//!
//! Two variants are needed:
//!
//! * [`PeelBuckets`] — the Batagelj–Zaversnik array layout (`bin`, `pos`,
//!   `vert`) that the peeling phase (Alg. 1 of the paper) relies on. It
//!   supports `pop_min` with a monotone cursor and O(1) `decrement`,
//!   giving the classic O(n + m) k-core peeling bound.
//! * [`MaxBuckets`] — a max-priority bucket queue with a movable cursor,
//!   which is exactly the "bucket data structure" the paper plugs into
//!   Matula & Beck's LCPS to make its priority queue maintainable (§5.1).

/// Min-bucket structure over integer keys, specialized for peeling:
/// keys only ever *decrease by one at a time*, and never below the key of
/// the most recently popped element.
///
/// # Laziness invariant
///
/// `bin[d]` is kept **exact only for buckets above the floor** (the key
/// of the most recently popped element). Pops consume the minimum
/// bucket, so they can only make the starts of buckets *at or below*
/// the floor stale — and [`PeelBuckets::decrement`] may only touch
/// elements with `key > floor`, so those stale entries are never read
/// again. This is what lets `pop_min` run in O(1) instead of rewriting
/// every bucket start `≤ k + 1` on each pop.
#[derive(Clone, Debug)]
pub struct PeelBuckets {
    /// `bin[d]` = first index in `vert` of the (unpopped part of the)
    /// bucket with key `d`. Length `max_key + 2`. Exact for `d > floor`;
    /// entries for drained buckets go stale and are never read (see the
    /// laziness invariant above).
    bin: Vec<usize>,
    /// `pos[x]` = current index of element `x` in `vert`.
    pos: Vec<usize>,
    /// Elements sorted by current key; `vert[cursor..]` are unpopped.
    vert: Vec<u32>,
    /// Current key of every element.
    key: Vec<u32>,
    /// Popped-element bitmap (one bit per element): 64× denser than the
    /// `pos`-vs-cursor comparison, so the peeling loop's dead-container
    /// scans stay in cache on large inputs.
    popped: Vec<u64>,
    cursor: usize,
    /// Key of the most recently popped element (monotone non-decreasing).
    floor: u32,
}

impl PeelBuckets {
    /// Builds the structure from initial keys (one per element `0..n`).
    pub fn new(keys: Vec<u32>) -> Self {
        let n = keys.len();
        let max_key = keys.iter().copied().max().unwrap_or(0) as usize;
        // Counting sort into `vert`.
        let mut bin = vec![0usize; max_key + 2];
        for &k in &keys {
            bin[k as usize + 1] += 1;
        }
        for d in 1..bin.len() {
            bin[d] += bin[d - 1];
        }
        let mut vert = vec![0u32; n];
        let mut pos = vec![0usize; n];
        let mut cursor_per_key = bin.clone();
        for x in 0..n {
            let k = keys[x] as usize;
            let p = cursor_per_key[k];
            vert[p] = x as u32;
            pos[x] = p;
            cursor_per_key[k] += 1;
        }
        PeelBuckets {
            bin,
            pos,
            vert,
            key: keys,
            popped: vec![0u64; n.div_ceil(64)],
            cursor: 0,
            floor: 0,
        }
    }

    /// Builds the structure over a *subset* of the id space `0..n`:
    /// only `members` enter the queue (with `key_of` their initial
    /// keys), every non-member starts out already popped, and the pop
    /// floor starts at `floor` instead of 0 — the layout a peeling
    /// engine needs to hand a partially peeled run to the bucket queue
    /// mid-flight. Costs O(members) queue work plus three zero-filled
    /// `n`-sized arrays; no per-non-member queue operations.
    ///
    /// Keys of non-members read as 0, so with `floor > 0` the peeling
    /// guard `key(x) > floor` never lets a non-member reach
    /// [`PeelBuckets::decrement`].
    pub fn over_subset(
        n: usize,
        members: &[u32],
        mut key_of: impl FnMut(u32) -> u32,
        floor: u32,
    ) -> Self {
        let mut key = vec![0u32; n];
        let mut max_key = 0u32;
        for &x in members {
            let k = key_of(x);
            key[x as usize] = k;
            max_key = max_key.max(k);
        }
        let mut bin = vec![0usize; max_key as usize + 2];
        for &x in members {
            bin[key[x as usize] as usize + 1] += 1;
        }
        for d in 1..bin.len() {
            bin[d] += bin[d - 1];
        }
        let mut vert = vec![0u32; members.len()];
        let mut pos = vec![0usize; n];
        let mut cursor_per_key = bin.clone();
        for &x in members {
            let k = key[x as usize] as usize;
            let p = cursor_per_key[k];
            vert[p] = x;
            pos[x as usize] = p;
            cursor_per_key[k] += 1;
        }
        let mut popped = vec![u64::MAX; n.div_ceil(64)];
        for &x in members {
            popped[x as usize / 64] &= !(1u64 << (x % 64));
        }
        PeelBuckets {
            bin,
            pos,
            vert,
            key,
            popped,
            cursor: 0,
            floor,
        }
    }

    /// Marks a non-member of a subset queue (see
    /// [`PeelBuckets::over_subset`]) as popped without it ever having
    /// been queued — how a mid-flight hand-off records the cells it
    /// processed outside the queue, so [`PeelBuckets::is_popped`]
    /// dead-checks see them.
    #[inline]
    pub fn mark_popped(&mut self, x: u32) {
        // Members keep `vert[pos[x]] == x` for their whole life, and
        // `vert` holds members only — so a non-member never matches.
        debug_assert!(
            self.is_popped(x) || self.vert.get(self.pos[x as usize]).is_none_or(|&v| v != x),
            "mark_popped on a queued member {x}"
        );
        self.popped[x as usize / 64] |= 1 << (x % 64);
    }

    /// Clears the popped bit of a non-member of a subset queue: the
    /// complement of [`PeelBuckets::mark_popped`] for cells whose
    /// processing the caller is about to *replay* — they must start
    /// unpopped so dead-container checks don't see them as done before
    /// their replay turn, then [`PeelBuckets::mark_popped`] re-marks
    /// each one as it is processed.
    #[inline]
    pub fn clear_popped(&mut self, x: u32) {
        debug_assert!(
            self.vert.get(self.pos[x as usize]).is_none_or(|&v| v != x),
            "clear_popped on a queued member {x}"
        );
        self.popped[x as usize / 64] &= !(1u64 << (x % 64));
    }

    /// Number of elements (popped or not).
    pub fn len(&self) -> usize {
        self.vert.len()
    }

    /// True when every element has been popped.
    pub fn is_empty(&self) -> bool {
        self.cursor >= self.vert.len()
    }

    /// Current key of element `x`.
    #[inline]
    pub fn key(&self, x: u32) -> u32 {
        self.key[x as usize]
    }

    /// Whether `x` has already been popped.
    #[inline]
    pub fn is_popped(&self, x: u32) -> bool {
        self.popped[x as usize / 64] >> (x % 64) & 1 == 1
    }

    /// Pops an element with the minimum current key.
    ///
    /// Returns `(element, key)`. Keys returned by successive pops are
    /// non-decreasing — this is the monotonicity the peeling process
    /// guarantees and the hierarchy algorithms exploit.
    pub fn pop_min(&mut self) -> Option<(u32, u32)> {
        if self.cursor >= self.vert.len() {
            return None;
        }
        let x = self.vert[self.cursor];
        let k = self.key[x as usize];
        debug_assert!(
            k >= self.floor,
            "bucket keys regressed: {k} < {}",
            self.floor
        );
        self.floor = k;
        // Deliberately no `bin` maintenance here: the pop only stales
        // the starts of buckets ≤ k, which `decrement` (guarded by
        // `key > floor = k`) can never read. Rewriting every bucket
        // start ≤ k + 1 on each pop — the eager alternative — costs
        // O(max_key) per pop and made peeling quadratic on inputs with
        // a long ladder of distinct keys.
        self.popped[x as usize / 64] |= 1 << (x % 64);
        self.cursor += 1;
        Some((x, k))
    }

    /// Decrements the key of an unpopped element by one.
    ///
    /// Must only be called when `key(x)` is strictly greater than the key
    /// of the last element popped (the peeling guard `ω(v) > ω(u)`), which
    /// keeps the layout valid.
    #[inline]
    pub fn decrement(&mut self, x: u32) {
        let xi = x as usize;
        let d = self.key[xi] as usize;
        debug_assert!(!self.is_popped(x), "decrement of popped element {x}");
        debug_assert!(
            self.key[xi] > self.floor,
            "decrement would drop key below peeling floor"
        );
        let p = self.pos[xi];
        // `key[x] > floor` means bucket `d` is above the floor, where
        // `bin` is exact (see the laziness invariant on the struct); the
        // clamp is defensive normalization for the cursor boundary only.
        let start = self.bin[d].max(self.cursor);
        debug_assert!(self.key[self.vert[start] as usize] == self.key[xi]);
        self.bin[d] = start;
        let w = self.vert[start];
        if w != x {
            self.vert[p] = w;
            self.vert[start] = x;
            self.pos[w as usize] = p;
            self.pos[xi] = start;
        }
        self.bin[d] = start + 1;
        self.key[xi] -= 1;
    }
}

/// Max-priority bucket queue for the LCPS traversal: elements are pushed
/// with a fixed priority and popped highest-first. `O(1)` push; pops cost
/// amortized `O(1)` plus cursor movement bounded by total priority drift.
#[derive(Clone, Debug)]
pub struct MaxBuckets {
    buckets: Vec<Vec<u32>>,
    cur_max: usize,
    len: usize,
}

impl MaxBuckets {
    /// Queue accepting priorities `0..=max_priority`.
    ///
    /// `max_priority` is a hard capacity invariant: [`MaxBuckets::push`]
    /// saturates any larger priority to `max_priority` (checked in
    /// release builds too, not just a `debug_assert`), so a queue built
    /// with `MaxBuckets::new(0)` degenerates to a stack of priority-0
    /// elements rather than indexing out of bounds.
    pub fn new(max_priority: u32) -> Self {
        MaxBuckets {
            buckets: vec![Vec::new(); max_priority as usize + 1],
            cur_max: 0,
            len: 0,
        }
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no element is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes `x` with priority `p`.
    ///
    /// Priorities above the `max_priority` the queue was built with are
    /// clamped to `max_priority` — the saturating release-mode
    /// enforcement of the capacity invariant, identical in debug and
    /// release so behavior never diverges between the two (callers that
    /// consider an out-of-range priority a logic error should validate
    /// before pushing).
    #[inline]
    pub fn push(&mut self, x: u32, p: u32) {
        let p = (p as usize).min(self.buckets.len() - 1);
        self.buckets[p].push(x);
        if p > self.cur_max {
            self.cur_max = p;
        }
        self.len += 1;
    }

    /// Pops an element with the maximum priority, returning `(x, p)`.
    pub fn pop_max(&mut self) -> Option<(u32, u32)> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.cur_max].is_empty() {
            // len > 0 guarantees a non-empty bucket below.
            self.cur_max -= 1;
        }
        let x = self.buckets[self.cur_max].pop().expect("non-empty bucket");
        self.len -= 1;
        Some((x, self.cur_max as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peel_pop_order_is_monotone() {
        let mut q = PeelBuckets::new(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        let mut last = 0;
        let mut seen = vec![];
        while let Some((x, k)) = q.pop_min() {
            assert!(k >= last);
            last = k;
            seen.push(x);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn peel_decrement_moves_element_earlier() {
        // keys: a=0 b=2 c=2
        let mut q = PeelBuckets::new(vec![0, 2, 2]);
        let (x, k) = q.pop_min().unwrap();
        assert_eq!((x, k), (0, 0));
        q.decrement(1); // b: 2 -> 1
        let (x, k) = q.pop_min().unwrap();
        assert_eq!((x, k), (1, 1));
        let (x, k) = q.pop_min().unwrap();
        assert_eq!((x, k), (2, 2));
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn peel_simulates_kcore_peeling() {
        // Degrees of a path 0-1-2-3: [1,2,2,1]; peeling yields all core 1.
        let mut q = PeelBuckets::new(vec![1, 2, 2, 1]);
        let adj: Vec<Vec<u32>> = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let mut lambda = vec![0u32; 4];
        while let Some((u, k)) = q.pop_min() {
            lambda[u as usize] = k;
            for &v in &adj[u as usize] {
                if !q.is_popped(v) && q.key(v) > k {
                    q.decrement(v);
                }
            }
        }
        assert_eq!(lambda, vec![1, 1, 1, 1]);
    }

    #[test]
    fn peel_all_equal_keys() {
        let mut q = PeelBuckets::new(vec![7; 5]);
        for _ in 0..5 {
            let (_, k) = q.pop_min().unwrap();
            assert_eq!(k, 7);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peel_empty() {
        let mut q = PeelBuckets::new(vec![]);
        assert!(q.pop_min().is_none());
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    /// Regression test for the O(max_key) `bin` rewrite `pop_min` used
    /// to perform: keys form one long ladder (0, 1, 2, …), so the old
    /// eager normalization rewrote `k + 2` bucket starts on the k-th
    /// pop — O(n²) total, minutes at this size. The lazy scheme pops
    /// the whole ladder in O(n).
    #[test]
    fn peel_large_max_key_ladder_is_linear() {
        let n: u32 = 200_000;
        let mut q = PeelBuckets::new((0..n).collect());
        // Interleave decrements so stale-looking bucket starts are
        // exercised, not just straight pops: before popping element i,
        // pull i + 1 down by one (from i + 1 to i, entering the bucket
        // currently being drained).
        let mut popped = 0u32;
        let mut last = 0u32;
        while let Some((x, k)) = q.pop_min() {
            assert!(k >= last, "monotone pops");
            last = k;
            popped += 1;
            let next = x + 1;
            if next < n && !q.is_popped(next) && q.key(next) > k {
                q.decrement(next);
            }
        }
        assert_eq!(popped, n);
        // every second element was decremented once: λ ladder collapses
        assert_eq!(last, n - 1 - 1); // final key: n-1 decremented once
    }

    /// Randomized cross-check of the lazy `bin` maintenance against a
    /// naive priority simulation: arbitrary valid interleavings of
    /// `pop_min` and `decrement` (respecting the `key > floor` guard)
    /// must pop identical key sequences.
    #[test]
    fn peel_lazy_bins_match_naive_simulation() {
        // Tiny deterministic LCG so no RNG dependency is needed here.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..50 {
            let n = 3 + (rng() % 40) as usize;
            let keys: Vec<u32> = (0..n).map(|_| rng() % 12).collect();
            let mut q = PeelBuckets::new(keys.clone());
            let mut naive: Vec<Option<u32>> = keys.iter().copied().map(Some).collect();
            let mut floor = 0u32;
            for _ in 0..n {
                // a few random valid decrements between pops
                for _ in 0..(rng() % 4) {
                    let x = rng() % n as u32;
                    if !q.is_popped(x) && q.key(x) > floor {
                        q.decrement(x);
                        *naive[x as usize].as_mut().unwrap() -= 1;
                    }
                }
                let (x, k) = q.pop_min().expect("element left");
                floor = k;
                let min_naive = naive.iter().flatten().min().copied().unwrap();
                assert_eq!(k, min_naive, "trial {trial}: popped key vs naive min");
                assert_eq!(naive[x as usize], Some(k), "trial {trial}: popped key");
                naive[x as usize] = None;
                assert!(q.is_popped(x));
            }
            assert!(q.pop_min().is_none());
        }
    }

    #[test]
    fn max_buckets_pop_highest_first() {
        let mut q = MaxBuckets::new(10);
        q.push(1, 3);
        q.push(2, 7);
        q.push(3, 7);
        q.push(4, 0);
        let (x, p) = q.pop_max().unwrap();
        assert_eq!(p, 7);
        assert!(x == 2 || x == 3);
        q.push(5, 9); // priority can rise above the current max
        assert_eq!(q.pop_max().unwrap(), (5, 9));
        let (_, p) = q.pop_max().unwrap();
        assert_eq!(p, 7);
        assert_eq!(q.pop_max().unwrap(), (1, 3));
        assert_eq!(q.pop_max().unwrap(), (4, 0));
        assert!(q.pop_max().is_none());
    }

    /// The capacity invariant of `MaxBuckets::new` holds in release
    /// builds: out-of-range priorities saturate to `max_priority`
    /// instead of indexing out of bounds.
    #[test]
    fn max_buckets_priority_saturates_at_capacity() {
        // the degenerate queue: everything clamps to priority 0
        let mut q = MaxBuckets::new(0);
        q.push(7, 5);
        q.push(8, u32::MAX);
        q.push(9, 0);
        assert_eq!(q.len(), 3);
        let mut popped = vec![];
        while let Some((x, p)) = q.pop_max() {
            assert_eq!(p, 0);
            popped.push(x);
        }
        popped.sort_unstable();
        assert_eq!(popped, vec![7, 8, 9]);

        // clamped pushes land in the top bucket and pop first
        let mut q = MaxBuckets::new(2);
        q.push(1, 1);
        q.push(2, 99); // clamps to 2
        assert_eq!(q.pop_max().unwrap(), (2, 2));
        assert_eq!(q.pop_max().unwrap(), (1, 1));
    }

    #[test]
    fn max_buckets_len_tracking() {
        let mut q = MaxBuckets::new(2);
        assert!(q.is_empty());
        q.push(0, 1);
        q.push(1, 1);
        assert_eq!(q.len(), 2);
        q.pop_max();
        assert_eq!(q.len(), 1);
    }
}
