//! Mutable edge accumulator producing [`CsrGraph`]s.

use crate::csr::CsrGraph;

/// Collects edges (in any order, with duplicates/self-loops tolerated)
/// and freezes them into a [`CsrGraph`].
///
/// ```
/// use nucleus_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 0);
/// let g = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    max_vertex: Option<u32>,
}

impl GraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with pre-reserved capacity for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            max_vertex: None,
        }
    }

    /// Records the undirected edge `{u, v}`. Ordering, duplicates and
    /// self-loops are cleaned up at [`build`](Self::build) time.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.edges.push((u, v));
        let hi = u.max(v);
        self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
    }

    /// Ensures the vertex `v` exists even if no edge touches it.
    pub fn ensure_vertex(&mut self, v: u32) {
        self.max_vertex = Some(self.max_vertex.map_or(v, |m| m.max(v)));
    }

    /// Number of recorded (raw, possibly duplicated) edges.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into a [`CsrGraph`] over `0..=max_vertex`.
    pub fn build(self) -> CsrGraph {
        let n = self.max_vertex.map_or(0, |m| m as usize + 1);
        CsrGraph::from_edges(n, &self.edges)
    }

    /// Freezes into a [`CsrGraph`] with an explicit vertex count
    /// (useful to keep trailing isolated vertices).
    ///
    /// # Panics
    /// Panics if any recorded endpoint is `>= n`.
    pub fn build_with_n(self, n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_dedups() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, 1);
        b.add_edge(1, 3);
        b.add_edge(0, 0);
        b.add_edge(0, 2);
        let g = b.build();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn ensure_vertex_extends_range() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertex(9);
        let g = b.build();
        assert_eq!(g.n(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn build_with_explicit_n() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        let g = b.build_with_n(7);
        assert_eq!(g.n(), 7);
    }
}
