#![warn(missing_docs)]

//! Compact undirected-graph substrate for nucleus decompositions.
//!
//! This crate provides the graph plumbing the peeling algorithms of
//! Sarıyüce & Pinar (VLDB 2016) are built on:
//!
//! * [`CsrGraph`] — an immutable, simple, undirected graph in compressed
//!   sparse row form with *stable undirected edge ids* (needed because the
//!   (2,3)-nucleus decomposition peels edges, not vertices);
//! * [`GraphBuilder`] — mutable edge accumulator that deduplicates,
//!   removes self-loops and produces a [`CsrGraph`];
//! * [`bucket`] — the two bucket-queue variants used by the paper:
//!   the Batagelj–Zaversnik min-bucket layout for peeling and a
//!   max-bucket cursor queue for the LCPS traversal;
//! * [`flat`] — fixed-arity flat record storage (CSR without graph
//!   semantics), the layout behind the materialized peeling backend,
//!   in both owned ([`FlatRecords`]) and borrowed byte-backed
//!   ([`FlatRecordsRef`]) shapes;
//! * [`persist_io`] — the versioned, checksummed on-disk encoding of a
//!   flat record store plus the graph fingerprint that invalidates it;
//! * [`traversal`] — BFS and connected components;
//! * [`order`] — degree and degeneracy orderings;
//! * [`io`] — whitespace edge-list text format and a fast binary format.
//!
//! Vertices and edges are identified by `u32`, which bounds graphs at
//! ~4.2 billion vertices/edges — far beyond what a single-node in-memory
//! decomposition can hold anyway, and half the memory of `usize` ids.

pub mod bucket;
pub mod builder;
pub mod csr;
pub mod error;
pub mod flat;
pub mod io;
pub mod metrics;
pub mod order;
pub mod persist_io;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, EdgeId, VertexId};
pub use error::GraphError;
pub use flat::{FlatRecords, FlatRecordsRef};
pub use persist_io::{graph_fingerprint, GraphFingerprint, IndexImage};
