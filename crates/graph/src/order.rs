//! Vertex orderings: degree order and the degeneracy (smallest-last)
//! order of Matula & Beck, used to orient clique enumeration.

use crate::bucket::PeelBuckets;
use crate::csr::CsrGraph;

/// A total order on vertices, with both directions of the mapping.
#[derive(Clone, Debug)]
pub struct VertexOrder {
    /// `order[i]` = the i-th vertex in the order.
    pub order: Vec<u32>,
    /// `rank[v]` = position of vertex `v` in `order`.
    pub rank: Vec<u32>,
}

impl VertexOrder {
    /// Builds from an explicit order vector.
    pub fn from_order(order: Vec<u32>) -> Self {
        let mut rank = vec![0u32; order.len()];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        VertexOrder { order, rank }
    }

    /// True if `u` precedes `v`.
    #[inline]
    pub fn precedes(&self, u: u32, v: u32) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }
}

/// Non-decreasing degree order (ties by vertex id, via stable counting
/// sort inside [`PeelBuckets`]' initial layout).
pub fn degree_order(g: &CsrGraph) -> VertexOrder {
    let mut verts: Vec<u32> = (0..g.n() as u32).collect();
    verts.sort_by_key(|&v| (g.degree(v), v));
    VertexOrder::from_order(verts)
}

/// Smallest-last (degeneracy) order and the graph's degeneracy.
///
/// The order is the peeling order of the k-core decomposition: repeatedly
/// remove a vertex of minimum remaining degree. The degeneracy is the
/// largest degree seen at removal time, i.e. `max_v core(v)`.
pub fn degeneracy_order(g: &CsrGraph) -> (VertexOrder, u32) {
    let n = g.n();
    let degrees: Vec<u32> = (0..n as u32).map(|v| g.degree(v) as u32).collect();
    let mut q = PeelBuckets::new(degrees);
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    while let Some((v, k)) = q.pop_min() {
        degeneracy = degeneracy.max(k);
        order.push(v);
        for &w in g.neighbors(v) {
            if !q.is_popped(w) && q.key(w) > k {
                q.decrement(w);
            }
        }
    }
    (VertexOrder::from_order(order), degeneracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_order_is_sorted() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let ord = degree_order(&g);
        let degs: Vec<usize> = ord.order.iter().map(|&v| g.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
        for v in g.vertices() {
            assert_eq!(ord.order[ord.rank[v as usize] as usize], v);
        }
    }

    #[test]
    fn degeneracy_of_clique() {
        let mut edges = vec![];
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 4);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (2, 3), (2, 4)]);
        let (ord, d) = degeneracy_order(&g);
        assert_eq!(d, 1);
        assert_eq!(ord.order.len(), 5);
    }

    #[test]
    fn degeneracy_order_ranks_consistent() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let (ord, d) = degeneracy_order(&g);
        assert_eq!(d, 2);
        for v in g.vertices() {
            assert_eq!(ord.order[ord.rank[v as usize] as usize], v);
        }
        // precedes is a strict total order
        assert!(ord.precedes(ord.order[0], ord.order[5]));
    }
}
