//! Graph serialization: whitespace edge-list text and a compact binary
//! format.
//!
//! The text format accepts the conventions of SNAP / Network Repository /
//! Matrix Market-ish exports that the paper's datasets ship in: one edge
//! per line, `#`/`%`-prefixed comment lines, whitespace or comma
//! separators, arbitrary vertex labels remapped densely on load.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::CsrGraph;
use crate::error::GraphError;

/// Magic bytes of the binary format (`NUCG` + version 1).
const MAGIC: [u8; 4] = *b"NUCG";
const VERSION: u32 = 1;

/// Reads an edge-list from any reader.
///
/// Vertex labels may be arbitrary non-negative integers; they are
/// remapped to a dense `0..n` range in first-seen order. Returns the
/// graph; self-loops and duplicates are removed.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut remap: HashMap<u64, u32> = HashMap::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let intern = |label: u64, remap: &mut HashMap<u64, u32>| -> u32 {
        let next = remap.len() as u32;
        *remap.entry(label).or_insert(next)
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty());
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: lineno + 1,
                    content: trimmed.chars().take(80).collect(),
                })
        };
        let a = parse(parts.next())?;
        let b = parse(parts.next())?;
        // Extra columns (weights, timestamps) are ignored.
        let u = intern(a, &mut remap);
        let v = intern(b, &mut remap);
        edges.push((u, v));
    }
    let n = remap.len();
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Reads an edge-list file from `path`. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `g` as a plain edge list (one `u v` pair per line).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nucleus-hierarchy edge list: n={} m={}", g.n(), g.m())?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` in the compact binary format (little-endian u32s).
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(g.n() as u64).to_le_bytes())?;
    w.write_all(&(g.m() as u64).to_le_bytes())?;
    for (_, u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph produced by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(GraphError::Format("bad magic".into()));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    if u32::from_le_bytes(buf4) != VERSION {
        return Err(GraphError::Format("unsupported version".into()));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        edges.push((u, v));
    }
    if n > 0
        && edges
            .iter()
            .any(|&(u, v)| u as usize >= n || v as usize >= n)
    {
        return Err(GraphError::Format("edge endpoint out of range".into()));
    }
    Ok(CsrGraph::from_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_text_with_comments_and_commas() {
        let text = "# comment\n% another\n10 20\n20,30 999\n\n10 30\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3); // labels 10, 20, 30 remapped
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("1 banana\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
    }

    #[test]
    fn binary_round_trip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        for (_, u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(read_binary(buf.as_slice()).is_err());
        let mut short = Vec::new();
        write_binary(&g, &mut short).unwrap();
        short.truncate(short.len() - 2);
        assert!(read_binary(short.as_slice()).is_err());
    }
}
