//! Fixed-arity flat record storage: a CSR layout without graph
//! semantics.
//!
//! [`FlatRecords`] maps each *cell* (a dense `u32` id) to a run of
//! fixed-width `u32` records, all stored in one contiguous buffer. It is
//! the storage layer of the materialized peeling backend in
//! `nucleus-core` (each record holds the co-cell ids of one container),
//! but it is deliberately generic: any "cell → small fixed-width tuples"
//! mapping fits.
//!
//! Offsets are kept in *record* units; the data index of cell `c`'s
//! `j`-th record is `(offsets[c] + j) * arity`.

/// Exclusive prefix sum of `counts`, in record units: `out[c]` is the
/// first record index of cell `c` and `out[counts.len()]` the total.
pub fn offsets_from_counts(counts: &[u32]) -> Vec<usize> {
    let mut offsets = vec![0usize; counts.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        offsets[i + 1] = offsets[i] + c as usize;
    }
    offsets
}

/// Immutable fixed-arity record store in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatRecords {
    arity: usize,
    /// Per-cell record offsets (record units, length `cells + 1`).
    offsets: Vec<usize>,
    /// All records back to back: `record_count() * arity` words.
    data: Vec<u32>,
}

impl FlatRecords {
    /// Assembles a store from raw parts. `offsets` must be a valid
    /// prefix-sum array (see [`offsets_from_counts`]) and `data` must
    /// hold exactly `offsets.last() * arity` words.
    ///
    /// # Panics
    /// If the invariants above do not hold (`arity` of zero, empty or
    /// non-monotone offsets, or a mis-sized data buffer).
    pub fn from_parts(offsets: Vec<usize>, data: Vec<u32>, arity: usize) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert!(!offsets.is_empty(), "offsets needs a leading 0 entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        assert_eq!(
            data.len(),
            offsets[offsets.len() - 1] * arity,
            "data length must be record_count * arity"
        );
        FlatRecords {
            arity,
            offsets,
            data,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Words per record.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total number of records across all cells.
    pub fn record_count(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// `true` when no cell has any record.
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    /// Number of records of `cell`.
    #[inline]
    pub fn count(&self, cell: u32) -> u32 {
        (self.offsets[cell as usize + 1] - self.offsets[cell as usize]) as u32
    }

    /// Per-cell record counts (the inverse of [`offsets_from_counts`]).
    pub fn counts(&self) -> Vec<u32> {
        (0..self.cells() as u32).map(|c| self.count(c)).collect()
    }

    /// All records of `cell` as one flat slice of
    /// `count(cell) * arity` words.
    #[inline]
    pub fn slice_of(&self, cell: u32) -> &[u32] {
        let lo = self.offsets[cell as usize] * self.arity;
        let hi = self.offsets[cell as usize + 1] * self.arity;
        &self.data[lo..hi]
    }

    /// Iterates the records of `cell`, one `arity`-sized slice each.
    #[inline]
    pub fn records_of(&self, cell: u32) -> impl Iterator<Item = &[u32]> {
        self.slice_of(cell).chunks_exact(self.arity)
    }

    /// Heap footprint of the store in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatRecords {
        // 3 cells with 2, 0, 1 records of arity 2
        let offsets = offsets_from_counts(&[2, 0, 1]);
        FlatRecords::from_parts(offsets, vec![10, 11, 20, 21, 30, 31], 2)
    }

    #[test]
    fn offsets_prefix_sum() {
        assert_eq!(offsets_from_counts(&[2, 0, 1]), vec![0, 2, 2, 3]);
        assert_eq!(offsets_from_counts(&[]), vec![0]);
    }

    #[test]
    fn shape_and_counts() {
        let f = sample();
        assert_eq!(f.cells(), 3);
        assert_eq!(f.arity(), 2);
        assert_eq!(f.record_count(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.count(0), 2);
        assert_eq!(f.count(1), 0);
        assert_eq!(f.count(2), 1);
        assert_eq!(f.counts(), vec![2, 0, 1]);
    }

    #[test]
    fn record_access() {
        let f = sample();
        assert_eq!(f.slice_of(0), &[10, 11, 20, 21]);
        assert_eq!(f.slice_of(1), &[] as &[u32]);
        let recs: Vec<&[u32]> = f.records_of(0).collect();
        assert_eq!(recs, vec![&[10, 11][..], &[20, 21][..]]);
        assert_eq!(f.records_of(2).next(), Some(&[30, 31][..]));
    }

    #[test]
    fn bytes_counts_both_buffers() {
        let f = sample();
        assert_eq!(
            f.bytes(),
            6 * std::mem::size_of::<u32>() + 4 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn empty_store() {
        let f = FlatRecords::from_parts(vec![0], vec![], 3);
        assert_eq!(f.cells(), 0);
        assert!(f.is_empty());
        assert_eq!(f.counts(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn zero_arity_rejected() {
        FlatRecords::from_parts(vec![0], vec![], 0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn mis_sized_data_rejected() {
        FlatRecords::from_parts(vec![0, 1], vec![1, 2, 3], 2);
    }
}
