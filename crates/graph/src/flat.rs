//! Fixed-arity flat record storage: a CSR layout without graph
//! semantics.
//!
//! [`FlatRecords`] maps each *cell* (a dense `u32` id) to a run of
//! fixed-width `u32` records, all stored in one contiguous buffer. It is
//! the storage layer of the materialized peeling backend in
//! `nucleus-core` (each record holds the co-cell ids of one container),
//! but it is deliberately generic: any "cell → small fixed-width tuples"
//! mapping fits.
//!
//! Offsets are kept in *record* units; the data index of cell `c`'s
//! `j`-th record is `(offsets[c] + j) * arity`.
//!
//! Two shapes share that layout: [`FlatRecords`] owns its buffers
//! (built in memory by the materialized backend), and
//! [`FlatRecordsRef`] is a borrowed, validated view over little-endian
//! bytes — the shape a persisted index ([`crate::persist_io`]) exposes
//! after loading, designed so an mmap'd file can back it without any
//! format change.

use crate::error::GraphError;

/// Exclusive prefix sum of `counts`, in record units: `out[c]` is the
/// first record index of cell `c` and `out[counts.len()]` the total.
pub fn offsets_from_counts(counts: &[u32]) -> Vec<usize> {
    let mut offsets = vec![0usize; counts.len() + 1];
    for (i, &c) in counts.iter().enumerate() {
        offsets[i + 1] = offsets[i] + c as usize;
    }
    offsets
}

/// Immutable fixed-arity record store in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatRecords {
    arity: usize,
    /// Per-cell record offsets (record units, length `cells + 1`).
    offsets: Vec<usize>,
    /// All records back to back: `record_count() * arity` words.
    data: Vec<u32>,
}

impl FlatRecords {
    /// Assembles a store from raw parts. `offsets` must be a valid
    /// prefix-sum array (see [`offsets_from_counts`]) and `data` must
    /// hold exactly `offsets.last() * arity` words.
    ///
    /// # Panics
    /// If the invariants above do not hold (`arity` of zero, empty or
    /// non-monotone offsets, or a mis-sized data buffer). Loaders of
    /// untrusted bytes must use [`FlatRecords::try_from_parts`] instead.
    pub fn from_parts(offsets: Vec<usize>, data: Vec<u32>, arity: usize) -> Self {
        match Self::try_from_parts(offsets, data, arity) {
            Ok(flat) => flat,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`FlatRecords::from_parts`]: returns
    /// [`GraphError::Records`] instead of panicking when the invariants
    /// do not hold, including full (not debug-only) monotonicity of the
    /// offsets — the constructor the persisted-index loader funnels
    /// untrusted bytes through.
    pub fn try_from_parts(
        offsets: Vec<usize>,
        data: Vec<u32>,
        arity: usize,
    ) -> Result<Self, GraphError> {
        if arity == 0 {
            return Err(GraphError::Records("arity must be positive".into()));
        }
        if offsets.is_empty() {
            return Err(GraphError::Records(
                "offsets needs a leading 0 entry".into(),
            ));
        }
        if offsets[0] != 0 {
            return Err(GraphError::Records("offsets must start at 0".into()));
        }
        if let Some(i) = (1..offsets.len()).find(|&i| offsets[i - 1] > offsets[i]) {
            return Err(GraphError::Records(format!(
                "offsets must be monotone (offsets[{}] = {} > offsets[{}] = {})",
                i - 1,
                offsets[i - 1],
                i,
                offsets[i]
            )));
        }
        let records = offsets[offsets.len() - 1];
        let expected = records
            .checked_mul(arity)
            .ok_or_else(|| GraphError::Records("record_count * arity overflows".into()))?;
        if data.len() != expected {
            return Err(GraphError::Records(format!(
                "data length must be record_count * arity ({} records × {arity} ≠ {} words)",
                records,
                data.len()
            )));
        }
        Ok(FlatRecords {
            arity,
            offsets,
            data,
        })
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Words per record.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total number of records across all cells.
    pub fn record_count(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// `true` when no cell has any record.
    pub fn is_empty(&self) -> bool {
        self.record_count() == 0
    }

    /// Number of records of `cell`.
    #[inline]
    pub fn count(&self, cell: u32) -> u32 {
        (self.offsets[cell as usize + 1] - self.offsets[cell as usize]) as u32
    }

    /// Per-cell record counts (the inverse of [`offsets_from_counts`]).
    pub fn counts(&self) -> Vec<u32> {
        (0..self.cells() as u32).map(|c| self.count(c)).collect()
    }

    /// All records of `cell` as one flat slice of
    /// `count(cell) * arity` words.
    #[inline]
    pub fn slice_of(&self, cell: u32) -> &[u32] {
        let lo = self.offsets[cell as usize] * self.arity;
        let hi = self.offsets[cell as usize + 1] * self.arity;
        &self.data[lo..hi]
    }

    /// Iterates the records of `cell`, one `arity`-sized slice each.
    #[inline]
    pub fn records_of(&self, cell: u32) -> impl Iterator<Item = &[u32]> {
        self.slice_of(cell).chunks_exact(self.arity)
    }

    /// Heap footprint of the store in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Raw offsets array (record units, length `cells + 1`). Exposed for
    /// serializers; pairs with [`FlatRecords::try_from_parts`].
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw record words, `record_count() * arity` long. Exposed for
    /// serializers; pairs with [`FlatRecords::try_from_parts`].
    pub fn data(&self) -> &[u32] {
        &self.data
    }
}

/// Largest record arity [`FlatRecordsRef`] will accept. The nucleus
/// families store `C(s,r) - 1` co-cell ids per record, which for the
/// supported `s ≤ 4` is at most 5; 8 leaves headroom without growing
/// the stack buffer records are decoded into.
pub const MAX_ARITY: usize = 8;

/// Borrowed, validated view over the little-endian byte encoding of a
/// [`FlatRecords`]: offsets as `u64` words, record data as `u32` words.
///
/// This is the zero-copy shape a persisted index exposes after loading —
/// the slices can borrow from a heap buffer today and an mmap'd file
/// later without any format change. Construction via
/// [`FlatRecordsRef::new`] validates every structural invariant up
/// front (so accessors can index without panicking), but the design
/// stays fully safe Rust: records are decoded word-by-word from bytes
/// rather than reinterpreted, which on little-endian machines compiles
/// to plain loads.
#[derive(Clone, Copy, Debug)]
pub struct FlatRecordsRef<'a> {
    arity: usize,
    cells: usize,
    /// `(cells + 1)` little-endian `u64` offsets, in record units.
    offsets: &'a [u8],
    /// `record_count * arity` little-endian `u32` words.
    data: &'a [u8],
}

impl<'a> FlatRecordsRef<'a> {
    /// Validates and wraps raw little-endian sections.
    ///
    /// `offsets` must hold at least one `u64` (the leading 0), be a
    /// whole number of `u64`s, start at 0, and be monotone; `data` must
    /// hold exactly `last_offset * arity` `u32`s. Any violation returns
    /// [`GraphError::Records`] — this constructor is the trust boundary
    /// for bytes read from disk.
    pub fn new(offsets: &'a [u8], data: &'a [u8], arity: usize) -> Result<Self, GraphError> {
        if arity == 0 {
            return Err(GraphError::Records("arity must be positive".into()));
        }
        if arity > MAX_ARITY {
            return Err(GraphError::Records(format!(
                "arity {arity} exceeds MAX_ARITY {MAX_ARITY}"
            )));
        }
        if !offsets.len().is_multiple_of(8) || offsets.is_empty() {
            return Err(GraphError::Records(format!(
                "offsets section must be a non-empty multiple of 8 bytes, got {}",
                offsets.len()
            )));
        }
        let cells = offsets.len() / 8 - 1;
        let read = |i: usize| -> u64 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&offsets[i * 8..i * 8 + 8]);
            u64::from_le_bytes(w)
        };
        if read(0) != 0 {
            return Err(GraphError::Records("offsets must start at 0".into()));
        }
        let mut prev = 0u64;
        for i in 1..=cells {
            let cur = read(i);
            if cur < prev {
                return Err(GraphError::Records(format!(
                    "offsets must be monotone (offsets[{}] = {prev} > offsets[{i}] = {cur})",
                    i - 1
                )));
            }
            prev = cur;
        }
        let records = prev;
        let expected = records
            .checked_mul(arity as u64)
            .and_then(|w| w.checked_mul(4))
            .ok_or_else(|| GraphError::Records("record_count * arity overflows".into()))?;
        if data.len() as u64 != expected {
            return Err(GraphError::Records(format!(
                "data length must be record_count * arity ({records} records × {arity} ≠ {} bytes)",
                data.len()
            )));
        }
        Ok(FlatRecordsRef {
            arity,
            cells,
            offsets,
            data,
        })
    }

    /// Wraps sections a previous [`FlatRecordsRef::new`] call on the
    /// same bytes already validated, skipping the O(cells) monotonicity
    /// re-scan. Still safe Rust (every accessor uses checked slice
    /// indexing, so a broken invariant panics instead of corrupting),
    /// which is why it stays crate-internal: only the persisted-index
    /// image, which validates at construction, may use it.
    pub(crate) fn new_prevalidated(offsets: &'a [u8], data: &'a [u8], arity: usize) -> Self {
        debug_assert!(Self::new(offsets, data, arity).is_ok());
        FlatRecordsRef {
            arity,
            cells: offsets.len() / 8 - 1,
            offsets,
            data,
        }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Words per record.
    pub fn arity(&self) -> usize {
        self.arity
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        let mut w = [0u8; 8];
        w.copy_from_slice(&self.offsets[i * 8..i * 8 + 8]);
        u64::from_le_bytes(w) as usize
    }

    /// Total number of records across all cells.
    pub fn record_count(&self) -> usize {
        self.offset(self.cells)
    }

    /// Number of records of `cell`.
    #[inline]
    pub fn count(&self, cell: u32) -> u32 {
        (self.offset(cell as usize + 1) - self.offset(cell as usize)) as u32
    }

    /// Per-cell record counts.
    pub fn counts(&self) -> Vec<u32> {
        (0..self.cells as u32).map(|c| self.count(c)).collect()
    }

    /// Calls `f` with each record of `cell` decoded into an
    /// `arity`-sized slice. The slice borrows a stack buffer, not the
    /// underlying bytes, so callers must copy what they keep — exactly
    /// the contract of the peeling engine's container callbacks.
    #[inline]
    pub fn for_each_record<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        let lo = self.offset(cell as usize) * self.arity;
        let hi = self.offset(cell as usize + 1) * self.arity;
        let mut buf = [0u32; MAX_ARITY];
        let mut word = [0u8; 4];
        let mut w = lo;
        while w < hi {
            for slot in buf.iter_mut().take(self.arity) {
                word.copy_from_slice(&self.data[w * 4..w * 4 + 4]);
                *slot = u32::from_le_bytes(word);
                w += 1;
            }
            f(&buf[..self.arity]);
        }
    }

    /// Copies the view into an owned [`FlatRecords`].
    pub fn to_owned_records(&self) -> FlatRecords {
        let offsets: Vec<usize> = (0..=self.cells).map(|i| self.offset(i)).collect();
        let mut data = Vec::with_capacity(self.record_count() * self.arity);
        let mut word = [0u8; 4];
        for chunk in self.data.chunks_exact(4) {
            word.copy_from_slice(chunk);
            data.push(u32::from_le_bytes(word));
        }
        FlatRecords::from_parts(offsets, data, self.arity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatRecords {
        // 3 cells with 2, 0, 1 records of arity 2
        let offsets = offsets_from_counts(&[2, 0, 1]);
        FlatRecords::from_parts(offsets, vec![10, 11, 20, 21, 30, 31], 2)
    }

    #[test]
    fn offsets_prefix_sum() {
        assert_eq!(offsets_from_counts(&[2, 0, 1]), vec![0, 2, 2, 3]);
        assert_eq!(offsets_from_counts(&[]), vec![0]);
    }

    #[test]
    fn shape_and_counts() {
        let f = sample();
        assert_eq!(f.cells(), 3);
        assert_eq!(f.arity(), 2);
        assert_eq!(f.record_count(), 3);
        assert!(!f.is_empty());
        assert_eq!(f.count(0), 2);
        assert_eq!(f.count(1), 0);
        assert_eq!(f.count(2), 1);
        assert_eq!(f.counts(), vec![2, 0, 1]);
    }

    #[test]
    fn record_access() {
        let f = sample();
        assert_eq!(f.slice_of(0), &[10, 11, 20, 21]);
        assert_eq!(f.slice_of(1), &[] as &[u32]);
        let recs: Vec<&[u32]> = f.records_of(0).collect();
        assert_eq!(recs, vec![&[10, 11][..], &[20, 21][..]]);
        assert_eq!(f.records_of(2).next(), Some(&[30, 31][..]));
    }

    #[test]
    fn bytes_counts_both_buffers() {
        let f = sample();
        assert_eq!(
            f.bytes(),
            6 * std::mem::size_of::<u32>() + 4 * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn empty_store() {
        let f = FlatRecords::from_parts(vec![0], vec![], 3);
        assert_eq!(f.cells(), 0);
        assert!(f.is_empty());
        assert_eq!(f.counts(), Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn zero_arity_rejected() {
        FlatRecords::from_parts(vec![0], vec![], 0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn mis_sized_data_rejected() {
        FlatRecords::from_parts(vec![0, 1], vec![1, 2, 3], 2);
    }

    #[test]
    fn try_from_parts_catches_every_invariant() {
        assert!(FlatRecords::try_from_parts(vec![0], vec![], 0).is_err());
        assert!(FlatRecords::try_from_parts(vec![], vec![], 2).is_err());
        assert!(FlatRecords::try_from_parts(vec![1, 2], vec![1, 2, 3, 4], 2).is_err());
        // Non-monotone offsets are rejected even in release builds.
        assert!(FlatRecords::try_from_parts(vec![0, 2, 1], vec![1, 2], 1).is_err());
        assert!(FlatRecords::try_from_parts(vec![0, 1], vec![1], 2).is_err());
        let ok = FlatRecords::try_from_parts(vec![0, 2], vec![1, 2, 3, 4], 2).unwrap();
        assert_eq!(ok.record_count(), 2);
    }

    #[test]
    fn raw_accessors_round_trip() {
        let f = sample();
        let f2 = FlatRecords::try_from_parts(f.offsets().to_vec(), f.data().to_vec(), f.arity())
            .unwrap();
        assert_eq!(f, f2);
    }

    fn encode(f: &FlatRecords) -> (Vec<u8>, Vec<u8>) {
        let mut off = Vec::new();
        for &o in f.offsets() {
            off.extend_from_slice(&(o as u64).to_le_bytes());
        }
        let mut data = Vec::new();
        for &w in f.data() {
            data.extend_from_slice(&w.to_le_bytes());
        }
        (off, data)
    }

    #[test]
    fn byte_view_matches_owned() {
        let f = sample();
        let (off, data) = encode(&f);
        let v = FlatRecordsRef::new(&off, &data, f.arity()).unwrap();
        assert_eq!(v.cells(), f.cells());
        assert_eq!(v.arity(), f.arity());
        assert_eq!(v.record_count(), f.record_count());
        assert_eq!(v.counts(), f.counts());
        for c in 0..f.cells() as u32 {
            let mut seen: Vec<Vec<u32>> = Vec::new();
            v.for_each_record(c, |rec| seen.push(rec.to_vec()));
            let expect: Vec<Vec<u32>> = f.records_of(c).map(|r| r.to_vec()).collect();
            assert_eq!(seen, expect);
        }
        assert_eq!(v.to_owned_records(), f);
    }

    #[test]
    fn byte_view_rejects_malformed_sections() {
        let f = sample();
        let (off, data) = encode(&f);
        // Bad arity.
        assert!(FlatRecordsRef::new(&off, &data, 0).is_err());
        assert!(FlatRecordsRef::new(&off, &data, MAX_ARITY + 1).is_err());
        // Ragged / empty offsets.
        assert!(FlatRecordsRef::new(&off[..off.len() - 3], &data, 2).is_err());
        assert!(FlatRecordsRef::new(&[], &data, 2).is_err());
        // Leading offset not 0.
        let mut bad = off.clone();
        bad[0] = 1;
        assert!(FlatRecordsRef::new(&bad, &data, 2).is_err());
        // Non-monotone offsets.
        let mut bad = off.clone();
        bad[8] = 0xff;
        assert!(FlatRecordsRef::new(&bad, &data, 2).is_err());
        // Data too short / too long.
        assert!(FlatRecordsRef::new(&off, &data[..data.len() - 4], 2).is_err());
        let mut long = data.clone();
        long.extend_from_slice(&[0; 4]);
        assert!(FlatRecordsRef::new(&off, &long, 2).is_err());
    }

    #[test]
    fn byte_view_empty_store() {
        let off = 0u64.to_le_bytes().to_vec();
        let v = FlatRecordsRef::new(&off, &[], 3).unwrap();
        assert_eq!(v.cells(), 0);
        assert_eq!(v.record_count(), 0);
        assert_eq!(v.counts(), Vec::<u32>::new());
    }
}
