//! Structural graph metrics: degree statistics and clustering
//! coefficients — the quantities the paper's introduction leans on
//! ("vertex neighborhoods are dense", "clustering coefficients and
//! transitivity of real-world networks are high").

use crate::csr::CsrGraph;

/// Degree distribution summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (2m/n).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes the degree summary of `g` (O(n log n) for the median).
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats::default();
    }
    let mut degs: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    degs.sort_unstable();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: 2.0 * g.m() as f64 / n as f64,
        median: degs[n / 2],
    }
}

/// Number of wedges (paths of length 2): `Σ_v C(deg(v), 2)`.
pub fn wedge_count(g: &CsrGraph) -> u64 {
    (0..g.n() as u32)
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Global clustering coefficient (transitivity):
/// `3 × triangles / wedges`. Requires the triangle count as input so the
/// caller can reuse an existing enumeration.
pub fn transitivity(g: &CsrGraph, triangles: u64) -> f64 {
    let w = wedge_count(g);
    if w == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / w as f64
    }
}

/// Local clustering coefficient of one vertex:
/// `#edges among neighbors / C(deg, 2)`.
pub fn local_clustering(g: &CsrGraph, v: u32) -> f64 {
    let nbrs = g.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0u64;
    for (i, &u) in nbrs.iter().enumerate() {
        // count adjacencies between u and the later neighbors
        let a = &nbrs[i + 1..];
        let b = g.neighbors(u);
        let (mut p, mut q) = (0usize, 0usize);
        while p < a.len() && q < b.len() {
            match a[p].cmp(&b[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    links += 1;
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    links as f64 / ((d * (d - 1)) as f64 / 2.0)
}

/// Average local clustering coefficient (Watts–Strogatz style).
pub fn average_clustering(g: &CsrGraph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    let sum: f64 = (0..g.n() as u32).map(|v| local_clustering(g, v)).sum();
    sum / g.n() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn clique_is_fully_clustered() {
        let g = complete(6);
        assert_eq!(local_clustering(&g, 0), 1.0);
        assert_eq!(average_clustering(&g), 1.0);
        // K6: 20 triangles, wedges = 6 * C(5,2) = 60, transitivity = 1
        assert_eq!(wedge_count(&g), 60);
        assert!((transitivity(&g, 20) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(transitivity(&g, 0), 0.0);
        assert_eq!(wedge_count(&g), 6);
    }

    #[test]
    fn degree_summary() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-12);
        assert_eq!(s.median, 1);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(degree_stats(&g), DegreeStats::default());
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn diamond_local_clustering() {
        // 0-1-2 triangle + 1-2-3 triangle
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        // vertex 1: neighbors {0,2,3}; among them one edge... (0,2) yes,
        // (2,3) yes → 2 links out of 3 pairs
        assert!((local_clustering(&g, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 0), 1.0);
    }
}
