//! Integration tests of the served protocol: the concurrency oracle
//! (every served response bit-identical to the direct library call,
//! under N concurrent clients), protocol fuzz (malformed input gets a
//! typed error, never a worker panic or hang), and graceful shutdown
//! through both the control request and the signal file.

use std::net::TcpListener;
use std::time::Duration;

use nucleus_core::{Algorithm, Kind, Nucleus, Prepared};
use nucleus_gen as gen;
use nucleus_graph::CsrGraph;
use nucleus_serve::{
    err_response, ok_response, serve, Client, DynamicServeState, Request, ServeConfig, ServeState,
};
use rand::{Rng, SeedableRng};
use serde::Value;

fn prepared(g: &CsrGraph, kind: Kind) -> Prepared<'_> {
    Nucleus::builder(g).kind(kind).prepare().unwrap()
}

/// Renders the response the library itself would give for `line`:
/// exactly the server's dispatch for every non-`stats`/`shutdown`
/// request (those two depend on live server state).
fn direct_answer(state: &ServeState<'_>, line: &str) -> String {
    match Request::parse(line) {
        Err(e) => err_response(None, &e),
        Ok(req) => match state.answer(&req) {
            Ok(v) => ok_response(req.id, req.query.name(), v),
            Err(e) => err_response(req.id, &e),
        },
    }
}

/// A randomized request line over (and slightly past) the valid id
/// ranges, so the oracle exercises error paths too.
fn random_line(rng: &mut rand::rngs::StdRng, cells: usize, nodes: usize, id: u64) -> String {
    let cell = rng.gen_range(0..(cells as u64 + 2));
    let node = rng.gen_range(0..(nodes as u64 + 2));
    let algo = match rng.gen_range(0..4u32) {
        0 => r#","algo":"fnd""#,
        1 => r#","algo":"dft""#,
        2 => r#","algo":"naive""#,
        _ => "",
    };
    match rng.gen_range(0..7u32) {
        0 => format!(r#"{{"query":"lambda","cell":{cell},"id":{id}{algo}}}"#),
        1 => format!(r#"{{"query":"nuclei_of","cell":{cell},"id":{id}{algo}}}"#),
        2 => format!(r#"{{"query":"members","node":{node},"limit":16,"id":{id}{algo}}}"#),
        3 => format!(r#"{{"query":"subtree","node":{node},"id":{id}{algo}}}"#),
        4 => format!(r#"{{"query":"density","node":{node},"id":{id}{algo}}}"#),
        5 => format!(r#"{{"query":"densest","id":{id}{algo}}}"#),
        _ => format!(r#"{{"query":"level_profile","id":{id}{algo}}}"#),
    }
}

/// Runs `serve` on an ephemeral port and hands the bound address to
/// `body`; returns the server's report.
fn with_server<S: nucleus_serve::QueryAnswerer, T>(
    state: &S,
    config: &ServeConfig,
    body: impl FnOnce(std::net::SocketAddr) -> T,
) -> (nucleus_serve::ServerReport, T) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let server = scope.spawn(move || serve(listener, state, config).unwrap());
        // A panicking body must still stop the server, or the scope
        // would wait on it forever and the test would hang, not fail.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(addr)));
        if out.is_err() {
            let _ = Client::connect(addr).and_then(|mut c| c.roundtrip(r#"{"query":"shutdown"}"#));
        }
        let report = server.join().unwrap();
        match out {
            Ok(v) => (report, v),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

fn shutdown(addr: std::net::SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    let resp = c.roundtrip(r#"{"query":"shutdown"}"#).unwrap();
    assert!(resp.starts_with(r#"{"ok":true"#), "shutdown failed: {resp}");
}

#[test]
fn concurrent_responses_are_bit_identical_to_library_calls() {
    let g = gen::planted::planted_cliques(6, &[8, 7, 6, 5], 42);
    for kind in [Kind::Truss, Kind::Core] {
        let p = prepared(&g, kind);
        let state = ServeState::new(p);
        let config = ServeConfig::default();
        const CLIENTS: usize = 8;
        const QUERIES: usize = 60;
        let cells = state.prepared().cells();
        let nodes = state.hierarchy(Algorithm::Fnd).unwrap().len();
        let (report, _) = with_server(&state, &config, |addr| {
            std::thread::scope(|scope| {
                for t in 0..CLIENTS {
                    let state = &state;
                    scope.spawn(move || {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + t as u64);
                        let mut client = Client::connect(addr).unwrap();
                        for q in 0..QUERIES {
                            let id = (t * QUERIES + q) as u64;
                            let line = random_line(&mut rng, cells, nodes, id);
                            let served = client.roundtrip(&line).unwrap();
                            let direct = direct_answer(state, &line);
                            assert_eq!(served, direct, "divergence on request {line}");
                        }
                    });
                }
            });
            shutdown(addr);
        });
        assert_eq!(
            report.metrics.requests,
            (CLIENTS * QUERIES) as u64 + 1,
            "kind {kind:?}: every request (plus the shutdown) must be counted"
        );
    }
}

#[test]
fn fuzzed_input_gets_typed_errors_and_no_panics() {
    let g = gen::karate::karate_club();
    let p = prepared(&g, Kind::Truss);
    let state = ServeState::new(p);
    let config = ServeConfig {
        max_line_bytes: 512,
        ..ServeConfig::default()
    };
    let cases: &[(&str, &str)] = &[
        ("{nope", "bad_json"),
        ("[1,2,3]", "bad_request"),
        (r#""just a string""#, "bad_request"),
        (r#"{"query":"frobnicate"}"#, "bad_request"),
        (r#"{"query":"lambda"}"#, "bad_request"),
        (r#"{"query":"lambda","cell":"five"}"#, "bad_request"),
        (r#"{"query":"lambda","cell":4294967296}"#, "bad_request"),
        (r#"{"query":"lambda","cell":99999}"#, "bad_request"),
        (r#"{"query":"stats","algo":"sorcery"}"#, "unsupported"),
        (
            r#"{"query":"lambda","cell":1,"algo":"lcps"}"#,
            "unsupported",
        ),
        (r#"{"query":"shutdown","id":"seven"}"#, "bad_request"),
        ("\u{0}\u{1}\u{2}", "bad_json"),
    ];
    with_server(&state, &config, |addr| {
        let mut client = Client::connect(addr).unwrap();
        for (line, want_code) in cases {
            let resp: Value = client.request(line).unwrap();
            assert_eq!(
                resp.field("ok").unwrap(),
                &Value::Bool(false),
                "fuzz line {line:?} must fail"
            );
            let code = resp.field("error").unwrap().field("code").unwrap();
            assert_eq!(
                code,
                &Value::Str(want_code.to_string()),
                "fuzz line {line:?}"
            );
        }

        // An oversize line draws `too_large` and a closed connection.
        let huge = format!(r#"{{"query":"lambda","cell":{}}}"#, "9".repeat(600));
        let resp = client.roundtrip(&huge).unwrap();
        assert!(resp.contains(r#""code":"too_large""#), "got: {resp}");

        // A truncated line (no newline, peer hangs up) is not answered
        // and must not wedge the worker.
        {
            use std::io::Write;
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.write_all(br#"{"query":"lambda""#).unwrap();
        }

        // The server still answers correct queries afterwards.
        let mut fresh = Client::connect(addr).unwrap();
        let ok = fresh.roundtrip(r#"{"query":"lambda","cell":0}"#).unwrap();
        assert_eq!(ok, direct_answer(&state, r#"{"query":"lambda","cell":0}"#));
        shutdown(addr);
    });
}

#[test]
fn stats_reports_counters_and_stalled_requests_time_out() {
    let g = gen::paper::fig3_bowtie();
    let p = prepared(&g, Kind::Core);
    let state = ServeState::new(p);
    let config = ServeConfig {
        request_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    with_server(&state, &config, |addr| {
        let mut client = Client::connect(addr).unwrap();
        for _ in 0..3 {
            client.roundtrip(r#"{"query":"lambda","cell":0}"#).unwrap();
        }
        client.roundtrip(r#"{"query":"densest"}"#).unwrap();
        client.roundtrip("{bad").unwrap();
        let stats: Value = client.request(r#"{"query":"stats"}"#).unwrap();
        let result = stats.field("result").unwrap();
        let metrics = result.field("metrics").unwrap();
        assert_eq!(metrics.field("requests").unwrap(), &Value::U64(5));
        assert_eq!(metrics.field("errors").unwrap(), &Value::U64(1));
        let by = metrics.field("by_query").unwrap();
        assert_eq!(by.field("lambda").unwrap(), &Value::U64(3));
        assert_eq!(by.field("densest").unwrap(), &Value::U64(1));
        let latency = metrics.field("latency").unwrap();
        assert_eq!(latency.field("count").unwrap(), &Value::U64(5));

        // A half-sent request (no newline) left stalling draws
        // `timeout` after `request_timeout`.
        {
            use std::io::{Read, Write};
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            raw.write_all(br#"{"query":"lambda""#).unwrap();
            let mut resp = String::new();
            raw.read_to_string(&mut resp).unwrap();
            assert!(resp.contains(r#""code":"timeout""#), "got: {resp}");
        }

        shutdown(addr);
    });
}

#[test]
fn signal_file_stops_the_server() {
    let g = gen::paper::fig2_two_three_cores();
    let p = prepared(&g, Kind::Truss);
    let state = ServeState::new(p);
    let signal = std::env::temp_dir().join(format!("nucleus-serve-stop-{}", std::process::id()));
    let _ = std::fs::remove_file(&signal);
    let config = ServeConfig {
        signal_file: Some(signal.clone()),
        ..ServeConfig::default()
    };
    let (report, _) = with_server(&state, &config, |addr| {
        let mut client = Client::connect(addr).unwrap();
        client.roundtrip(r#"{"query":"level_profile"}"#).unwrap();
        std::fs::write(&signal, b"stop").unwrap();
        // `with_server` joins the server thread, so returning here
        // only succeeds if the signal file actually stops it.
    });
    let _ = std::fs::remove_file(&signal);
    assert_eq!(report.metrics.requests, 1);
    assert_eq!(report.connections, 1);
}

/// The acceptance round-trip for mutable serving: a `mutate` over TCP
/// bumps the epoch in `stats`, and afterwards every query answer is
/// bit-identical to a *fresh server* started on the mutated graph.
#[test]
fn served_mutate_swaps_epochs_and_matches_a_fresh_server() {
    let g = gen::karate::karate_club();
    let dynamic = DynamicServeState::new(&g, Kind::Truss).unwrap();
    let config = ServeConfig::default();
    let queries: Vec<String> = (0..g.m() as u64)
        .step_by(7)
        .map(|c| format!(r#"{{"query":"lambda","cell":{c}}}"#))
        .chain([
            r#"{"query":"nuclei_of","cell":3}"#.to_string(),
            r#"{"query":"members","node":1,"limit":64}"#.to_string(),
            r#"{"query":"subtree","node":0}"#.to_string(),
            r#"{"query":"density","node":1}"#.to_string(),
            r#"{"query":"densest"}"#.to_string(),
            r#"{"query":"level_profile"}"#.to_string(),
        ])
        .collect();
    with_server(&dynamic, &config, |addr| {
        let mut client = Client::connect(addr).unwrap();
        let stats = client.roundtrip(r#"{"query":"stats"}"#).unwrap();
        assert!(stats.contains(r#""epoch":0"#), "{stats}");
        assert!(stats.contains(r#""mutable":true"#), "{stats}");
        let resp = client
            .roundtrip(r#"{"query":"mutate","ops":[["+",0,9],["-",0,1],["-",2,3]],"id":5}"#)
            .unwrap();
        assert!(
            resp.starts_with(r#"{"ok":true,"id":5,"query":"mutate""#),
            "{resp}"
        );
        assert!(resp.contains(r#""applied":3"#), "{resp}");
        assert!(resp.contains(r#""epoch":1"#), "{resp}");
        let stats = client.roundtrip(r#"{"query":"stats"}"#).unwrap();
        assert!(stats.contains(r#""epoch":1"#), "{stats}");

        // A second server, born on the mutated snapshot, must answer
        // every query with bit-identical bytes.
        let mutated = {
            let mut dg = nucleus_dynamic::DynamicGraph::topology(&g);
            dg.apply(&[
                nucleus_dynamic::EdgeOp::Insert(0, 9),
                nucleus_dynamic::EdgeOp::Delete(0, 1),
                nucleus_dynamic::EdgeOp::Delete(2, 3),
            ]);
            dg.to_graph()
        };
        let fresh = ServeState::new(prepared(&mutated, Kind::Truss));
        with_server(&fresh, &config, |fresh_addr| {
            let mut fresh_client = Client::connect(fresh_addr).unwrap();
            for q in &queries {
                let got = client.roundtrip(q).unwrap();
                let want = fresh_client.roundtrip(q).unwrap();
                assert_eq!(got, want, "query: {q}");
            }
            shutdown(fresh_addr);
        });
        shutdown(addr);
    });
}
