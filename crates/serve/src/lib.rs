#![warn(missing_docs)]

//! # nucleus-serve — a concurrent query service over prepared spaces
//!
//! The hierarchies built by `nucleus-core` (Sarıyüce & Pinar, VLDB
//! 2016) become useful in production when they can be *queried*: which
//! nuclei contain vertex v, how dense is its community, what is the
//! densest subgraph the decomposition found. This crate provides that
//! layer, in two pieces:
//!
//! * **[`ServeState`]** — the query engine. Wraps a
//!   [`Prepared`](nucleus_core::Prepared) session, lazily runs each
//!   hierarchy algorithm at most once (cached as `Arc<Hierarchy>`
//!   behind a `OnceLock`), and answers typed requests — λ lookups,
//!   containing-nuclei chains, members, subtree structure, per-node
//!   density, the densest node, level profiles and stats — as
//!   lock-free reads over immutable state. Usable directly from a
//!   library or the one-shot `nucleus query` CLI.
//! * **[`serve`]** — the server. `std::net::TcpListener` plus a fixed
//!   pool of scoped worker threads (no async runtime, no external
//!   crates), speaking line-delimited JSON ([`protocol`]), with
//!   per-request metrics ([`metrics`]), per-request timeout and
//!   oversize guards, and graceful shutdown via a `shutdown` request
//!   or a signal file.
//! * **[`DynamicServeState`]** — the mutable engine. Holds a
//!   `nucleus-dynamic` graph as the source of truth and answers the
//!   same queries from an immutable epoch of it; a `mutate` request
//!   applies a batched edge-op stream, prepares the next epoch off the
//!   accept loop, and atomically swaps it in (the epoch counter shows
//!   up in `stats`).
//!
//! ```no_run
//! use nucleus_core::{Kind, Nucleus};
//! use nucleus_serve::{serve, Client, ServeConfig, ServeState};
//!
//! let g = nucleus_graph::CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
//! let prepared = Nucleus::builder(&g).kind(Kind::Truss).prepare().unwrap();
//! let state = ServeState::new(prepared);
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! std::thread::scope(|scope| {
//!     scope.spawn(|| serve(listener, &state, &ServeConfig::default()));
//!     let mut c = Client::connect(addr).unwrap();
//!     let resp = c.roundtrip(r#"{"query":"lambda","cell":0}"#).unwrap();
//!     assert!(resp.starts_with(r#"{"ok":true"#));
//!     c.roundtrip(r#"{"query":"shutdown"}"#).unwrap();
//! });
//! ```

pub mod client;
pub mod dynamic;
pub mod engine;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use dynamic::DynamicServeState;
pub use engine::{DensestAnswer, QueryAnswerer, ServeState, DEFAULT_DENSITY_VERTEX_CAP};
pub use metrics::{Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use protocol::{
    err_response, ok_response, ErrorCode, ProtocolError, Query, Request, QUERY_NAMES,
};
pub use server::{serve, ServeConfig, ServerReport};
