//! Per-request service metrics: counters by query type, an error
//! counter, and a fixed-bucket latency histogram.
//!
//! Everything is a relaxed atomic — workers record without any shared
//! lock, and a `stats` query (or the shutdown dump) reads a consistent-
//! enough snapshot. The histogram uses power-of-two nanosecond buckets
//! (bucket *i* holds latencies in `[2^i, 2^(i+1))` ns), so p99 is exact
//! to within a factor of two and `min`/`mean`/`max` are exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::Value;

use crate::protocol::QUERY_NAMES;

/// Number of histogram buckets: `2^39` ns ≈ 9 minutes, far beyond any
/// sane request; slower requests land in the last bucket.
pub const LATENCY_BUCKETS: usize = 40;

/// Fixed-bucket latency histogram over nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        // 0 and 1 ns share bucket 0; otherwise floor(log2(ns)).
        (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time summary of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum_ns.load(Ordering::Relaxed);
        let min = self.min_ns.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // p99 = upper bound of the first bucket whose cumulative count
        // reaches 99% of the total (exact to within 2×).
        let p99_ns = if count == 0 {
            0
        } else {
            let target = (count * 99).div_ceil(100);
            let mut seen = 0;
            let mut bound = 0;
            for (i, c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= target {
                    bound = if i + 1 >= 64 {
                        u64::MAX
                    } else {
                        (1 << (i + 1)) - 1
                    };
                    break;
                }
            }
            bound
        };
        HistogramSnapshot {
            count,
            min_ns: if count == 0 { 0 } else { min },
            mean_ns: sum.checked_div(count).unwrap_or(0),
            p99_ns,
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Frozen summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Fastest observation, ns (0 when empty).
    pub min_ns: u64,
    /// Mean observation, ns (0 when empty).
    pub mean_ns: u64,
    /// 99th-percentile upper bound, ns (bucket-quantized, ≤ 2× exact).
    pub p99_ns: u64,
    /// Slowest observation, ns.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("min_ns".to_string(), Value::U64(self.min_ns)),
            ("mean_ns".to_string(), Value::U64(self.mean_ns)),
            ("p99_ns".to_string(), Value::U64(self.p99_ns)),
            ("max_ns".to_string(), Value::U64(self.max_ns)),
        ])
    }
}

/// Live service metrics shared by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    by_query: [AtomicU64; QUERY_NAMES.len()],
    errors: AtomicU64,
    latency: Histogram,
}

impl Metrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            by_query: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            latency: Histogram::new(),
        }
    }

    /// Records one finished request. `slot` is [`Query::slot`] when the
    /// request parsed far enough to have a type, `None` otherwise;
    /// `ok` is whether a success response was sent.
    ///
    /// [`Query::slot`]: crate::protocol::Query::slot
    pub fn record(&self, slot: Option<usize>, ok: bool, elapsed: Duration) {
        if let Some(s) = slot {
            self.by_query[s].fetch_add(1, Ordering::Relaxed);
        }
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency
            .record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time summary of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let by_query: Vec<(&'static str, u64)> = QUERY_NAMES
            .iter()
            .zip(&self.by_query)
            .map(|(name, c)| (*name, c.load(Ordering::Relaxed)))
            .collect();
        MetricsSnapshot {
            requests: self.latency.count.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            by_query,
            latency: self.latency.snapshot(),
        }
    }
}

/// Frozen summary of [`Metrics`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Total requests answered (including error responses).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Requests per query type, in [`QUERY_NAMES`] order.
    pub by_query: Vec<(&'static str, u64)>,
    /// Latency summary over all requests.
    pub latency: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object (the `metrics` field of a
    /// `stats` response).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("requests".to_string(), Value::U64(self.requests)),
            ("errors".to_string(), Value::U64(self.errors)),
            (
                "by_query".to_string(),
                Value::Object(
                    self.by_query
                        .iter()
                        .map(|(name, c)| (name.to_string(), Value::U64(*c)))
                        .collect(),
                ),
            ),
            ("latency".to_string(), self.latency.to_value()),
        ])
    }

    /// Renders a compact human-readable dump (printed on shutdown).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "requests {}  errors {}  latency min/mean/p99/max {}/{}/{}/{} us\n",
            self.requests,
            self.errors,
            self.latency.min_ns / 1_000,
            self.latency.mean_ns / 1_000,
            self.latency.p99_ns / 1_000,
            self.latency.max_ns / 1_000,
        );
        for (name, c) in &self.by_query {
            if *c > 0 {
                out.push_str(&format!("  {name}: {c}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_summary_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().count, 0);
        for ns in [100, 200, 300, 400, 1_000_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.mean_ns, (100 + 200 + 300 + 400 + 1_000_000) / 5);
        // p99 must cover the slowest observation's bucket.
        assert!(s.p99_ns >= 1_000_000 && s.p99_ns < 2_097_152);
    }

    #[test]
    fn metrics_counters() {
        let m = Metrics::new();
        m.record(Some(0), true, Duration::from_micros(5));
        m.record(Some(0), true, Duration::from_micros(7));
        m.record(Some(4), false, Duration::from_micros(9));
        m.record(None, false, Duration::from_micros(1));
        let s = m.snapshot();
        assert_eq!(s.requests, 4);
        assert_eq!(s.errors, 2);
        assert_eq!(s.by_query[0], ("lambda", 2));
        assert_eq!(s.by_query[4], ("density", 1));
        let text = s.render_text();
        assert!(text.contains("lambda: 2"));
        assert!(!text.contains("stats:"));
    }
}
