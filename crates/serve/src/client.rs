//! A tiny blocking client for the line protocol, shared by the CLI's
//! `--connect` mode, the integration tests and the QPS bench.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Value;

/// One connection speaking the line-delimited JSON protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects and applies the standard socket options (nodelay, 30 s
    /// read timeout).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(1024),
        })
    }

    /// Sends one request line and reads one response line (both without
    /// the trailing newline).
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        let mut out = Vec::with_capacity(line.len() + 1);
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
        self.stream.write_all(&out)?;
        self.read_line()
    }

    /// Sends one request line and decodes the response JSON.
    pub fn request(&mut self, line: &str) -> std::io::Result<Value> {
        let resp = self.roundtrip(line)?;
        serde_json::from_str(&resp).map_err(|e| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("undecodable response `{resp}`: {e}"),
            )
        })
    }

    /// Reads one line from the connection.
    fn read_line(&mut self) -> std::io::Result<String> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.buf.drain(..=pos).collect();
                let line = String::from_utf8_lossy(&line_bytes[..pos])
                    .trim_end_matches('\r')
                    .to_string();
                return Ok(line);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
