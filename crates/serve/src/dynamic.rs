//! The mutable query engine: an epoch-swapping [`QueryAnswerer`] over
//! a [`DynamicGraph`].
//!
//! A [`DynamicServeState`] keeps two things:
//!
//! * the **source of truth** — a topology-mode [`DynamicGraph`] behind
//!   a mutex, fed by `mutate` requests (which batch, coalesce and
//!   count ops exactly like [`DynamicGraph::apply`]);
//! * the **current epoch** — an immutable [`ServeState`] prepared over
//!   a snapshot of the source, behind an `RwLock<Arc<_>>`.
//!
//! Queries clone the current epoch's `Arc` under a read lock and
//! answer from it lock-free, exactly as on an immutable server. A
//! `mutate` that applies at least one op rebuilds a fresh epoch on the
//! worker thread that received it — the accept loop and every other
//! worker keep answering from the old epoch — and then atomically
//! swaps it in, bumping the epoch counter surfaced in `stats`. In-
//! flight queries on the old epoch finish safely: their `Arc` keeps it
//! alive until the last one drops.
//!
//! A no-op batch (every op skipped or coalesced away) answers without
//! rebuilding and leaves the epoch unchanged, mirroring how
//! [`DynamicGraph::apply`] skips its generation bump.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use nucleus_core::{Algorithm, Kind, Nucleus};
use nucleus_dynamic::{DynamicGraph, EdgeOp};
use nucleus_graph::CsrGraph;
use serde::Value;

use crate::engine::{QueryAnswerer, ServeState};
use crate::protocol::{ErrorCode, ProtocolError, Query, Request};

/// One immutable generation of the served space.
///
/// Drop order is load-bearing: `state` borrows `_graph` (see
/// [`Epoch::build`]), so `state` is declared first and therefore
/// dropped first.
struct Epoch {
    state: ServeState<'static>,
    epoch: u64,
    _graph: Box<CsrGraph>,
}

impl Epoch {
    /// Prepares a fresh epoch over `graph`.
    ///
    /// The `'static` is a private fiction: `state` really borrows the
    /// boxed graph, whose heap address is stable and which outlives
    /// `state` by field order. Neither field is ever moved out or
    /// replaced, and the borrow never escapes the `Epoch` (queries
    /// go through `&self.state`), so the unsafe lifetime extension
    /// cannot dangle.
    fn build(
        graph: CsrGraph,
        epoch: u64,
        kind: Kind,
        default_algo: Option<Algorithm>,
        density_cap: Option<usize>,
    ) -> Result<Epoch, ProtocolError> {
        let boxed = Box::new(graph);
        let gref: &'static CsrGraph = unsafe { &*(boxed.as_ref() as *const CsrGraph) };
        let prepared = Nucleus::builder(gref)
            .kind(kind)
            .prepare()
            .map_err(|e| ProtocolError::new(ErrorCode::Internal, e.to_string()))?;
        let mut state = ServeState::new(prepared);
        if let Some(algo) = default_algo {
            state = state.with_default_algo(algo);
        }
        if let Some(cap) = density_cap {
            state = state.with_density_cap(cap);
        }
        Ok(Epoch {
            state,
            epoch,
            _graph: boxed,
        })
    }
}

/// A mutable [`QueryAnswerer`]: answers reads from the current epoch,
/// applies `mutate` batches to the source graph, and swaps in freshly
/// prepared epochs.
pub struct DynamicServeState {
    kind: Kind,
    default_algo: Option<Algorithm>,
    density_cap: Option<usize>,
    /// Source of truth for topology; also serializes mutations.
    source: Mutex<DynamicGraph>,
    current: RwLock<Arc<Epoch>>,
}

impl DynamicServeState {
    /// Prepares epoch 0 over a snapshot of `g` for `kind`.
    ///
    /// # Errors
    /// [`ProtocolError`] with [`ErrorCode::Internal`] when the initial
    /// prepare fails.
    pub fn new(g: &CsrGraph, kind: Kind) -> Result<DynamicServeState, ProtocolError> {
        let epoch = Epoch::build(g.clone(), 0, kind, None, None)?;
        Ok(DynamicServeState {
            kind,
            default_algo: None,
            density_cap: None,
            source: Mutex::new(DynamicGraph::topology(g)),
            current: RwLock::new(Arc::new(epoch)),
        })
    }

    /// Overrides the algorithm used when a request names none (applies
    /// from the next epoch on; call before serving).
    pub fn with_default_algo(mut self, algo: Algorithm) -> Self {
        self.default_algo = Some(algo);
        self.rebuild_current();
        self
    }

    /// Overrides the density vertex cap, as
    /// [`ServeState::with_density_cap`].
    pub fn with_density_cap(mut self, cap: usize) -> Self {
        self.density_cap = Some(cap);
        self.rebuild_current();
        self
    }

    /// Re-prepares epoch 0 after a builder-style option change.
    fn rebuild_current(&mut self) {
        let g = self.source.lock().expect("source lock poisoned").to_graph();
        let epoch = self.current.read().expect("epoch lock poisoned").epoch;
        if let Ok(fresh) = Epoch::build(g, epoch, self.kind, self.default_algo, self.density_cap) {
            *self.current.write().expect("epoch lock poisoned") = Arc::new(fresh);
        }
    }

    /// The served family.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The current epoch counter (0 until the first effective mutate).
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("epoch lock poisoned").epoch
    }

    /// Clones the current epoch handle; queries answer from this
    /// snapshot even if a mutate swaps mid-flight.
    fn epoch_handle(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Applies one `mutate` batch: updates the source graph and, when
    /// any op applied, prepares and swaps in the next epoch.
    fn mutate(&self, ops: &[EdgeOp]) -> Result<Value, ProtocolError> {
        // Holding the source lock across the rebuild serializes
        // mutations; readers are unaffected (they only touch `current`).
        let mut source = self.source.lock().expect("source lock poisoned");
        let report = source.apply(ops);
        let rebuilt = report.applied > 0;
        let t0 = Instant::now();
        let epoch = if rebuilt {
            let next = self.epoch_handle().epoch + 1;
            let fresh = Epoch::build(
                source.to_graph(),
                next,
                self.kind,
                self.default_algo,
                self.density_cap,
            )?;
            *self.current.write().expect("epoch lock poisoned") = Arc::new(fresh);
            next
        } else {
            self.epoch_handle().epoch
        };
        let u64v = |x: usize| Value::U64(x as u64);
        Ok(Value::Object(vec![
            ("applied".to_string(), u64v(report.applied)),
            ("skipped".to_string(), u64v(report.skipped)),
            ("coalesced".to_string(), u64v(report.coalesced)),
            ("inserted".to_string(), u64v(report.inserted)),
            ("deleted".to_string(), u64v(report.deleted)),
            (
                "needs_reindex".to_string(),
                Value::Bool(report.needs_reindex),
            ),
            ("rebuilt".to_string(), Value::Bool(rebuilt)),
            (
                "rebuild_ms".to_string(),
                Value::U64(if rebuilt {
                    t0.elapsed().as_millis().min(u64::MAX as u128) as u64
                } else {
                    0
                }),
            ),
            ("epoch".to_string(), Value::U64(epoch)),
            ("graph_n".to_string(), u64v(source.n())),
            ("graph_m".to_string(), u64v(source.m())),
        ]))
    }
}

impl QueryAnswerer for DynamicServeState {
    fn answer(&self, req: &Request) -> Result<Value, ProtocolError> {
        match &req.query {
            Query::Mutate { ops } => self.mutate(ops),
            Query::Stats => Ok(QueryAnswerer::stats_value(self, None)),
            _ => self.epoch_handle().state.answer(req),
        }
    }

    /// The current epoch's engine stats, plus `epoch` and
    /// `mutable: true`.
    fn stats_value(&self, metrics: Option<Value>) -> Value {
        let epoch = self.epoch_handle();
        let mut v = epoch.state.stats_value(metrics);
        if let Value::Object(entries) = &mut v {
            entries.push(("epoch".to_string(), Value::U64(epoch.epoch)));
            entries.push(("mutable".to_string(), Value::Bool(true)));
        }
        v
    }
}

impl std::fmt::Debug for DynamicServeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicServeState")
            .field("kind", &self.kind)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn answers_on(state: &dyn QueryAnswerer, line: &str) -> Result<Value, ProtocolError> {
        state.answer(&Request::parse(line).unwrap())
    }

    fn field<'v>(v: &'v Value, name: &str) -> &'v Value {
        v.field(name).unwrap()
    }

    /// Every read query must answer bit-identically to a fresh
    /// immutable ServeState over the mutated snapshot.
    #[test]
    fn mutate_round_trip_is_bit_identical_to_fresh_state() {
        let g = nucleus_gen::karate::karate_club();
        let dyn_state = DynamicServeState::new(&g, Kind::Truss).unwrap();
        // {9,33} already exists and the repeated insert no-ops against
        // the simulated batch state: both are skips.
        let ops = r#"{"query":"mutate","ops":[["+",0,9],["+",9,33],["-",0,1],["+",0,9]]}"#;
        let v = answers_on(&dyn_state, ops).unwrap();
        assert_eq!(field(&v, "applied"), &Value::U64(2));
        assert_eq!(field(&v, "skipped"), &Value::U64(2));
        assert_eq!(field(&v, "coalesced"), &Value::U64(0));
        assert_eq!(field(&v, "rebuilt"), &Value::Bool(true));
        assert_eq!(field(&v, "epoch"), &Value::U64(1));
        assert_eq!(dyn_state.epoch(), 1);

        // The reference: a mutated CSR snapshot served immutably.
        let mutated = {
            let mut dg = DynamicGraph::topology(&g);
            dg.apply(&[EdgeOp::Insert(0, 9), EdgeOp::Delete(0, 1)]);
            dg.to_graph()
        };
        let prepared = Nucleus::builder(&mutated)
            .kind(Kind::Truss)
            .prepare()
            .unwrap();
        let fresh = ServeState::new(prepared);
        let queries = [
            r#"{"query":"lambda","cell":0}"#,
            r#"{"query":"lambda","cell":41}"#,
            r#"{"query":"nuclei_of","cell":7}"#,
            r#"{"query":"members","node":1}"#,
            r#"{"query":"subtree","node":0}"#,
            r#"{"query":"density","node":1}"#,
            r#"{"query":"densest"}"#,
            r#"{"query":"level_profile"}"#,
        ];
        for q in queries {
            let got = answers_on(&dyn_state, q);
            let want = fresh.answer(&Request::parse(q).unwrap());
            assert_eq!(
                got.map(|v| serde_json::to_string(&v).unwrap()),
                want.map(|v| serde_json::to_string(&v).unwrap()),
                "query: {q}"
            );
        }
    }

    #[test]
    fn noop_mutate_does_not_bump_the_epoch() {
        let g = nucleus_gen::karate::karate_club();
        let state = DynamicServeState::new(&g, Kind::Core).unwrap();
        // {0,1} exists; inserting it is a skip. Insert+delete of an
        // absent pair cancel: both coalesce away.
        let v = answers_on(
            &state,
            r#"{"query":"mutate","ops":[["+",0,1],["+",20,25],["-",20,25]]}"#,
        )
        .unwrap();
        assert_eq!(field(&v, "applied"), &Value::U64(0));
        assert_eq!(field(&v, "skipped"), &Value::U64(1));
        assert_eq!(field(&v, "coalesced"), &Value::U64(2));
        assert_eq!(field(&v, "rebuilt"), &Value::Bool(false));
        assert_eq!(state.epoch(), 0);
    }

    #[test]
    fn stats_surface_epoch_and_mutability() {
        let g = nucleus_gen::karate::karate_club();
        let state = DynamicServeState::new(&g, Kind::Core).unwrap();
        let v = answers_on(&state, r#"{"query":"stats"}"#).unwrap();
        assert_eq!(field(&v, "epoch"), &Value::U64(0));
        assert_eq!(field(&v, "mutable"), &Value::Bool(true));
        answers_on(&state, r#"{"query":"mutate","ops":[["-",0,1]]}"#).unwrap();
        let v = answers_on(&state, r#"{"query":"stats"}"#).unwrap();
        assert_eq!(field(&v, "epoch"), &Value::U64(1));
        assert_eq!(
            field(&v, "graph_m"),
            &Value::U64(g.m() as u64 - 1),
            "stats must reflect the mutated snapshot"
        );
    }

    #[test]
    fn immutable_state_rejects_mutate() {
        let g = nucleus_gen::karate::karate_club();
        let prepared = Nucleus::builder(&g).kind(Kind::Core).prepare().unwrap();
        let state = ServeState::new(prepared);
        let err = state
            .answer(&Request::parse(r#"{"query":"mutate","ops":[["+",0,9]]}"#).unwrap())
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Unsupported);
        assert!(err.message.contains("--mutable"), "{err}");
    }
}
