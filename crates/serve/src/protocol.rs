//! Wire protocol of the query service: line-delimited JSON.
//!
//! Each request is one JSON object on one line, e.g.
//!
//! ```text
//! {"query":"lambda","cell":5}
//! {"query":"density","node":3,"algo":"fnd","id":42}
//! ```
//!
//! and each response is one JSON object on one line, either
//!
//! ```text
//! {"ok":true,"id":42,"query":"density","result":{...}}
//! {"ok":false,"id":42,"error":{"code":"bad_request","message":"..."}}
//! ```
//!
//! The shim `serde` derive cannot express enums, so [`Query`],
//! [`Request`] and the response constructors convert to/from
//! [`serde::Value`] by hand. Query names accept `-` as an alias for
//! `_` (`level-profile` == `level_profile`), matching the CLI's kind
//! spellings.

use nucleus_core::Algorithm;
use nucleus_dynamic::EdgeOp;
use serde::Value;

/// Default cap on the number of cells/vertices a `members` response
/// lists inline (the totals are always exact).
pub const DEFAULT_MEMBER_LIMIT: usize = 10_000;

/// Machine-readable error class of a failed request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON.
    BadJson,
    /// The JSON was well-formed but not a valid request (unknown query
    /// type, missing/ill-typed field, out-of-range id).
    BadRequest,
    /// The request was valid but this server cannot answer it (e.g. an
    /// algorithm the prepared kind does not support).
    Unsupported,
    /// The request or its answer exceeds a configured size cap.
    TooLarge,
    /// The request stalled past the per-request timeout.
    Timeout,
    /// The server failed internally while answering.
    Internal,
    /// The server is shutting down and no longer answers queries.
    ShuttingDown,
}

impl ErrorCode {
    /// Stable wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// A typed protocol error: what went wrong, in wire terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// Error class (the wire `code` field).
    pub code: ErrorCode,
    /// Human-readable detail (the wire `message` field).
    pub message: String,
}

impl ProtocolError {
    /// Convenience constructor.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtocolError::new(ErrorCode::BadRequest, message)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// One typed query the engine can answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// λ of one cell: `{"query":"lambda","cell":C}`.
    Lambda {
        /// Cell id (vertex for (1,s), edge id for (2,s), triangle id
        /// for (3,4)).
        cell: u32,
    },
    /// Chain of nuclei containing a cell, leaf → root:
    /// `{"query":"nuclei_of","cell":C}`.
    NucleiOf {
        /// Cell id.
        cell: u32,
    },
    /// Member cells + spanned vertices of one hierarchy node:
    /// `{"query":"members","node":N,"limit":L?}`.
    Members {
        /// Hierarchy node id.
        node: u32,
        /// Cap on listed cells/vertices ([`DEFAULT_MEMBER_LIMIT`] when
        /// absent); totals stay exact.
        limit: usize,
    },
    /// Structural view of one node (parent, children, sizes):
    /// `{"query":"subtree","node":N}`.
    Subtree {
        /// Hierarchy node id.
        node: u32,
    },
    /// Edge density of the subgraph spanned by one node:
    /// `{"query":"density","node":N}`.
    Density {
        /// Hierarchy node id.
        node: u32,
    },
    /// Best-density hierarchy node: `{"query":"densest"}`.
    Densest,
    /// Nucleus counts per level k: `{"query":"level_profile"}`.
    LevelProfile,
    /// Engine + (when served) request metrics: `{"query":"stats"}`.
    Stats,
    /// Ask the server to stop accepting work and exit:
    /// `{"query":"shutdown"}`.
    Shutdown,
    /// Apply a batch of edge mutations (mutable servers only):
    /// `{"query":"mutate","ops":[["+",0,5],["-",2,3]]}`.
    Mutate {
        /// The batch, in order; coalescing is the engine's business.
        ops: Vec<EdgeOp>,
    },
}

/// Wire names of every query type, in [`Query::slot`] order.
pub const QUERY_NAMES: [&str; 10] = [
    "lambda",
    "nuclei_of",
    "members",
    "subtree",
    "density",
    "densest",
    "level_profile",
    "stats",
    "shutdown",
    "mutate",
];

impl Query {
    /// Stable wire name of the query type.
    pub fn name(&self) -> &'static str {
        QUERY_NAMES[self.slot()]
    }

    /// Dense index of the query type (metrics counter slot).
    pub fn slot(&self) -> usize {
        match self {
            Query::Lambda { .. } => 0,
            Query::NucleiOf { .. } => 1,
            Query::Members { .. } => 2,
            Query::Subtree { .. } => 3,
            Query::Density { .. } => 4,
            Query::Densest => 5,
            Query::LevelProfile => 6,
            Query::Stats => 7,
            Query::Shutdown => 8,
            Query::Mutate { .. } => 9,
        }
    }
}

/// One parsed request line: the query plus its envelope fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// Hierarchy algorithm to answer from (engine default when absent).
    pub algo: Option<Algorithm>,
    /// The query itself.
    pub query: Query,
}

fn get_u32(v: &Value, name: &str) -> Result<u32, ProtocolError> {
    match v.field(name) {
        Ok(Value::U64(n)) if *n <= u32::MAX as u64 => Ok(*n as u32),
        Ok(Value::U64(_)) | Ok(Value::I64(_)) | Ok(Value::F64(_)) => Err(
            ProtocolError::bad_request(format!("field `{name}` out of range for u32")),
        ),
        Ok(other) => Err(ProtocolError::bad_request(format!(
            "field `{name}` must be a non-negative integer, got {other:?}"
        ))),
        Err(_) => Err(ProtocolError::bad_request(format!(
            "missing field `{name}`"
        ))),
    }
}

fn get_opt_u64(v: &Value, name: &str) -> Result<Option<u64>, ProtocolError> {
    match v.field(name) {
        Ok(Value::U64(n)) => Ok(Some(*n)),
        Ok(Value::Null) => Ok(None),
        Ok(_) => Err(ProtocolError::bad_request(format!(
            "field `{name}` must be a non-negative integer"
        ))),
        Err(_) => Ok(None),
    }
}

impl Request {
    /// Parses one request line. JSON syntax errors map to
    /// [`ErrorCode::BadJson`]; structural errors to
    /// [`ErrorCode::BadRequest`].
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| ProtocolError::new(ErrorCode::BadJson, e.to_string()))?;
        Request::from_value(&v)
    }

    /// Parses a request from an already-decoded value tree.
    pub fn from_value(v: &Value) -> Result<Request, ProtocolError> {
        if !matches!(v, Value::Object(_)) {
            return Err(ProtocolError::bad_request(
                "request must be a JSON object with a `query` field",
            ));
        }
        let id = get_opt_u64(v, "id")?;
        let algo = match v.field("algo") {
            Ok(Value::Str(s)) => Some(
                Algorithm::parse(s)
                    .map_err(|e| ProtocolError::new(ErrorCode::Unsupported, e.to_string()))?,
            ),
            Ok(Value::Null) => None,
            Ok(_) => {
                return Err(ProtocolError::bad_request(
                    "field `algo` must be a string (naive|dft|fnd|lcps)",
                ))
            }
            Err(_) => None,
        };
        let name = match v.field("query") {
            Ok(Value::Str(s)) => s.replace('-', "_"),
            Ok(_) => return Err(ProtocolError::bad_request("field `query` must be a string")),
            Err(_) => return Err(ProtocolError::bad_request("missing field `query`")),
        };
        let query = match name.as_str() {
            "lambda" => Query::Lambda {
                cell: get_u32(v, "cell")?,
            },
            "nuclei_of" => Query::NucleiOf {
                cell: get_u32(v, "cell")?,
            },
            "members" => Query::Members {
                node: get_u32(v, "node")?,
                limit: match get_opt_u64(v, "limit")? {
                    Some(l) => l as usize,
                    None => DEFAULT_MEMBER_LIMIT,
                },
            },
            "subtree" => Query::Subtree {
                node: get_u32(v, "node")?,
            },
            "density" => Query::Density {
                node: get_u32(v, "node")?,
            },
            "densest" => Query::Densest,
            "level_profile" => Query::LevelProfile,
            "stats" => Query::Stats,
            "shutdown" => Query::Shutdown,
            "mutate" => Query::Mutate { ops: parse_ops(v)? },
            other => {
                return Err(ProtocolError::bad_request(format!(
                    "unknown query type `{other}`; expected one of {}",
                    QUERY_NAMES.join("|")
                )))
            }
        };
        Ok(Request { id, algo, query })
    }
}

/// Parses the `ops` field of a `mutate` request: a non-empty array of
/// `["+"|"-", u, v]` triples.
fn parse_ops(v: &Value) -> Result<Vec<EdgeOp>, ProtocolError> {
    let items = match v.field("ops") {
        Ok(Value::Array(items)) => items,
        Ok(_) => {
            return Err(ProtocolError::bad_request(
                "field `ops` must be an array of [\"+\"|\"-\", u, v] triples",
            ))
        }
        Err(_) => return Err(ProtocolError::bad_request("missing field `ops`")),
    };
    if items.is_empty() {
        return Err(ProtocolError::bad_request("field `ops` must be non-empty"));
    }
    let mut ops = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let bad = || {
            ProtocolError::bad_request(format!(
                "ops[{i}] must be [\"+\"|\"-\", u, v] with u, v in u32 range"
            ))
        };
        let Value::Array(triple) = item else {
            return Err(bad());
        };
        let [Value::Str(sign), Value::U64(u), Value::U64(v)] = triple.as_slice() else {
            return Err(bad());
        };
        if *u > u32::MAX as u64 || *v > u32::MAX as u64 {
            return Err(bad());
        }
        let (u, v) = (*u as u32, *v as u32);
        ops.push(match sign.as_str() {
            "+" => EdgeOp::Insert(u, v),
            "-" => EdgeOp::Delete(u, v),
            _ => return Err(bad()),
        });
    }
    Ok(ops)
}

fn id_value(id: Option<u64>) -> Value {
    match id {
        Some(n) => Value::U64(n),
        None => Value::Null,
    }
}

/// Renders a success response line (no trailing newline).
pub fn ok_response(id: Option<u64>, query: &str, result: Value) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("id".to_string(), id_value(id)),
        ("query".to_string(), Value::Str(query.to_string())),
        ("result".to_string(), result),
    ]);
    serde_json::to_string(&v).expect("response rendering is infallible")
}

/// Renders an error response line (no trailing newline).
pub fn err_response(id: Option<u64>, err: &ProtocolError) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("id".to_string(), id_value(id)),
        (
            "error".to_string(),
            Value::Object(vec![
                (
                    "code".to_string(),
                    Value::Str(err.code.as_str().to_string()),
                ),
                ("message".to_string(), Value::Str(err.message.clone())),
            ]),
        ),
    ]);
    serde_json::to_string(&v).expect("response rendering is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_query_type() {
        let cases = [
            (r#"{"query":"lambda","cell":5}"#, Query::Lambda { cell: 5 }),
            (
                r#"{"query":"nuclei_of","cell":0}"#,
                Query::NucleiOf { cell: 0 },
            ),
            (
                r#"{"query":"members","node":3}"#,
                Query::Members {
                    node: 3,
                    limit: DEFAULT_MEMBER_LIMIT,
                },
            ),
            (
                r#"{"query":"members","node":3,"limit":7}"#,
                Query::Members { node: 3, limit: 7 },
            ),
            (
                r#"{"query":"subtree","node":1}"#,
                Query::Subtree { node: 1 },
            ),
            (
                r#"{"query":"density","node":2}"#,
                Query::Density { node: 2 },
            ),
            (r#"{"query":"densest"}"#, Query::Densest),
            (r#"{"query":"level_profile"}"#, Query::LevelProfile),
            (r#"{"query":"level-profile"}"#, Query::LevelProfile),
            (r#"{"query":"stats"}"#, Query::Stats),
            (r#"{"query":"shutdown"}"#, Query::Shutdown),
            (
                r#"{"query":"mutate","ops":[["+",0,5],["-",2,3]]}"#,
                Query::Mutate {
                    ops: vec![EdgeOp::Insert(0, 5), EdgeOp::Delete(2, 3)],
                },
            ),
        ];
        for (line, want) in cases {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.query, want, "line: {line}");
            assert_eq!(req.query.name(), QUERY_NAMES[req.query.slot()]);
        }
    }

    #[test]
    fn envelope_fields_round_trip() {
        let req = Request::parse(r#"{"query":"lambda","cell":1,"id":99,"algo":"dft"}"#).unwrap();
        assert_eq!(req.id, Some(99));
        assert_eq!(req.algo, Some(Algorithm::Dft));
    }

    #[test]
    fn error_taxonomy() {
        let bad_json = Request::parse("{nope").unwrap_err();
        assert_eq!(bad_json.code, ErrorCode::BadJson);
        let unknown = Request::parse(r#"{"query":"frobnicate"}"#).unwrap_err();
        assert_eq!(unknown.code, ErrorCode::BadRequest);
        assert!(unknown.message.contains("frobnicate"));
        let missing = Request::parse(r#"{"query":"lambda"}"#).unwrap_err();
        assert_eq!(missing.code, ErrorCode::BadRequest);
        let not_obj = Request::parse("[1,2]").unwrap_err();
        assert_eq!(not_obj.code, ErrorCode::BadRequest);
        let bad_algo = Request::parse(r#"{"query":"stats","algo":"magic"}"#).unwrap_err();
        assert_eq!(bad_algo.code, ErrorCode::Unsupported);
        let huge = Request::parse(r#"{"query":"lambda","cell":4294967296}"#).unwrap_err();
        assert_eq!(huge.code, ErrorCode::BadRequest);
        for line in [
            r#"{"query":"mutate"}"#,
            r#"{"query":"mutate","ops":[]}"#,
            r#"{"query":"mutate","ops":[["*",1,2]]}"#,
            r#"{"query":"mutate","ops":[["+",1]]}"#,
            r#"{"query":"mutate","ops":[["+",1,4294967296]]}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn responses_render_stably() {
        let ok = ok_response(Some(7), "lambda", Value::U64(3));
        assert_eq!(ok, r#"{"ok":true,"id":7,"query":"lambda","result":3}"#);
        let err = err_response(None, &ProtocolError::bad_request("nope"));
        assert_eq!(
            err,
            r#"{"ok":false,"id":null,"error":{"code":"bad_request","message":"nope"}}"#
        );
    }
}
