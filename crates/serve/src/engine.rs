//! The query engine: answers typed requests over a shared, immutable
//! [`Prepared`] session and its lazily-built hierarchies.
//!
//! [`ServeState`] owns the prepared space and one [`OnceLock`] slot per
//! hierarchy algorithm. The first query that needs an algorithm's
//! hierarchy runs it (`Prepared::run`) and caches the result as an
//! `Arc<Hierarchy>`; every later query — from any thread — is a
//! lock-free read of the same tree, whose own point-lookup index is
//! also memoized (see `Hierarchy::nucleus_cells_slice`). The engine has
//! no interior mutability beyond those once-cells, which is what makes
//! it safe to share by reference across a worker pool.

use std::sync::{Arc, OnceLock};

use nucleus_core::hierarchy::NO_NODE;
use nucleus_core::{Algorithm, Hierarchy, Prepared};
use serde::Value;

use crate::protocol::{ErrorCode, ProtocolError, Query, Request};

/// Default cap on how many vertices a `density`/`densest` computation
/// will touch per node; nuclei above it answer `too_large` rather than
/// stall a worker.
pub const DEFAULT_DENSITY_VERTEX_CAP: usize = 250_000;

/// What the server needs from a query engine: answer a parsed request,
/// and render the engine half of the `stats` payload. Implemented by
/// the immutable [`ServeState`] and the mutable
/// [`DynamicServeState`](crate::DynamicServeState) (which additionally
/// accepts `mutate` and swaps epochs underneath the same trait).
pub trait QueryAnswerer: Sync {
    /// Answers one parsed request (everything except `shutdown`, which
    /// the server intercepts).
    fn answer(&self, req: &Request) -> Result<Value, ProtocolError>;

    /// The `stats` payload; a server passes its request-metrics
    /// snapshot as `metrics`, one-shot callers pass `None`.
    fn stats_value(&self, metrics: Option<Value>) -> Value;
}

fn u<T: Into<u64>>(x: T) -> Value {
    Value::U64(x.into())
}

fn node_value(id: u32) -> Value {
    if id == NO_NODE {
        Value::Null
    } else {
        u(id)
    }
}

/// Best-density hierarchy node of one algorithm's hierarchy, cached
/// after the first `densest` query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DensestAnswer {
    /// Hierarchy node id.
    pub node: u32,
    /// λ of the node.
    pub lambda: u32,
    /// Vertices spanned by the node's member cells.
    pub vertices: usize,
    /// Edges of the spanned induced subgraph.
    pub edges: usize,
    /// Edge density `2e / (n (n - 1))` of the spanned subgraph.
    pub density: f64,
    /// Nodes skipped because they span more than the vertex cap.
    pub skipped_over_cap: usize,
}

type HierarchySlot = OnceLock<Result<Arc<Hierarchy>, ProtocolError>>;
type DensestSlot = OnceLock<Result<DensestAnswer, ProtocolError>>;

/// Shared immutable query state: a prepared space plus per-algorithm
/// hierarchy and densest-node caches.
pub struct ServeState<'g> {
    prepared: Prepared<'g>,
    default_algo: Algorithm,
    density_vertex_cap: usize,
    hierarchies: [HierarchySlot; Algorithm::ALL.len()],
    densest: [DensestSlot; Algorithm::ALL.len()],
}

impl<'g> ServeState<'g> {
    /// Wraps a prepared session. The default algorithm is FND (the
    /// paper's fastest construction, supported by every kind).
    pub fn new(prepared: Prepared<'g>) -> ServeState<'g> {
        ServeState {
            prepared,
            default_algo: Algorithm::Fnd,
            density_vertex_cap: DEFAULT_DENSITY_VERTEX_CAP,
            hierarchies: std::array::from_fn(|_| OnceLock::new()),
            densest: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Overrides the algorithm used when a request names none.
    pub fn with_default_algo(mut self, algo: Algorithm) -> Self {
        self.default_algo = algo;
        self
    }

    /// Overrides [`DEFAULT_DENSITY_VERTEX_CAP`].
    pub fn with_density_cap(mut self, cap: usize) -> Self {
        self.density_vertex_cap = cap.max(2);
        self
    }

    /// The wrapped prepared session.
    pub fn prepared(&self) -> &Prepared<'g> {
        &self.prepared
    }

    /// The algorithm used when a request names none.
    pub fn default_algo(&self) -> Algorithm {
        self.default_algo
    }

    fn slot_of(algo: Algorithm) -> usize {
        Algorithm::ALL
            .iter()
            .position(|a| *a == algo)
            .expect("Algorithm::ALL is exhaustive")
    }

    /// Resolves a request's algorithm field against the prepared kind.
    pub fn resolve_algo(&self, requested: Option<Algorithm>) -> Result<Algorithm, ProtocolError> {
        let algo = requested.unwrap_or(self.default_algo);
        if Algorithm::for_kind(self.prepared.kind()).contains(&algo) {
            Ok(algo)
        } else {
            Err(ProtocolError::new(
                ErrorCode::Unsupported,
                format!(
                    "algorithm {} does not apply to kind {}",
                    algo.name(),
                    self.prepared.kind().name()
                ),
            ))
        }
    }

    /// The (lazily built, then cached) hierarchy for `algo`.
    pub fn hierarchy(&self, algo: Algorithm) -> Result<&Arc<Hierarchy>, ProtocolError> {
        let res = self.hierarchies[Self::slot_of(algo)].get_or_init(|| {
            self.prepared
                .run(algo)
                .map(|d| Arc::new(d.hierarchy))
                .map_err(|e| ProtocolError::new(ErrorCode::Internal, e.to_string()))
        });
        res.as_ref().map_err(Clone::clone)
    }

    /// Answers one parsed request. `Stats` reports engine state only
    /// (a server composes in its request metrics); `Shutdown` is a
    /// server-level request and answers `bad_request` here.
    pub fn answer(&self, req: &Request) -> Result<Value, ProtocolError> {
        let query = &req.query;
        match query {
            Query::Stats => return Ok(self.stats_value(None)),
            Query::Shutdown => {
                return Err(ProtocolError::bad_request(
                    "shutdown is a server control request; no server is attached",
                ))
            }
            Query::Mutate { .. } => {
                return Err(ProtocolError::new(
                    ErrorCode::Unsupported,
                    "this server is immutable; restart with --mutable to accept mutate",
                ))
            }
            _ => {}
        }
        let algo = self.resolve_algo(req.algo)?;
        let h = self.hierarchy(algo)?;
        match *query {
            Query::Lambda { cell } => self.answer_lambda(h, cell),
            Query::NucleiOf { cell } => self.answer_nuclei_of(h, cell),
            Query::Members { node, limit } => self.answer_members(h, node, limit),
            Query::Subtree { node } => self.answer_subtree(h, node),
            Query::Density { node } => self.answer_density(h, node),
            Query::Densest => self.answer_densest(algo),
            Query::LevelProfile => Ok(Self::level_profile_value(h)),
            Query::Stats | Query::Shutdown | Query::Mutate { .. } => {
                unreachable!("handled above")
            }
        }
    }

    fn check_cell(&self, h: &Hierarchy, cell: u32) -> Result<(), ProtocolError> {
        if (cell as usize) < h.lambdas().len() {
            Ok(())
        } else {
            Err(ProtocolError::bad_request(format!(
                "cell {cell} out of range (graph has {} cells)",
                h.lambdas().len()
            )))
        }
    }

    fn check_node(&self, h: &Hierarchy, node: u32) -> Result<(), ProtocolError> {
        if (node as usize) < h.len() {
            Ok(())
        } else {
            Err(ProtocolError::bad_request(format!(
                "node {node} out of range (hierarchy has {} nodes)",
                h.len()
            )))
        }
    }

    fn answer_lambda(&self, h: &Hierarchy, cell: u32) -> Result<Value, ProtocolError> {
        self.check_cell(h, cell)?;
        Ok(Value::Object(vec![
            ("cell".to_string(), u(cell)),
            ("lambda".to_string(), u(h.lambda_of(cell))),
            ("node".to_string(), node_value(h.node_of_cell(cell))),
        ]))
    }

    fn answer_nuclei_of(&self, h: &Hierarchy, cell: u32) -> Result<Value, ProtocolError> {
        self.check_cell(h, cell)?;
        let mut chain = Vec::new();
        let mut id = h.node_of_cell(cell);
        while id != NO_NODE {
            let n = h.node(id);
            chain.push(Value::Object(vec![
                ("node".to_string(), u(id)),
                ("lambda".to_string(), u(n.lambda)),
                ("cells".to_string(), u(n.subtree_cells)),
            ]));
            id = n.parent;
        }
        Ok(Value::Object(vec![
            ("cell".to_string(), u(cell)),
            ("lambda".to_string(), u(h.lambda_of(cell))),
            ("chain".to_string(), Value::Array(chain)),
        ]))
    }

    fn answer_members(
        &self,
        h: &Hierarchy,
        node: u32,
        limit: usize,
    ) -> Result<Value, ProtocolError> {
        self.check_node(h, node)?;
        let cells = h.nucleus_cells_slice(node);
        let vertices = self.prepared.nucleus_vertices(h, node);
        let listed_cells: Vec<Value> = cells.iter().take(limit).map(|c| u(*c)).collect();
        let listed_verts: Vec<Value> = vertices.iter().take(limit).map(|v| u(*v)).collect();
        Ok(Value::Object(vec![
            ("node".to_string(), u(node)),
            ("lambda".to_string(), u(h.node(node).lambda)),
            ("total_cells".to_string(), u(cells.len() as u64)),
            (
                "cells_truncated".to_string(),
                Value::Bool(cells.len() > limit),
            ),
            ("cells".to_string(), Value::Array(listed_cells)),
            ("total_vertices".to_string(), u(vertices.len() as u64)),
            (
                "vertices_truncated".to_string(),
                Value::Bool(vertices.len() > limit),
            ),
            ("vertices".to_string(), Value::Array(listed_verts)),
        ]))
    }

    fn answer_subtree(&self, h: &Hierarchy, node: u32) -> Result<Value, ProtocolError> {
        self.check_node(h, node)?;
        let n = h.node(node);
        let children: Vec<Value> = n
            .children
            .iter()
            .map(|&c| {
                let ch = h.node(c);
                Value::Object(vec![
                    ("node".to_string(), u(c)),
                    ("lambda".to_string(), u(ch.lambda)),
                    ("cells".to_string(), u(ch.subtree_cells)),
                    ("children".to_string(), u(ch.children.len() as u64)),
                ])
            })
            .collect();
        Ok(Value::Object(vec![
            ("node".to_string(), u(node)),
            ("lambda".to_string(), u(n.lambda)),
            ("parent".to_string(), node_value(n.parent)),
            ("delta_cells".to_string(), u(n.cells.len() as u64)),
            ("cells".to_string(), u(n.subtree_cells)),
            ("children".to_string(), Value::Array(children)),
        ]))
    }

    /// Density of one node: vertices spanned by its member cells, edges
    /// of the induced subgraph, `2e / (n (n - 1))`.
    fn density_of(&self, h: &Hierarchy, node: u32) -> Result<(usize, usize, f64), ProtocolError> {
        let vertices = self.prepared.nucleus_vertices(h, node);
        if vertices.len() > self.density_vertex_cap {
            return Err(ProtocolError::new(
                ErrorCode::TooLarge,
                format!(
                    "nucleus spans {} vertices, over the density cap {}",
                    vertices.len(),
                    self.density_vertex_cap
                ),
            ));
        }
        let edges = self.prepared.graph().induced_edge_count(&vertices);
        let n = vertices.len();
        let density = if n < 2 {
            0.0
        } else {
            (2.0 * edges as f64) / (n as f64 * (n as f64 - 1.0))
        };
        Ok((n, edges, density))
    }

    fn answer_density(&self, h: &Hierarchy, node: u32) -> Result<Value, ProtocolError> {
        self.check_node(h, node)?;
        let (n, e, d) = self.density_of(h, node)?;
        Ok(Value::Object(vec![
            ("node".to_string(), u(node)),
            ("lambda".to_string(), u(h.node(node).lambda)),
            ("vertices".to_string(), u(n as u64)),
            ("edges".to_string(), u(e as u64)),
            ("density".to_string(), Value::F64(d)),
        ]))
    }

    /// The (cached) best-density node for `algo`'s hierarchy: scanned
    /// once over every non-root node, skipping nuclei above the vertex
    /// cap; ties keep the first (lowest-id) node.
    pub fn densest(&self, algo: Algorithm) -> Result<DensestAnswer, ProtocolError> {
        let res = self.densest[Self::slot_of(algo)].get_or_init(|| {
            let h = self.hierarchy(algo)?;
            let mut best: Option<DensestAnswer> = None;
            let mut skipped = 0usize;
            for id in 1..h.len() as u32 {
                match self.density_of(h, id) {
                    Ok((n, e, d)) => {
                        if best.is_none_or(|b| d > b.density) {
                            best = Some(DensestAnswer {
                                node: id,
                                lambda: h.node(id).lambda,
                                vertices: n,
                                edges: e,
                                density: d,
                                skipped_over_cap: 0,
                            });
                        }
                    }
                    Err(e) if e.code == ErrorCode::TooLarge => skipped += 1,
                    Err(e) => return Err(e),
                }
            }
            match best {
                Some(mut b) => {
                    b.skipped_over_cap = skipped;
                    Ok(b)
                }
                None => Err(ProtocolError::bad_request(
                    "hierarchy has no non-root nuclei under the density cap",
                )),
            }
        });
        res.clone()
    }

    fn answer_densest(&self, algo: Algorithm) -> Result<Value, ProtocolError> {
        let b = self.densest(algo)?;
        Ok(Value::Object(vec![
            ("node".to_string(), u(b.node)),
            ("lambda".to_string(), u(b.lambda)),
            ("vertices".to_string(), u(b.vertices as u64)),
            ("edges".to_string(), u(b.edges as u64)),
            ("density".to_string(), Value::F64(b.density)),
            ("skipped_over_cap".to_string(), u(b.skipped_over_cap as u64)),
        ]))
    }

    fn level_profile_value(h: &Hierarchy) -> Value {
        let profile: Vec<Value> = h.level_profile().into_iter().map(|c| u(c as u64)).collect();
        Value::Object(vec![
            ("max_lambda".to_string(), u(h.max_lambda())),
            ("nuclei".to_string(), u(h.nucleus_count() as u64)),
            ("profile".to_string(), Value::Array(profile)),
        ])
    }

    /// Engine-side `stats` payload. A server passes its request-metrics
    /// snapshot as `metrics`; the one-shot CLI passes `None`.
    pub fn stats_value(&self, metrics: Option<Value>) -> Value {
        let (r, s) = self.prepared.kind().rs();
        let built: Vec<Value> = Algorithm::ALL
            .iter()
            .filter(|a| matches!(self.hierarchies[Self::slot_of(**a)].get(), Some(Ok(_))))
            .map(|a| Value::Str(a.name().to_string()))
            .collect();
        Value::Object(vec![
            (
                "kind".to_string(),
                Value::Str(self.prepared.kind().name().to_string()),
            ),
            ("r".to_string(), u(r)),
            ("s".to_string(), u(s)),
            ("graph_n".to_string(), u(self.prepared.graph().n() as u64)),
            ("graph_m".to_string(), u(self.prepared.graph().m() as u64)),
            ("cells".to_string(), u(self.prepared.cells() as u64)),
            ("containers".to_string(), u(self.prepared.containers())),
            (
                "backend".to_string(),
                Value::Str(format!("{}", self.prepared.backend())),
            ),
            ("threads".to_string(), u(self.prepared.threads() as u64)),
            (
                "default_algo".to_string(),
                Value::Str(self.default_algo.name().to_string()),
            ),
            ("hierarchies_built".to_string(), Value::Array(built)),
            ("metrics".to_string(), metrics.unwrap_or(Value::Null)),
        ])
    }
}

impl QueryAnswerer for ServeState<'_> {
    fn answer(&self, req: &Request) -> Result<Value, ProtocolError> {
        ServeState::answer(self, req)
    }

    fn stats_value(&self, metrics: Option<Value>) -> Value {
        ServeState::stats_value(self, metrics)
    }
}

impl std::fmt::Debug for ServeState<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeState")
            .field("kind", &self.prepared.kind())
            .field("cells", &self.prepared.cells())
            .field("default_algo", &self.default_algo)
            .finish_non_exhaustive()
    }
}
