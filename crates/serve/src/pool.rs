//! A bounded multi-producer/multi-consumer task queue: the hand-off
//! between the accept loop and the fixed worker pool.
//!
//! `std` has no bounded channel with multiple consumers, so this is the
//! classic `Mutex<VecDeque>` + two `Condvar`s construction. Pushes
//! block while the queue is full (back-pressure on `accept`), pops
//! block while it is empty, and [`TaskQueue::close`] wakes everyone so
//! workers drain the remaining items and exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded blocking MPMC queue.
pub struct TaskQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> TaskQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> TaskQueue<T> {
        TaskQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues an item, blocking while the queue is full. Returns the
    /// item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues an item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pending pushes fail, pops drain what remains
    /// then return `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of queued items right now (advisory).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty (advisory).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for TaskQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_through_many_threads() {
        let q = TaskQueue::new(4);
        let consumed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            scope.spawn(|| {
                for i in 0..100 {
                    q.push(i).unwrap();
                }
                q.close();
            });
        });
        assert_eq!(consumed.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = TaskQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_applies_backpressure_until_popped() {
        let q = TaskQueue::new(1);
        q.push(10).unwrap();
        std::thread::scope(|scope| {
            let t = scope.spawn(|| q.push(20));
            // The push above blocks until this pop frees a slot.
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(q.pop(), Some(10));
            assert_eq!(t.join().unwrap(), Ok(()));
        });
        assert_eq!(q.pop(), Some(20));
    }
}
