//! The TCP server: `std::net::TcpListener` + a fixed worker pool over
//! one shared [`QueryAnswerer`] (the immutable [`ServeState`](crate::ServeState) or the
//! epoch-swapping [`DynamicServeState`](crate::DynamicServeState)).
//!
//! Architecture (std only, no async runtime):
//!
//! * the calling thread runs the accept loop on a non-blocking
//!   listener, feeding connections through a bounded [`TaskQueue`]
//!   (back-pressure: a full queue blocks `accept`, the kernel backlog
//!   absorbs the burst);
//! * `workers` scoped threads pop connections and speak the
//!   line-delimited JSON protocol until the peer hangs up;
//! * shutdown is cooperative: a `shutdown` request, the appearance of
//!   the configured signal file, or an accept error flips one shared
//!   [`AtomicBool`]; the accept loop closes the queue and every worker
//!   drains out. [`serve`] then returns a final [`ServerReport`].
//!
//! `std::thread::scope` is what lets workers borrow the answerer
//! (which may itself borrow the caller's graph) with zero `Arc`:
//! the compiler proves every worker exits before `serve` returns.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::Value;

use crate::engine::QueryAnswerer;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::TaskQueue;
use crate::protocol::{err_response, ok_response, ErrorCode, ProtocolError, Query, Request};

/// Tuning knobs of one [`serve`] run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads answering requests.
    pub workers: usize,
    /// Per-request guard: a request whose line stalls longer than this
    /// after its first byte gets a `timeout` error and a closed
    /// connection. Idle connections (no partial request) are exempt.
    pub request_timeout: Duration,
    /// Oversize guard: a request line longer than this gets a
    /// `too_large` error and a closed connection.
    pub max_line_bytes: usize,
    /// Capacity of the accept → worker hand-off queue.
    pub queue_depth: usize,
    /// When set, the server polls for this file and shuts down
    /// gracefully as soon as it exists (the signal-file alternative to
    /// a `shutdown` request).
    pub signal_file: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            request_timeout: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
            queue_depth: 128,
            signal_file: None,
        }
    }
}

/// What a finished [`serve`] run reports.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Final request metrics (also dumped by the CLI on shutdown).
    pub metrics: MetricsSnapshot,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// Polling tick of the accept loop and of blocked worker reads: bounds
/// how stale a shutdown signal can go unnoticed.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Runs the server until shutdown; blocks the calling thread.
///
/// The listener may be bound to port 0 — read the ephemeral port back
/// with `listener.local_addr()` *before* calling this.
pub fn serve<S: QueryAnswerer>(
    listener: TcpListener,
    state: &S,
    config: &ServeConfig,
) -> std::io::Result<ServerReport> {
    listener.set_nonblocking(true)?;
    let stop = AtomicBool::new(false);
    let metrics = Metrics::new();
    let connections = AtomicU64::new(0);
    let queue: TaskQueue<TcpStream> = TaskQueue::new(config.queue_depth.max(1));
    let started = Instant::now();
    let mut accept_error: Option<std::io::Error> = None;

    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| {
                while let Some(stream) = queue.pop() {
                    handle_connection(stream, state, config, &metrics, &stop, started);
                }
            });
        }
        while !stop.load(Ordering::Acquire) {
            if let Some(path) = &config.signal_file {
                if path.exists() {
                    stop.store(true, Ordering::Release);
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    connections.fetch_add(1, Ordering::Relaxed);
                    if queue.push(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_error = Some(e);
                    stop.store(true, Ordering::Release);
                    break;
                }
            }
        }
        stop.store(true, Ordering::Release);
        queue.close();
    });

    match accept_error {
        Some(e) => Err(e),
        None => Ok(ServerReport {
            metrics: metrics.snapshot(),
            connections: connections.load(Ordering::Relaxed),
        }),
    }
}

/// Speaks the protocol on one connection until the peer hangs up, a
/// guard trips, or the server stops.
fn handle_connection<S: QueryAnswerer>(
    stream: TcpStream,
    state: &S,
    config: &ServeConfig,
    metrics: &Metrics,
    stop: &AtomicBool,
    started: Instant,
) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    // Short socket timeout = the polling tick; the *request* timeout is
    // enforced against `deadline` below, so a slow trickled request and
    // a stopped server are both noticed within one tick.
    let _ = stream.set_read_timeout(Some(POLL_TICK));

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut deadline: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if pos > config.max_line_bytes {
                oversize(&mut stream, config, metrics);
                return;
            }
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            deadline = None;
            let line = String::from_utf8_lossy(&line_bytes[..pos]);
            let line = line.trim_end_matches('\r').trim();
            if line.is_empty() {
                continue;
            }
            if stop.load(Ordering::Acquire) {
                let e = ProtocolError::new(ErrorCode::ShuttingDown, "server is shutting down");
                let _ = write_line(&mut stream, &err_response(None, &e));
                return;
            }
            let t0 = Instant::now();
            let (slot, ok, response, shutdown) = dispatch(state, metrics, started, line);
            metrics.record(slot, ok, t0.elapsed());
            if write_line(&mut stream, &response).is_err() {
                return;
            }
            if shutdown {
                stop.store(true, Ordering::Release);
                return;
            }
        }
        if buf.len() > config.max_line_bytes {
            oversize(&mut stream, config, metrics);
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if buf.is_empty() {
                    deadline = Some(Instant::now() + config.request_timeout);
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        let e = ProtocolError::new(
                            ErrorCode::Timeout,
                            format!(
                                "request stalled past the {} ms timeout",
                                config.request_timeout.as_millis()
                            ),
                        );
                        metrics.record(None, false, Duration::ZERO);
                        let _ = write_line(&mut stream, &err_response(None, &e));
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answers `too_large` for a request line over the size cap; the
/// caller closes the connection (there is no reliable way to resync
/// mid-stream).
fn oversize(stream: &mut TcpStream, config: &ServeConfig, metrics: &Metrics) {
    let e = ProtocolError::new(
        ErrorCode::TooLarge,
        format!("request line exceeds {} bytes", config.max_line_bytes),
    );
    metrics.record(None, false, Duration::ZERO);
    let _ = write_line(stream, &err_response(None, &e));
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(line.len() + 1);
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
    stream.write_all(&out)
}

/// Parses and answers one request line. Returns the metrics slot (when
/// the query type was recognized), whether the response is a success,
/// the rendered response, and whether the request asked the server to
/// shut down.
fn dispatch<S: QueryAnswerer>(
    state: &S,
    metrics: &Metrics,
    started: Instant,
    line: &str,
) -> (Option<usize>, bool, String, bool) {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => return (None, false, err_response(None, &e), false),
    };
    let slot = Some(req.query.slot());
    match req.query {
        Query::Shutdown => {
            let result = Value::Object(vec![("stopping".to_string(), Value::Bool(true))]);
            (slot, true, ok_response(req.id, "shutdown", result), true)
        }
        Query::Stats => {
            // Snapshot *before* this request is recorded; uptime rides
            // along so clients can derive sustained QPS.
            let mut m = metrics.snapshot().to_value();
            if let Value::Object(entries) = &mut m {
                entries.push((
                    "uptime_ms".to_string(),
                    Value::U64(started.elapsed().as_millis().min(u64::MAX as u128) as u64),
                ));
            }
            let v = state.stats_value(Some(m));
            (slot, true, ok_response(req.id, "stats", v), false)
        }
        _ => match state.answer(&req) {
            Ok(v) => (slot, true, ok_response(req.id, req.query.name(), v), false),
            Err(e) => (slot, false, err_response(req.id, &e), false),
        },
    }
}
