//! Property tests: both forests against a naive set-partition model.

use proptest::prelude::*;

use nucleus_dsf::{DisjointSets, RootedForest};

/// Naive model: explicit set ids per element.
#[derive(Clone)]
struct Model {
    set_of: Vec<usize>,
}

impl Model {
    fn new(n: usize) -> Self {
        Model {
            set_of: (0..n).collect(),
        }
    }

    fn union(&mut self, a: usize, b: usize) {
        let (sa, sb) = (self.set_of[a], self.set_of[b]);
        if sa != sb {
            for s in &mut self.set_of {
                if *s == sb {
                    *s = sa;
                }
            }
        }
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.set_of[a] == self.set_of[b]
    }

    fn count(&self) -> usize {
        let mut ids: Vec<usize> = self.set_of.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn classic_matches_model(
        n in 2usize..40,
        ops in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let mut dsu = DisjointSets::new(n);
        let mut model = Model::new(n);
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            dsu.union(a as u32, b as u32);
            model.union(a, b);
            prop_assert_eq!(dsu.set_count(), model.count());
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    dsu.same_set(a as u32, b as u32),
                    model.same(a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn rooted_union_matches_model(
        n in 2usize..40,
        ops in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
    ) {
        let mut f = RootedForest::new();
        for _ in 0..n {
            f.push();
        }
        let mut model = Model::new(n);
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            f.union_r(a as u32, b as u32);
            model.union(a, b);
        }
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    f.find_r(a as u32) == f.find_r(b as u32),
                    model.same(a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn rooted_parent_links_form_a_forest(
        n in 2usize..30,
        ops in proptest::collection::vec((0usize..30, 0usize..30), 0..80),
    ) {
        let mut f = RootedForest::new();
        for _ in 0..n {
            f.push();
        }
        for (a, b) in ops {
            f.union_r((a % n) as u32, (b % n) as u32);
        }
        // every node reaches a parentless top in ≤ n parent steps, and
        // that top is its find_r representative
        for x in 0..n as u32 {
            let mut cur = x;
            let mut steps = 0;
            while let Some(p) = f.parent(cur) {
                cur = p;
                steps += 1;
                prop_assert!(steps <= n, "parent cycle at {}", x);
            }
            prop_assert_eq!(cur, f.find_r(x), "top mismatch for {}", x);
        }
    }

    #[test]
    fn attach_preserves_partitions_and_adds_edges(
        chains in proptest::collection::vec(1usize..6, 1..8),
    ) {
        // build one structure per chain, then attach them in sequence:
        // every earlier structure must find the last attached base
        let mut f = RootedForest::new();
        let mut tops = vec![];
        for &len in &chains {
            let base = f.push();
            let mut top = base;
            for _ in 1..len {
                let x = f.push();
                top = f.union_r(top, x);
            }
            tops.push(top);
        }
        for w in (0..tops.len()).rev().collect::<Vec<_>>().windows(2) {
            let (upper, lower) = (w[0], w[1]);
            let t = f.find_r(tops[upper]);
            let anchor = f.find_r(tops[lower]);
            if t != anchor {
                f.attach(t, anchor);
            }
        }
        let expected = f.find_r(tops[0]);
        for &t in &tops {
            prop_assert_eq!(f.find_r(t), expected);
        }
    }
}
