//! Root-augmented disjoint-set forest (Algorithm 7 of the paper).
//!
//! The hierarchy-skeleton of a nucleus decomposition is a tree of
//! sub-nuclei. While it is being built bottom-up we repeatedly need the
//! *greatest ancestor* ("the representative of the large structure a
//! sub-nucleus has been absorbed into"). Rewriting tree `parent` links to
//! compress paths would destroy the skeleton itself, so each node carries
//! a second pointer:
//!
//! * `parent` — permanent skeleton edge, written once per node;
//! * `root` — union-find overlay pointing (possibly transitively) at the
//!   node's current greatest ancestor; `find_r` compresses **only** this
//!   pointer.

const NONE: u32 = u32::MAX;

/// Growable forest of nodes with separate `parent` (permanent tree link)
/// and `root` (path-compressed union-find link) pointers.
#[derive(Clone, Debug, Default)]
pub struct RootedForest {
    parent: Vec<u32>,
    root: Vec<u32>,
    rank: Vec<u32>,
}

impl RootedForest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forest with capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        RootedForest {
            parent: Vec::with_capacity(n),
            root: Vec::with_capacity(n),
            rank: Vec::with_capacity(n),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the forest has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Adds an isolated node (no parent, no root, rank 0); returns its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(NONE);
        self.root.push(NONE);
        self.rank.push(0);
        id
    }

    /// Permanent skeleton parent of `x`, if assigned.
    #[inline]
    pub fn parent(&self, x: u32) -> Option<u32> {
        let p = self.parent[x as usize];
        (p != NONE).then_some(p)
    }

    /// Rank of `x` (union-by-rank bookkeeping; roughly log of tree size).
    #[inline]
    pub fn rank(&self, x: u32) -> u32 {
        self.rank[x as usize]
    }

    /// True if `x` currently has no greatest ancestor other than itself.
    #[inline]
    pub fn is_top(&self, x: u32) -> bool {
        self.root[x as usize] == NONE
    }

    /// Read-only `Find-r`: the greatest ancestor of `x`, touching no
    /// pointer at all. Returns exactly what [`find_r`](Self::find_r)
    /// would, so concurrent hint passes can pre-resolve tops over a
    /// shared reference while a later exclusive pass compresses.
    #[inline]
    pub fn peek_r(&self, x: u32) -> u32 {
        let mut top = x;
        while self.root[top as usize] != NONE {
            top = self.root[top as usize];
        }
        top
    }

    /// Installs a compression shortcut in O(1): points `x`'s overlay
    /// pointer straight at `top`, which **must** be `x`'s current
    /// greatest ancestor (what [`peek_r`](Self::peek_r) returns) — the
    /// caller knows it from an earlier hint resolution. `parent` links
    /// are never touched.
    ///
    /// # Panics
    /// In debug builds, panics if `top` is not `x`'s greatest ancestor.
    #[inline]
    pub fn compress_to(&mut self, x: u32, top: u32) {
        debug_assert_eq!(self.peek_r(x), top, "compress_to needs x's true top");
        if x != top {
            self.root[x as usize] = top;
        }
    }

    /// `Find-r`: the greatest ancestor of `x`, compressing `root`
    /// pointers along the way. `parent` pointers are never touched.
    pub fn find_r(&mut self, x: u32) -> u32 {
        let mut top = x;
        while self.root[top as usize] != NONE {
            top = self.root[top as usize];
        }
        let mut c = x;
        while c != top && self.root[c as usize] != top {
            let next = self.root[c as usize];
            self.root[c as usize] = top;
            c = next;
        }
        top
    }

    /// `Link-r`: links two *tops* by rank. The loser's `parent` **and**
    /// `root` are set to the winner. Returns the winner.
    ///
    /// # Panics
    /// In debug builds, panics if either argument is not a top.
    pub fn link_r(&mut self, x: u32, y: u32) -> u32 {
        debug_assert!(self.is_top(x) && self.is_top(y), "link_r expects tops");
        debug_assert_ne!(x, y, "link_r of a node with itself");
        let (winner, loser) = if self.rank[x as usize] > self.rank[y as usize] {
            (x, y)
        } else {
            (y, x)
        };
        self.parent[loser as usize] = winner;
        self.root[loser as usize] = winner;
        if self.rank[x as usize] == self.rank[y as usize] {
            self.rank[winner as usize] += 1;
        }
        winner
    }

    /// `Union-r`: merges the structures containing `x` and `y`.
    /// Returns the surviving top (or the common top if already merged).
    pub fn union_r(&mut self, x: u32, y: u32) -> u32 {
        let rx = self.find_r(x);
        let ry = self.find_r(y);
        if rx == ry {
            return rx;
        }
        self.link_r(rx, ry)
    }

    /// Cross-level attachment (line 21 of Alg. 6 / line 10 of Alg. 9):
    /// makes `new_parent` the skeleton parent *and* union-find root of
    /// the top `x`. Unlike [`link_r`](Self::link_r) the direction is
    /// dictated by λ values, not rank.
    ///
    /// # Panics
    /// In debug builds, panics if `x` is not a top.
    pub fn attach(&mut self, x: u32, new_parent: u32) {
        debug_assert!(self.is_top(x), "attach expects a top");
        debug_assert_ne!(x, new_parent);
        self.parent[x as usize] = new_parent;
        self.root[x as usize] = new_parent;
    }

    /// Sets only the skeleton parent of `x` (used to tie remaining tops
    /// to the artificial global root at the end of construction).
    pub fn set_parent(&mut self, x: u32, p: u32) {
        debug_assert!(self.parent[x as usize] == NONE);
        self.parent[x as usize] = p;
    }

    /// Iterates all node ids whose skeleton parent is unassigned.
    pub fn orphans(&self) -> impl Iterator<Item = u32> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == NONE)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_nodes_are_their_own_top() {
        let mut f = RootedForest::new();
        let a = f.push();
        let b = f.push();
        assert_eq!(f.find_r(a), a);
        assert_eq!(f.find_r(b), b);
        assert!(f.parent(a).is_none());
    }

    #[test]
    fn union_links_parent_and_root() {
        let mut f = RootedForest::new();
        let a = f.push();
        let b = f.push();
        let w = f.union_r(a, b);
        let l = if w == a { b } else { a };
        assert_eq!(f.parent(l), Some(w));
        assert_eq!(f.find_r(l), w);
        assert_eq!(f.find_r(w), w);
        // idempotent
        assert_eq!(f.union_r(a, b), w);
    }

    #[test]
    fn attach_overrides_rank_direction() {
        let mut f = RootedForest::new();
        // Build a tall structure so its top has high rank.
        let nodes: Vec<u32> = (0..8).map(|_| f.push()).collect();
        let mut top = nodes[0];
        for &x in &nodes[1..] {
            top = f.union_r(top, x);
        }
        assert!(f.rank(top) > 0);
        let low = f.push(); // rank 0, but λ-wise it must become the parent
        f.attach(top, low);
        for &x in &nodes {
            assert_eq!(f.find_r(x), low);
        }
        assert_eq!(f.parent(top), Some(low));
    }

    #[test]
    fn parent_links_form_skeleton_not_compressed() {
        let mut f = RootedForest::new();
        let a = f.push();
        let b = f.push();
        let c = f.push();
        let w1 = f.union_r(a, b);
        let w2 = f.union_r(w1, c);
        // After compression everyone finds w2, but parent pointers still
        // spell out the merge history (each non-top has exactly one).
        assert_eq!(f.find_r(a), w2);
        assert_eq!(f.find_r(b), w2);
        let mut with_parent = 0;
        for x in [a, b, c] {
            if f.parent(x).is_some() {
                with_parent += 1;
            }
        }
        assert_eq!(with_parent, 2); // two losers, one overall top
        assert!(f.parent(w2).is_none());
    }

    #[test]
    fn orphans_lists_unparented() {
        let mut f = RootedForest::new();
        let a = f.push();
        let b = f.push();
        let c = f.push();
        f.union_r(a, b);
        let orphans: Vec<u32> = f.orphans().collect();
        assert_eq!(orphans.len(), 2); // surviving top + c
        assert!(orphans.contains(&c));
    }

    #[test]
    fn peek_matches_find_without_compressing() {
        let mut f = RootedForest::new();
        let nodes: Vec<u32> = (0..10).map(|_| f.push()).collect();
        for w in nodes.windows(2) {
            f.attach(w[0], w[1]);
        }
        let top = *nodes.last().unwrap();
        // peek agrees with find but leaves the chain unflattened
        assert_eq!(f.peek_r(nodes[0]), top);
        assert_eq!(f.root[nodes[0] as usize], nodes[1]);
        // an O(1) shortcut then matches what find_r would have written
        f.compress_to(nodes[0], top);
        assert_eq!(f.root[nodes[0] as usize], top);
        assert_eq!(f.find_r(nodes[0]), top);
        // compressing a top to itself is a no-op
        f.compress_to(top, top);
        assert!(f.is_top(top));
    }

    #[test]
    fn find_compresses_long_chains() {
        let mut f = RootedForest::new();
        let nodes: Vec<u32> = (0..100).map(|_| f.push()).collect();
        // Chain attachments: each top attached under the next node.
        for w in nodes.windows(2) {
            f.attach(w[0], w[1]);
        }
        let top = *nodes.last().unwrap();
        assert_eq!(f.find_r(nodes[0]), top);
        // After one find, the chain is flattened.
        assert_eq!(f.root[nodes[0] as usize], top);
        assert_eq!(f.root[nodes[50] as usize], top);
        // parent chain intact
        assert_eq!(f.parent(nodes[0]), Some(nodes[1]));
    }
}
