#![warn(missing_docs)]

//! Disjoint-set forests for dense-subgraph hierarchy construction.
//!
//! Three structures are provided:
//!
//! * [`DisjointSets`] — the textbook union-find with union-by-rank and
//!   path compression (Algorithm 4 of Sarıyüce & Pinar, VLDB 2016);
//! * [`ConcurrentSets`] — a lock-free shared-memory variant (single
//!   `AtomicU64` per node, CAS-linked unions, CAS path-halving) whose
//!   final partition is independent of union interleaving — the merge
//!   structure behind the parallel FND peel;
//! * [`RootedForest`] — the paper's *new* variant (Algorithm 7), where
//!   each node carries **two** pointers:
//!   - `parent`: the permanent link of the hierarchy-skeleton tree
//!     (never rewritten by finds), and
//!   - `root`: the union-find link used to locate the *greatest
//!     ancestor* of a node quickly (path-compressed by `find_r`).
//!
//!   `link_r` sets both pointers of the losing root, so the skeleton tree
//!   and the union-find overlay stay consistent while `find_r` stays
//!   amortized-inverse-Ackermann fast.

pub mod classic;
pub mod concurrent;
pub mod rooted;

pub use classic::DisjointSets;
pub use concurrent::ConcurrentSets;
pub use rooted::RootedForest;
