//! Classic union-find (Algorithm 4 of the paper).

/// Union-find over `0..n` with union-by-rank and full path compression.
///
/// ```
/// use nucleus_dsf::DisjointSets;
/// let mut ds = DisjointSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert_eq!(ds.find(0), ds.find(1));
/// assert_ne!(ds.find(1), ds.find(2));
/// ds.union(1, 3);
/// assert_eq!(ds.find(0), ds.find(2));
/// ```
#[derive(Clone, Debug)]
pub struct DisjointSets {
    /// Parent pointer; a node is a root iff `parent[x] == x`.
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Adds a fresh singleton, returning its id.
    pub fn push(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        self.sets += 1;
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when no element exists.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Compress the path.
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    /// Representative without mutation (no compression); useful for
    /// read-only queries on shared structures.
    pub fn find_immutable(&self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        r
    }

    /// Merges the sets of `x` and `y`. Returns the new representative,
    /// or `None` if they were already in the same set.
    pub fn union(&mut self, x: u32, y: u32) -> Option<u32> {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return None;
        }
        self.sets -= 1;
        let (hi, lo) = if self.rank[rx as usize] >= self.rank[ry as usize] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        Some(hi)
    }

    /// True if `x` and `y` are in the same set.
    pub fn same_set(&mut self, x: u32, y: u32) -> bool {
        self.find(x) == self.find(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut ds = DisjointSets::new(3);
        assert_eq!(ds.set_count(), 3);
        assert_ne!(ds.find(0), ds.find(1));
    }

    #[test]
    fn union_reduces_set_count() {
        let mut ds = DisjointSets::new(5);
        assert!(ds.union(0, 1).is_some());
        assert!(ds.union(1, 2).is_some());
        assert!(ds.union(0, 2).is_none()); // already merged
        assert_eq!(ds.set_count(), 3);
    }

    #[test]
    fn push_appends_singleton() {
        let mut ds = DisjointSets::new(1);
        let id = ds.push();
        assert_eq!(id, 1);
        assert_eq!(ds.set_count(), 2);
        ds.union(0, 1);
        assert_eq!(ds.set_count(), 1);
    }

    #[test]
    fn chain_compresses() {
        let mut ds = DisjointSets::new(64);
        for i in 0..63 {
            ds.union(i, i + 1);
        }
        let r = ds.find(0);
        for i in 0..64 {
            assert_eq!(ds.find(i), r);
        }
        assert_eq!(ds.set_count(), 1);
    }

    #[test]
    fn rank_bounds_tree_height() {
        // With union by rank, rank <= log2(n); just sanity check it stays small.
        let mut ds = DisjointSets::new(1024);
        for i in 0..1023 {
            ds.union(i, i + 1);
        }
        assert!(ds.rank.iter().all(|&r| r <= 10));
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut ds = DisjointSets::new(10);
        ds.union(2, 7);
        ds.union(7, 9);
        let frozen = ds.clone();
        assert_eq!(frozen.find_immutable(9), ds.find(9));
    }
}
