//! Lock-free concurrent union-find for parallel sub-nucleus merging.
//!
//! Shared-memory variant of [`crate::DisjointSets`] in the style of
//! Anderson & Woll: each node is a single `AtomicU64` packing
//! `rank << 32 | parent`, a node is a root iff its parent is itself,
//! unions link by rank with one CAS on the losing root's word, and
//! finds compress with CAS path-halving (failures are benign — another
//! thread already shortened the path).
//!
//! The final partition depends only on the *set* of union calls, never
//! on their interleaving, so a parallel peel that issues the same
//! unions as the serial one yields the same connected components.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const fn pack(rank: u32, parent: u32) -> u64 {
    ((rank as u64) << 32) | parent as u64
}

const fn parent_of(word: u64) -> u32 {
    word as u32
}

const fn rank_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Wait-free-read, lock-free-update union-find over `0..n`, usable from
/// many threads through `&self`.
///
/// ```
/// use nucleus_dsf::ConcurrentSets;
/// let ds = ConcurrentSets::new(4);
/// ds.union(0, 1);
/// ds.union(2, 3);
/// assert_eq!(ds.find(0), ds.find(1));
/// assert_ne!(ds.find(1), ds.find(2));
/// ds.union(1, 3);
/// assert_eq!(ds.find(0), ds.find(2));
/// ```
#[derive(Debug)]
pub struct ConcurrentSets {
    /// `rank << 32 | parent` per node; a node is a root iff
    /// `parent == self`.
    nodes: Vec<AtomicU64>,
    sets: AtomicUsize,
}

impl ConcurrentSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "node ids must fit in u32");
        ConcurrentSets {
            nodes: (0..n as u32).map(|i| AtomicU64::new(pack(0, i))).collect(),
            sets: AtomicUsize::new(n),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no element exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of disjoint sets. Exact once concurrent unions have
    /// quiesced; a snapshot while they race.
    pub fn set_count(&self) -> usize {
        self.sets.load(Ordering::Acquire)
    }

    /// Representative of the set containing `x`, with path halving.
    ///
    /// Concurrent unions may relink the returned root under a new one;
    /// callers comparing roots for equality should use [`same_set`]
    /// (which re-checks) or call `find` after all unions finished.
    ///
    /// [`same_set`]: ConcurrentSets::same_set
    pub fn find(&self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let word = self.nodes[x as usize].load(Ordering::Acquire);
            let parent = parent_of(word);
            if parent == x {
                return x;
            }
            let grand = parent_of(self.nodes[parent as usize].load(Ordering::Acquire));
            if grand != parent {
                // Halve the path: x -> grandparent. A lost race means
                // someone else already improved x's pointer.
                let _ = self.nodes[x as usize].compare_exchange_weak(
                    word,
                    pack(rank_of(word), grand),
                    Ordering::Release,
                    Ordering::Relaxed,
                );
            }
            x = parent;
        }
    }

    /// Merges the sets of `x` and `y`. Returns the surviving root, or
    /// `None` if they were already in the same set.
    pub fn union(&self, x: u32, y: u32) -> Option<u32> {
        loop {
            let rx = self.find(x);
            let ry = self.find(y);
            if rx == ry {
                return None;
            }
            let wx = self.nodes[rx as usize].load(Ordering::Acquire);
            let wy = self.nodes[ry as usize].load(Ordering::Acquire);
            // A concurrent union may have demoted either root since the
            // find; restart so the link CAS targets a genuine root.
            if parent_of(wx) != rx || parent_of(wy) != ry {
                continue;
            }
            // Union by rank; ties go to the smaller id so the link
            // direction is interleaving-independent too.
            let tie = rank_of(wx) == rank_of(wy);
            let (winner, loser, loser_word) = if rank_of(wx) > rank_of(wy) || (tie && rx < ry) {
                (rx, ry, wy)
            } else {
                (ry, rx, wx)
            };
            // Linking CAS: succeeds only if the loser is still a root
            // with the rank we saw, which linearizes the union.
            if self.nodes[loser as usize]
                .compare_exchange(
                    loser_word,
                    pack(rank_of(loser_word), winner),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                self.sets.fetch_sub(1, Ordering::AcqRel);
                if tie {
                    // Best-effort rank bump; skipping it (winner lost
                    // its root status to a racer) only costs balance,
                    // never correctness.
                    let ww = self.nodes[winner as usize].load(Ordering::Acquire);
                    if parent_of(ww) == winner {
                        let _ = self.nodes[winner as usize].compare_exchange(
                            ww,
                            pack(rank_of(ww) + 1, winner),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        );
                    }
                }
                return Some(winner);
            }
        }
    }

    /// True if `x` and `y` are in the same set, correct even while
    /// unions race: two equal roots stay equal, and unequal roots are
    /// re-resolved until a stable pair is observed.
    pub fn same_set(&self, x: u32, y: u32) -> bool {
        loop {
            let rx = self.find(x);
            let ry = self.find(y);
            if rx == ry {
                return true;
            }
            // rx is a root distinct from ry *now* only if it is still
            // its own parent; otherwise a racing union moved it.
            if parent_of(self.nodes[rx as usize].load(Ordering::Acquire)) == rx {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DisjointSets;

    /// Deterministic xorshift64* for test-case generation.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn below(&mut self, n: u32) -> u32 {
            (self.next() % n as u64) as u32
        }
    }

    /// Canonical labeling: each node mapped to the smallest member of
    /// its set, which is comparable across implementations.
    fn canonical_concurrent(ds: &ConcurrentSets) -> Vec<u32> {
        let n = ds.len();
        let mut smallest = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = ds.find(x) as usize;
            smallest[r] = smallest[r].min(x);
        }
        (0..n as u32)
            .map(|x| smallest[ds.find(x) as usize])
            .collect()
    }

    fn canonical_classic(ds: &mut DisjointSets) -> Vec<u32> {
        let n = ds.len();
        let mut smallest = vec![u32::MAX; n];
        for x in 0..n as u32 {
            let r = ds.find(x) as usize;
            smallest[r] = smallest[r].min(x);
        }
        (0..n as u32)
            .map(|x| smallest[ds.find(x) as usize])
            .collect()
    }

    #[test]
    fn singletons_are_distinct() {
        let ds = ConcurrentSets::new(3);
        assert_eq!(ds.set_count(), 3);
        assert_ne!(ds.find(0), ds.find(1));
        assert!(!ds.same_set(0, 1));
    }

    #[test]
    fn union_reduces_set_count() {
        let ds = ConcurrentSets::new(5);
        assert!(ds.union(0, 1).is_some());
        assert!(ds.union(1, 2).is_some());
        assert!(ds.union(0, 2).is_none()); // already merged
        assert_eq!(ds.set_count(), 3);
        assert!(ds.same_set(0, 2));
    }

    #[test]
    fn chain_compresses() {
        let ds = ConcurrentSets::new(64);
        for i in 0..63 {
            ds.union(i, i + 1);
        }
        let r = ds.find(0);
        for i in 0..64 {
            assert_eq!(ds.find(i), r);
        }
        assert_eq!(ds.set_count(), 1);
    }

    #[test]
    fn serial_matches_classic_oracle() {
        let mut rng = Rng(0x5EED_0001);
        for _ in 0..50 {
            let n = 2 + rng.below(200);
            let pairs: Vec<(u32, u32)> = (0..rng.below(3 * n))
                .map(|_| (rng.below(n), rng.below(n)))
                .collect();
            let conc = ConcurrentSets::new(n as usize);
            let mut oracle = DisjointSets::new(n as usize);
            for &(a, b) in &pairs {
                assert_eq!(conc.union(a, b).is_some(), oracle.union(a, b).is_some());
            }
            assert_eq!(canonical_concurrent(&conc), canonical_classic(&mut oracle));
            assert_eq!(conc.set_count(), oracle.set_count());
        }
    }

    /// The partition must depend only on the set of unions, not on the
    /// interleaving: hammer the same pair list from several threads in
    /// shuffled orders and compare against the single-threaded oracle.
    #[test]
    fn racing_unions_match_classic_oracle() {
        let mut rng = Rng(0xC0FFEE);
        for case in 0..20 {
            let n = 64 + rng.below(512);
            let pairs: Vec<(u32, u32)> = (0..2 * n).map(|_| (rng.below(n), rng.below(n))).collect();
            let conc = ConcurrentSets::new(n as usize);
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let conc = &conc;
                    let pairs = &pairs;
                    scope.spawn(move || {
                        // Each thread walks the full list from its own
                        // offset and stride, maximizing overlap.
                        let mut local = Rng(0xAB1E ^ (case as u64) << 8 ^ t);
                        let start = local.below(pairs.len() as u32) as usize;
                        for i in 0..pairs.len() {
                            let (a, b) = pairs[(start + i) % pairs.len()];
                            conc.union(a, b);
                            if i % 7 == 0 {
                                conc.same_set(a, b);
                            }
                        }
                    });
                }
            });
            let mut oracle = DisjointSets::new(n as usize);
            for &(a, b) in &pairs {
                oracle.union(a, b);
            }
            assert_eq!(canonical_concurrent(&conc), canonical_classic(&mut oracle));
            assert_eq!(conc.set_count(), oracle.set_count());
        }
    }

    #[test]
    fn racing_finds_do_not_corrupt() {
        let n = 1024u32;
        let ds = ConcurrentSets::new(n as usize);
        std::thread::scope(|scope| {
            // One thread builds a long chain while others find through it.
            let builder = &ds;
            scope.spawn(move || {
                for i in 0..n - 1 {
                    builder.union(i, i + 1);
                }
            });
            for t in 1..4u64 {
                let ds = &ds;
                scope.spawn(move || {
                    let mut rng = Rng(t);
                    for _ in 0..4096 {
                        let x = rng.below(n);
                        assert!(ds.find(x) < n);
                    }
                });
            }
        });
        let r = ds.find(0);
        for i in 0..n {
            assert_eq!(ds.find(i), r);
        }
        assert_eq!(ds.set_count(), 1);
    }
}
