//! `nucleus` binary entry point; all logic lives in [`nucleus_cli`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(msg) = nucleus_cli::run(argv, &mut stdout) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
