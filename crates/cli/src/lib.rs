#![warn(missing_docs)]

//! Implementation of the `nucleus` command-line tool.
//!
//! Subcommands:
//!
//! * `generate` — emit a synthetic graph as an edge list;
//! * `prepare` — build a materialized container index once and persist
//!   it to disk;
//! * `decompose` — run a nucleus decomposition, print the hierarchy,
//!   optionally export it as JSON; `--index` skips preparation by
//!   loading a persisted index;
//! * `stats` — basic structural statistics of a graph;
//! * `update` — apply a batched edge-mutation stream (`+ U V`/`- U V`
//!   lines) to a graph with `nucleus-dynamic`, reporting what changed
//!   and optionally verifying against a full recompute;
//! * `serve` — run the concurrent query service (`nucleus-serve`) over
//!   a prepared space, speaking line-delimited JSON on a TCP port;
//!   `--mutable` serves a dynamic graph that accepts `mutate` requests
//!   and swaps epochs;
//! * `query` — either the legacy k-truss-community lookup of an edge
//!   via the TCP index (`--u/--v/--k`), or a one-shot protocol query
//!   answered by the same engine the server uses (`--type ...`),
//!   locally or against a running server (`--connect`).
//!
//! Argument parsing is hand-rolled (no external CLI dependency): flags
//! are `--name value` pairs, collected into [`Args`].

use std::collections::HashMap;
use std::io::Write;

use nucleus_core::algo::tcp::{tcp_query, TcpIndex};
use nucleus_core::prelude::*;
use nucleus_dynamic::{DynamicGraph, EdgeOp, UpdateReport};
use nucleus_graph::{io, CsrGraph};
use nucleus_serve::{serve, Client, DynamicServeState, Request, ServeConfig, ServeState};

/// Parsed command line: subcommand + `--flag value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    /// First positional token (the subcommand).
    pub command: String,
    /// Flag → value map.
    pub flags: HashMap<String, String>,
}

impl Args {
    /// Flags that take no value: their presence means `"true"`.
    const BOOL_FLAGS: &'static [&'static str] = &["explain", "mutable", "verify"];

    /// Parses from an argv-style iterator (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut it = argv.into_iter();
        let command = it.next().unwrap_or_default();
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            let name = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {tok:?}"))?;
            if Self::BOOL_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value);
        }
        Ok(Args { command, flags })
    }

    /// Presence of a boolean flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Required flag.
    pub fn need(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required --{name}"))
    }

    /// Optional flag with default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Optional numeric flag.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v:?}")),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
nucleus — dense-subgraph hierarchies (Sariyuce & Pinar, VLDB 2016)

USAGE:
  nucleus generate  --model <er|ba|hk|rmat|ws|planted|cliques|karate> [model flags] --out FILE
  nucleus prepare   --input FILE --kind <see below> --out INDEX [--threads N]
  nucleus decompose --input FILE
                    --kind <core|vertex-triangle|truss|edge-k4|nucleus34>
                           (or the (r,s) pair: 1,2 | 1,3 | 2,3 | 2,4 | 3,4)
                    [--index INDEX] [--algo <naive|dft|fnd|lcps>]
                    [--backend <auto|lazy|materialized>]
                    [--engine <auto|serial|frontier>] [--threads N]
                    [--frontier-serial-below N] [--explain]
                    [--json FILE] [--dot FILE] [--depth N]
  nucleus stats     --input FILE
  nucleus update    --input FILE --ops OPS
                    [--kind KIND] [--batch N] [--out FILE]
                    [--json FILE] [--verify]
  nucleus serve     --graph FILE [--index INDEX | --kind KIND]
                    [--mutable] [--port P] [--workers N] [--algo A]
                    [--timeout-ms MS] [--max-line-bytes B]
                    [--signal-file FILE] [--addr-file FILE] [--threads N]
  nucleus query     --input FILE --u U --v V --k K        (k-truss edge lookup)
  nucleus query     --type <lambda|nuclei-of|members|subtree|density|
                            densest|level-profile|stats>
                    [--cell C] [--node N] [--limit L] [--algo A] [--id I]
                    ( --input FILE [--index INDEX | --kind KIND]
                    | --connect HOST:PORT )

generate flags: --n N --m M --p P --seed S --blocks B --block-size Z
examples:
  nucleus generate --model ba --n 10000 --m 5 --out web.txt
  nucleus decompose --input web.txt --kind truss --algo fnd --depth 3
  nucleus decompose --input web.txt --kind 2,4 --explain
  nucleus prepare   --input web.txt --kind truss --out web.truss.nidx
  nucleus decompose --input web.txt --index web.truss.nidx --algo dft

With --index, --kind is optional (the index file stores the family) and
must agree with the file when given; the index is rejected if the graph
changed since `prepare`.

--frontier-serial-below N tunes the frontier engine's hybrid rounds:
mid-level frontiers with fewer than N cells drain their λ-level
serially, and a λ-level opening with under 1/8 of the remaining cells
hands the whole residual to the serial bucket queue
(default 64; 0 disables both fallbacks).

`update` reads OPS as one op per line (`+ U V`, `- U V`, `#` comments),
applies it in `--batch`-sized batches (0 = one batch) with exact
incremental maintenance for core/truss and scoped recompute for the
higher kinds, and prints a JSON report; `--verify` cross-checks the
maintained lambdas against a full recompute, `--out` writes the mutated
edge list.

`serve` speaks line-delimited JSON (one request object per line, one
response per line); `--port 0` binds an ephemeral port, written to
--addr-file for scripts. Stop it with a {\"query\":\"shutdown\"} request
or by creating the --signal-file; request metrics are dumped on exit.
With --mutable (requires --kind, not --index), `mutate` requests apply
edge ops and atomically swap in a freshly prepared epoch; the epoch
counter is surfaced in `stats`.
";

/// Runs the CLI; returns the process exit code.
pub fn run<W: Write>(argv: Vec<String>, out: &mut W) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_str() {
        "generate" => cmd_generate(&args, out),
        "prepare" => cmd_prepare(&args, out),
        "decompose" => cmd_decompose(&args, out),
        "stats" => cmd_stats(&args, out),
        "update" => cmd_update(&args, out),
        "serve" => cmd_serve(&args, out),
        "query" => cmd_query(&args, out),
        "" | "help" | "--help" | "-h" => {
            let _ = write!(out, "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, String> {
    let path = args.need("input")?;
    io::read_edge_list_file(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_generate<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let model = args.need("model")?;
    let seed: u64 = args.num("seed", 42u64)?;
    let n: u32 = args.num("n", 1000u32)?;
    let g = match model {
        "er" => {
            let p: f64 = args.num("p", 0.01f64)?;
            nucleus_gen::er::gnp(n, p, seed)
        }
        "ba" => nucleus_gen::ba::barabasi_albert(n, args.num("m", 3u32)?, seed),
        "hk" => {
            nucleus_gen::holme_kim::holme_kim(n, args.num("m", 3u32)?, args.num("p", 0.7f64)?, seed)
        }
        "rmat" => nucleus_gen::rmat::rmat(
            args.num("scale", 12u32)?,
            args.num("m", 8u32)?,
            nucleus_gen::rmat::RmatParams::skewed(),
            seed,
        ),
        "ws" => {
            nucleus_gen::ws::watts_strogatz(n, args.num("k", 6u32)?, args.num("p", 0.1f64)?, seed)
        }
        "planted" => nucleus_gen::planted::planted_partition(
            args.num("blocks", 10u32)?,
            args.num("block-size", 50u32)?,
            args.num("p-in", 0.3f64)?,
            args.num("p-out", 0.01f64)?,
            seed,
        ),
        "cliques" => {
            nucleus_gen::planted::planted_cliques(args.num("count", 20u32)?, &[10, 16, 22], seed)
        }
        "karate" => nucleus_gen::karate::karate_club(),
        other => return Err(format!("unknown model {other:?}")),
    };
    let path = args.need("out")?;
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    io::write_edge_list(&g, file).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "wrote {path}: {} vertices, {} edges", g.n(), g.m());
    Ok(())
}

// Spelling → value parsing lives in nucleus-core (`Kind::parse` & co.),
// so the accepted sets — and the error messages enumerating them — have
// one home and can never drift from what the library supports.

fn parse_kind(s: &str) -> Result<Kind, String> {
    Kind::parse(s).map_err(|e| e.to_string())
}

fn parse_algo(s: &str) -> Result<Algorithm, String> {
    Algorithm::parse(s).map_err(|e| e.to_string())
}

fn parse_engine(s: &str) -> Result<PeelEngine, String> {
    PeelEngine::parse(s).map_err(|e| e.to_string())
}

fn parse_backend(s: &str) -> Result<Backend, String> {
    Backend::parse(s).map_err(|e| e.to_string())
}

fn cmd_prepare<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let g = load_graph(args)?;
    let kind = parse_kind(args.need("kind")?)?;
    let out_path = args.need("out")?;
    let prepared = Nucleus::builder(&g)
        .kind(kind)
        .backend(Backend::Materialized)
        .threads(args.num("threads", 0usize)?)
        .prepare()
        .map_err(|e| e.to_string())?;
    prepared.save(out_path).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(out_path).map(|m| m.len()).unwrap_or(0);
    let _ = writeln!(
        out,
        "wrote {out_path}: {} {} index, {} cells, {} containers, {bytes} bytes",
        kind.name(),
        kind,
        prepared.cells(),
        prepared.containers(),
    );
    Ok(())
}

fn cmd_decompose<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let g = load_graph(args)?;
    let algo = parse_algo(args.get_or("algo", "fnd"))?;
    let backend = parse_backend(args.get_or("backend", "auto"))?;
    let engine = parse_engine(args.get_or("engine", "auto"))?;
    let threads = args.num("threads", 0usize)?;
    let frontier_serial_below = args.num(
        "frontier-serial-below",
        FrontierOptions::DEFAULT_SERIAL_ROUND_THRESHOLD,
    )?;
    let prepared = if let Some(index_path) = args.flags.get("index") {
        let index = PreparedIndex::load(index_path).map_err(|e| e.to_string())?;
        // --kind is optional here (the file stores the family) but must
        // agree with the file when given.
        if let Some(spec) = args.flags.get("kind") {
            let requested = parse_kind(spec)?;
            if requested != index.kind() {
                return Err(format!(
                    "--kind {} conflicts with {index_path}, which stores a {} ({}) index",
                    requested.name(),
                    index.kind().name(),
                    index.kind(),
                ));
            }
        }
        nucleus_core::plan::validate(index.kind(), algo, Backend::Materialized, engine)
            .map_err(|e| e.to_string())?;
        Nucleus::builder(&g)
            .backend(backend)
            .engine(engine)
            .threads(threads)
            .frontier_serial_below(frontier_serial_below)
            .prepare_from_index(index)
            .map_err(|e| e.to_string())?
    } else {
        let kind = parse_kind(args.need("kind")?)?;
        // Reject contradictory combinations before `prepare` spends time
        // on clique enumeration / index construction the run could never
        // use.
        nucleus_core::plan::validate(kind, algo, backend, engine).map_err(|e| e.to_string())?;
        Nucleus::builder(&g)
            .kind(kind)
            .backend(backend)
            .engine(engine)
            .threads(threads)
            .frontier_serial_below(frontier_serial_below)
            .prepare()
            .map_err(|e| e.to_string())?
    };
    if args.flag("explain") {
        let plan = prepared.plan(algo).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "{}", plan.explain());
    }
    let d = prepared.run(algo).map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{}", describe(&d));
    let depth: usize = args.num("depth", 3usize)?;
    let _ = write!(out, "{}", render_tree(&d.hierarchy, depth, 12));
    if let Some(path) = args.flags.get("json") {
        let json = serde_json::to_string_pretty(&d.hierarchy).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "hierarchy exported to {path}");
    }
    if let Some(path) = args.flags.get("dot") {
        let dot = nucleus_core::export::hierarchy_to_dot(&d.hierarchy, 200);
        std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "GraphViz tree exported to {path}");
    }
    Ok(())
}

fn cmd_stats<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let g = load_graph(args)?;
    let tris = nucleus_cliques::TriangleList::build(&g);
    let k4 = nucleus_cliques::four_cliques::k4_count(&g, &tris);
    let (_, degeneracy) = nucleus_graph::order::degeneracy_order(&g);
    let (_, components) = nucleus_graph::traversal::connected_components(&g);
    let _ = writeln!(out, "vertices     {}", g.n());
    let _ = writeln!(out, "edges        {}", g.m());
    let _ = writeln!(out, "triangles    {}", tris.len());
    let _ = writeln!(out, "four-cliques {k4}");
    let _ = writeln!(out, "max degree   {}", g.max_degree());
    let _ = writeln!(out, "degeneracy   {degeneracy}");
    let _ = writeln!(out, "components   {components}");
    Ok(())
}

/// Builds the prepared session a `serve` / engine-`query` run answers
/// from: `--index FILE` loads a persisted index (which must match the
/// graph and any explicit `--kind`), otherwise `--kind` prepares from
/// scratch with the materialized backend (the right default for a
/// read-mostly serving workload).
fn prepare_for_engine<'g>(g: &'g CsrGraph, args: &Args) -> Result<Prepared<'g>, String> {
    let threads = args.num("threads", 0usize)?;
    if let Some(index_path) = args.flags.get("index") {
        let index = PreparedIndex::load(index_path).map_err(|e| e.to_string())?;
        if let Some(spec) = args.flags.get("kind") {
            let requested = parse_kind(spec)?;
            if requested != index.kind() {
                return Err(format!(
                    "--kind {} conflicts with {index_path}, which stores a {} ({}) index",
                    requested.name(),
                    index.kind().name(),
                    index.kind(),
                ));
            }
        }
        Nucleus::builder(g)
            .threads(threads)
            .prepare_from_index(index)
            .map_err(|e| e.to_string())
    } else {
        let kind = parse_kind(args.need("kind")?)?;
        Nucleus::builder(g)
            .kind(kind)
            .backend(Backend::Materialized)
            .threads(threads)
            .prepare()
            .map_err(|e| e.to_string())
    }
}

/// Renders an [`UpdateReport`] (plus run context) as a JSON line.
fn update_report_json(
    report: &UpdateReport,
    batches: usize,
    update_ms: u128,
    n: usize,
    m: usize,
    verified: Option<bool>,
) -> String {
    let verified = match verified {
        None => "null".to_string(),
        Some(ok) => ok.to_string(),
    };
    format!(
        concat!(
            r#"{{"applied":{},"skipped":{},"coalesced":{},"inserted":{},"deleted":{},"#,
            r#""cells_changed":{},"scope_cells":{},"strategy":"{}","needs_reindex":{},"#,
            r#""batches":{},"update_ms":{},"graph_n":{},"graph_m":{},"verified":{}}}"#
        ),
        report.applied,
        report.skipped,
        report.coalesced,
        report.inserted,
        report.deleted,
        report.cells_changed,
        report.scope_cells,
        report.strategy.name(),
        report.needs_reindex,
        batches,
        update_ms,
        n,
        m,
        verified,
    )
}

fn cmd_update<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let g = load_graph(args)?;
    let ops_path = args.need("ops")?;
    let text =
        std::fs::read_to_string(ops_path).map_err(|e| format!("cannot read {ops_path}: {e}"))?;
    let ops = EdgeOp::parse_stream(&text).map_err(|e| format!("{ops_path}: {e}"))?;
    let kind = parse_kind(args.get_or("kind", "core"))?;
    let batch: usize = args.num("batch", 0usize)?;
    let mut dg = DynamicGraph::new(&g, kind);
    let t0 = std::time::Instant::now();
    let mut total = UpdateReport::default();
    let mut batches = 0usize;
    for chunk in ops.chunks(if batch == 0 { ops.len().max(1) } else { batch }) {
        total.absorb(&dg.apply(chunk));
        batches += 1;
    }
    let update_ms = t0.elapsed().as_millis();
    let verified = if args.flag("verify") {
        let snapshot = dg.to_graph();
        let maintained = dg.lambda_snapshot(&snapshot).expect("kinded graph has λ");
        let fresh = DynamicGraph::new(&snapshot, kind);
        let expect = fresh
            .lambda_snapshot(&snapshot)
            .expect("kinded graph has λ");
        if maintained != expect {
            return Err(format!(
                "--verify FAILED: maintained λ diverges from a full recompute \
                 ({} of {} cells differ)",
                maintained
                    .iter()
                    .zip(&expect)
                    .filter(|(a, b)| a != b)
                    .count(),
                expect.len(),
            ));
        }
        Some(true)
    } else {
        None
    };
    if let Some(out_path) = args.flags.get("out") {
        let file = std::fs::File::create(out_path)
            .map_err(|e| format!("cannot create {out_path}: {e}"))?;
        io::write_edge_list(&dg.to_graph(), file).map_err(|e| e.to_string())?;
    }
    let line = update_report_json(&total, batches, update_ms, dg.n(), dg.m(), verified);
    if let Some(json_path) = args.flags.get("json") {
        std::fs::write(json_path, format!("{line}\n"))
            .map_err(|e| format!("cannot write {json_path}: {e}"))?;
    }
    let _ = writeln!(out, "{line}");
    Ok(())
}

fn cmd_serve<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let path = args
        .flags
        .get("graph")
        .or_else(|| args.flags.get("input"))
        .ok_or_else(|| "missing required --graph".to_string())?;
    if args.flag("mutable") && args.flags.contains_key("index") {
        return Err(
            "--mutable conflicts with --index: a persisted index is pinned to one \
             graph fingerprint; use --kind and let the server prepare each epoch"
                .to_string(),
        );
    }
    let g = io::read_edge_list_file(path).map_err(|e| format!("cannot load {path}: {e}"))?;
    let default_algo = parse_algo(args.get_or("algo", "fnd"))?;
    let config = ServeConfig {
        workers: args.num("workers", 4usize)?,
        request_timeout: std::time::Duration::from_millis(args.num("timeout-ms", 10_000u64)?),
        max_line_bytes: args.num("max-line-bytes", 1usize << 20)?,
        queue_depth: args.num("queue-depth", 128usize)?,
        signal_file: args.flags.get("signal-file").map(std::path::PathBuf::from),
    };
    let port: u16 = args.num("port", 0u16)?;
    let bind = args.get_or("bind", "127.0.0.1");
    let listener = std::net::TcpListener::bind((bind, port))
        .map_err(|e| format!("cannot bind {bind}:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    if let Some(p) = args.flags.get("addr-file") {
        std::fs::write(p, addr.to_string()).map_err(|e| format!("cannot write {p}: {e}"))?;
    }
    let report = if args.flag("mutable") {
        let kind = parse_kind(args.need("kind")?)?;
        let state = DynamicServeState::new(&g, kind)
            .map_err(|e| e.to_string())?
            .with_default_algo(default_algo);
        let _ = writeln!(
            out,
            "serving {} {} on {addr} (mutable, epoch 0): {} workers, default algo {}",
            kind.name(),
            kind,
            config.workers.max(1),
            default_algo.name(),
        );
        let _ = out.flush();
        serve(listener, &state, &config).map_err(|e| e.to_string())?
    } else {
        let prepared = prepare_for_engine(&g, args)?;
        let kind = prepared.kind();
        let state = ServeState::new(prepared).with_default_algo(default_algo);
        let _ = writeln!(
            out,
            "serving {} {} on {addr}: {} cells, {} workers, default algo {}",
            kind.name(),
            kind,
            state.prepared().cells(),
            config.workers.max(1),
            default_algo.name(),
        );
        let _ = out.flush();
        serve(listener, &state, &config).map_err(|e| e.to_string())?
    };
    let _ = writeln!(out, "shutdown after {} connections", report.connections);
    let _ = write!(out, "{}", report.metrics.render_text());
    Ok(())
}

/// Assembles the request line an engine-mode `query` sends: either the
/// raw `--request` JSON, or one built from `--type` plus the id flags.
fn request_line(args: &Args) -> Result<String, String> {
    if let Some(raw) = args.flags.get("request") {
        return Ok(raw.clone());
    }
    let ty = args.need("type")?.replace('-', "_");
    let mut fields = vec![format!(r#""query":"{ty}""#)];
    for key in ["cell", "node", "limit", "id"] {
        if let Some(v) = args.flags.get(key) {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--{key}: bad number {v:?}"))?;
            fields.push(format!(r#""{key}":{n}"#));
        }
    }
    if let Some(a) = args.flags.get("algo") {
        fields.push(format!(r#""algo":"{a}""#));
    }
    Ok(format!("{{{}}}", fields.join(",")))
}

/// One-shot protocol query: local (same engine as the server, no
/// network) or remote (`--connect HOST:PORT`). Prints the response
/// JSON line either way; scripts branch on its `ok` field.
fn cmd_query_engine<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    let line = request_line(args)?;
    let response = if let Some(addr) = args.flags.get("connect") {
        let mut client =
            Client::connect(addr.as_str()).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        client.roundtrip(&line).map_err(|e| e.to_string())?
    } else {
        let g = load_graph(args)?;
        let prepared = prepare_for_engine(&g, args)?;
        let mut state = ServeState::new(prepared);
        if let Some(a) = args.flags.get("algo") {
            state = state.with_default_algo(parse_algo(a)?);
        }
        match Request::parse(&line) {
            Err(e) => nucleus_serve::err_response(None, &e),
            Ok(req) => match state.answer(&req) {
                Ok(v) => nucleus_serve::ok_response(req.id, req.query.name(), v),
                Err(e) => nucleus_serve::err_response(req.id, &e),
            },
        }
    };
    let _ = writeln!(out, "{response}");
    Ok(())
}

fn cmd_query<W: Write>(args: &Args, out: &mut W) -> Result<(), String> {
    // Engine mode: `--type`/`--request` (local or `--connect`) speak
    // the serve protocol; the flag-pair form below stays the legacy
    // k-truss edge lookup.
    if args.flags.contains_key("type")
        || args.flags.contains_key("request")
        || args.flags.contains_key("connect")
    {
        return cmd_query_engine(args, out);
    }
    let g = load_graph(args)?;
    let u: u32 = args.num("u", 0u32)?;
    let v: u32 = args.num("v", 0u32)?;
    let k: u32 = args.num("k", 1u32)?;
    let es = EdgeSpace::new(&g);
    let truss = peel(&es);
    let idx = TcpIndex::build(&g, &truss);
    match tcp_query(&g, &truss, &idx, u, v, k) {
        None => {
            let _ = writeln!(out, "no {k}-truss community contains edge ({u},{v})");
        }
        Some(edges) => {
            let mut verts: Vec<u32> = edges
                .iter()
                .flat_map(|&e| {
                    let (a, b) = g.endpoints(e);
                    [a, b]
                })
                .collect();
            verts.sort_unstable();
            verts.dedup();
            let _ = writeln!(
                out,
                "{k}-truss community of ({u},{v}): {} edges over {} vertices",
                edges.len(),
                verts.len()
            );
            let _ = writeln!(out, "vertices: {verts:?}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(argv: &[&str]) -> Result<String, String> {
        let mut buf = Vec::new();
        run(argv.iter().map(|s| s.to_string()).collect(), &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("nucleus-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_to_string(&["bogus"]).is_err());
    }

    #[test]
    fn generate_then_decompose_then_stats() {
        let path = tmp("karate.txt");
        let out = run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        assert!(out.contains("34 vertices"));

        let out = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "core",
            "--algo",
            "lcps",
        ])
        .unwrap();
        assert!(out.contains("max λ = 4"), "got: {out}");

        let out = run_to_string(&["stats", "--input", &path]).unwrap();
        assert!(out.contains("degeneracy   4"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decompose_exports_json() {
        let graph_path = tmp("er.txt");
        run_to_string(&[
            "generate",
            "--model",
            "er",
            "--n",
            "60",
            "--p",
            "0.15",
            "--out",
            &graph_path,
        ])
        .unwrap();
        let json_path = tmp("h.json");
        let out = run_to_string(&[
            "decompose",
            "--input",
            &graph_path,
            "--kind",
            "truss",
            "--json",
            &json_path,
        ])
        .unwrap();
        assert!(out.contains("exported"));
        let data = std::fs::read_to_string(&json_path).unwrap();
        assert!(data.contains("\"nodes\""));
        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn decompose_exports_dot() {
        let graph_path = tmp("dot-src.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &graph_path]).unwrap();
        let dot_path = tmp("h.dot");
        let out = run_to_string(&[
            "decompose",
            "--input",
            &graph_path,
            "--kind",
            "core",
            "--dot",
            &dot_path,
        ])
        .unwrap();
        assert!(out.contains("GraphViz"));
        let dot = std::fs::read_to_string(&dot_path).unwrap();
        assert!(dot.starts_with("digraph"));
        std::fs::remove_file(&graph_path).ok();
        std::fs::remove_file(&dot_path).ok();
    }

    #[test]
    fn decompose_backend_flags() {
        let path = tmp("backend.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let lazy = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--backend",
            "lazy",
        ])
        .unwrap();
        assert!(lazy.contains("[lazy]"), "got: {lazy}");
        let mat = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--backend",
            "materialized",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(mat.contains("[materialized]"), "got: {mat}");
        // identical hierarchies → identical renderings after the
        // timing line
        let tree = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tree(&lazy), tree(&mat));
        assert!(run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--backend",
            "bogus",
        ])
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decompose_engine_flags() {
        let path = tmp("engine.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let serial = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--algo",
            "dft",
            "--engine",
            "serial",
        ])
        .unwrap();
        assert!(serial.contains("[serial]"), "got: {serial}");
        let frontier = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--algo",
            "dft",
            "--engine",
            "frontier",
            "--threads",
            "2",
        ])
        .unwrap();
        assert!(
            frontier.contains("[materialized][frontier]"),
            "got: {frontier}"
        );
        // identical hierarchies → identical renderings after the timing line
        let tree = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tree(&serial), tree(&frontier));
        // FND rides the frontier engine too (with a tuned hybrid
        // threshold), producing the same hierarchy
        let fnd_frontier = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--algo",
            "fnd",
            "--engine",
            "frontier",
            "--threads",
            "2",
            "--frontier-serial-below",
            "4",
        ])
        .unwrap();
        assert!(
            fnd_frontier.contains("[materialized][frontier]"),
            "got: {fnd_frontier}"
        );
        assert_eq!(tree(&serial), tree(&fnd_frontier));
        // incompatible combinations surface as CLI errors
        let err = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "core",
            "--algo",
            "lcps",
            "--engine",
            "frontier",
        ])
        .unwrap_err();
        assert!(err.contains("frontier"), "got: {err}");
        let err = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--algo",
            "dft",
            "--engine",
            "frontier",
            "--backend",
            "lazy",
        ])
        .unwrap_err();
        assert!(err.contains("materialized"), "got: {err}");
        assert!(run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--engine",
            "bogus",
        ])
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decompose_all_five_kinds_with_explain() {
        let path = tmp("five-kinds.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        for (name, rs) in [
            ("core", "(1,2)"),
            ("vertex-triangle", "(1,3)"),
            ("truss", "(2,3)"),
            ("edge-k4", "(2,4)"),
            ("nucleus34", "(3,4)"),
        ] {
            let out = run_to_string(&["decompose", "--input", &path, "--kind", name, "--explain"])
                .unwrap();
            assert!(out.contains("plan:"), "{name}: {out}");
            assert!(out.contains(rs), "{name}: {out}");
            assert!(out.contains("backend:"), "{name}: {out}");
        }
        // the bare (r,s) spellings select the same families
        let by_name = run_to_string(&["decompose", "--input", &path, "--kind", "edge-k4"]).unwrap();
        let by_rs = run_to_string(&["decompose", "--input", &path, "--kind", "2,4"]).unwrap();
        let tree = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tree(&by_name), tree(&by_rs));
        // unknown kinds enumerate the real set
        let err = run_to_string(&["decompose", "--input", &path, "--kind", "bogus"]).unwrap_err();
        assert!(err.contains("vertex-triangle"), "{err}");
        assert!(err.contains("edge-k4"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_finds_community() {
        let path = tmp("cliques.txt");
        run_to_string(&[
            "generate", "--model", "cliques", "--count", "3", "--out", &path,
        ])
        .unwrap();
        let out = run_to_string(&[
            "query", "--input", &path, "--u", "0", "--v", "1", "--k", "2",
        ])
        .unwrap();
        assert!(out.contains("community"), "got: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_engine_one_shot_answers_protocol_queries() {
        let path = tmp("engine-query.txt");
        run_to_string(&[
            "generate", "--model", "cliques", "--count", "4", "--out", &path,
        ])
        .unwrap();
        let out = run_to_string(&[
            "query", "--input", &path, "--kind", "truss", "--type", "lambda", "--cell", "0",
            "--id", "7",
        ])
        .unwrap();
        assert!(
            out.starts_with(r#"{"ok":true,"id":7,"query":"lambda""#),
            "got: {out}"
        );
        let out = run_to_string(&[
            "query", "--input", &path, "--kind", "truss", "--type", "densest",
        ])
        .unwrap();
        assert!(out.contains(r#""density":"#), "got: {out}");
        let out = run_to_string(&[
            "query", "--input", &path, "--kind", "truss", "--type", "stats",
        ])
        .unwrap();
        assert!(out.contains(r#""kind":"truss""#), "got: {out}");
        // `-` spellings work, and protocol errors stay typed JSON, not
        // process failures
        let out = run_to_string(&[
            "query",
            "--input",
            &path,
            "--kind",
            "truss",
            "--type",
            "level-profile",
        ])
        .unwrap();
        assert!(out.contains(r#""query":"level_profile""#), "got: {out}");
        let out = run_to_string(&[
            "query", "--input", &path, "--kind", "truss", "--type", "lambda", "--cell", "9999999",
        ])
        .unwrap();
        assert!(out.contains(r#""code":"bad_request""#), "got: {out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_round_trip_through_the_cli_surface() {
        let path = tmp("serve-src.txt");
        run_to_string(&[
            "generate", "--model", "cliques", "--count", "4", "--out", &path,
        ])
        .unwrap();
        let addr_file = tmp("serve-addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let server = {
            let argv: Vec<String> = [
                "serve",
                "--graph",
                &path,
                "--kind",
                "truss",
                "--port",
                "0",
                "--workers",
                "2",
                "--addr-file",
                &addr_file,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                run(argv, &mut buf).unwrap();
                String::from_utf8(buf).unwrap()
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote {addr_file}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let q = run_to_string(&["query", "--connect", &addr, "--type", "level-profile"]).unwrap();
        assert!(q.starts_with(r#"{"ok":true"#), "got: {q}");
        let q = run_to_string(&[
            "query",
            "--connect",
            &addr,
            "--request",
            r#"{"query":"shutdown"}"#,
        ])
        .unwrap();
        assert!(q.contains("stopping"), "got: {q}");
        let served = server.join().unwrap();
        assert!(served.contains("serving truss"), "got: {served}");
        assert!(served.contains("requests 2"), "got: {served}");
        assert!(served.contains("level_profile: 1"), "got: {served}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&addr_file).ok();
    }

    #[test]
    fn update_applies_an_ops_stream_and_verifies() {
        let path = tmp("update-src.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let ops = tmp("update-ops.txt");
        // The edge-list reader relabels vertices by first appearance, so
        // ops are chosen against the round-tripped graph: vertex 0's
        // neighbors there are exactly 1..=16.
        std::fs::write(
            &ops,
            "# churn\n+ 0 33\n- 0 1\n+ 0 33\n- 0 2\n+ 0 30\n- 0 30\n",
        )
        .unwrap();
        let json = tmp("update-report.json");
        for (kind, strategy) in [
            ("core", "incremental"),
            ("truss", "incremental"),
            ("1,3", "scoped_recompute"),
        ] {
            let out = run_to_string(&[
                "update", "--input", &path, "--ops", &ops, "--kind", kind, "--batch", "2",
                "--verify", "--json", &json,
            ])
            .unwrap();
            assert!(out.contains(r#""applied":3"#), "{kind}: {out}");
            assert!(out.contains(r#""skipped":1"#), "{kind}: {out}");
            assert!(out.contains(r#""coalesced":2"#), "{kind}: {out}");
            assert!(
                out.contains(&format!(r#""strategy":"{strategy}""#)),
                "{kind}: {out}"
            );
            assert!(out.contains(r#""needs_reindex":true"#), "{kind}: {out}");
            assert!(out.contains(r#""verified":true"#), "{kind}: {out}");
            assert_eq!(std::fs::read_to_string(&json).unwrap(), out);
        }
        // A pure no-op stream: nothing applied, no reindex needed.
        std::fs::write(&ops, "+ 0 1\n").unwrap();
        let out = run_to_string(&["update", "--input", &path, "--ops", &ops]).unwrap();
        assert!(out.contains(r#""applied":0"#), "{out}");
        assert!(out.contains(r#""needs_reindex":false"#), "{out}");
        // --out round-trips the mutated edge list.
        std::fs::write(&ops, "- 0 1\n").unwrap();
        let mutated = tmp("update-mutated.txt");
        run_to_string(&["update", "--input", &path, "--ops", &ops, "--out", &mutated]).unwrap();
        let g2 = io::read_edge_list_file(&mutated).unwrap();
        assert_eq!(g2.m(), nucleus_gen::karate::karate_club().m() - 1);
        for f in [&path, &ops, &json, &mutated] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn mutable_serve_round_trip_through_the_cli_surface() {
        let path = tmp("mserve-src.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let addr_file = tmp("mserve-addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let server = {
            let argv: Vec<String> = [
                "serve",
                "--graph",
                &path,
                "--kind",
                "truss",
                "--mutable",
                "--port",
                "0",
                "--workers",
                "2",
                "--addr-file",
                &addr_file,
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                run(argv, &mut buf).unwrap();
                String::from_utf8(buf).unwrap()
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&addr_file) {
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote {addr_file}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let q = run_to_string(&["query", "--connect", &addr, "--type", "stats"]).unwrap();
        assert!(q.contains(r#""epoch":0"#), "got: {q}");
        assert!(q.contains(r#""mutable":true"#), "got: {q}");
        let q = run_to_string(&[
            "query",
            "--connect",
            &addr,
            "--request",
            r#"{"query":"mutate","ops":[["+",0,33],["-",0,1]]}"#,
        ])
        .unwrap();
        assert!(q.contains(r#""applied":2"#), "got: {q}");
        assert!(q.contains(r#""epoch":1"#), "got: {q}");
        let q = run_to_string(&["query", "--connect", &addr, "--type", "stats"]).unwrap();
        assert!(q.contains(r#""epoch":1"#), "got: {q}");
        let q = run_to_string(&[
            "query",
            "--connect",
            &addr,
            "--request",
            r#"{"query":"shutdown"}"#,
        ])
        .unwrap();
        assert!(q.contains("stopping"), "got: {q}");
        let served = server.join().unwrap();
        assert!(served.contains("mutable, epoch 0"), "got: {served}");
        assert!(served.contains("mutate: 1"), "got: {served}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&addr_file).ok();
    }

    #[test]
    fn mutable_serve_rejects_an_index() {
        let err = run_to_string(&[
            "serve",
            "--graph",
            "x.txt",
            "--index",
            "x.nidx",
            "--mutable",
        ])
        .unwrap_err();
        assert!(err.contains("--mutable conflicts with --index"), "{err}");
    }

    #[test]
    fn prepare_then_decompose_with_index() {
        let path = tmp("persist-src.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let idx = tmp("persist.nidx");
        let out = run_to_string(&[
            "prepare", "--input", &path, "--kind", "truss", "--out", &idx,
        ])
        .unwrap();
        assert!(out.contains("truss"), "got: {out}");
        assert!(out.contains("cells"), "got: {out}");

        // --index without --kind: the family comes from the file
        let via_index = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--index",
            &idx,
            "--algo",
            "dft",
        ])
        .unwrap();
        assert!(via_index.contains("[materialized]"), "got: {via_index}");
        let fresh = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--kind",
            "truss",
            "--algo",
            "dft",
        ])
        .unwrap();
        let tree = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(tree(&via_index), tree(&fresh));

        // --explain on an indexed run names the load as the reason
        let explained =
            run_to_string(&["decompose", "--input", &path, "--index", &idx, "--explain"]).unwrap();
        assert!(explained.contains("loaded index"), "got: {explained}");

        // an agreeing --kind is fine, a conflicting one is an error
        run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--index",
            &idx,
            "--kind",
            "truss",
        ])
        .unwrap();
        let err = run_to_string(&[
            "decompose",
            "--input",
            &path,
            "--index",
            &idx,
            "--kind",
            "core",
        ])
        .unwrap_err();
        assert!(err.contains("conflicts"), "got: {err}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&idx).ok();
    }

    #[test]
    fn index_for_a_different_graph_is_rejected() {
        let path = tmp("persist-a.txt");
        run_to_string(&["generate", "--model", "karate", "--out", &path]).unwrap();
        let idx = tmp("persist-a.nidx");
        run_to_string(&[
            "prepare", "--input", &path, "--kind", "truss", "--out", &idx,
        ])
        .unwrap();
        let other = tmp("persist-b.txt");
        run_to_string(&[
            "generate", "--model", "er", "--n", "50", "--p", "0.2", "--out", &other,
        ])
        .unwrap();
        let err = run_to_string(&["decompose", "--input", &other, "--index", &idx]).unwrap_err();
        assert!(err.contains("does not match"), "got: {err}");
        // corrupt bytes surface the typed corrupt message, not a panic
        let mut bytes = std::fs::read(&idx).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let bad = tmp("persist-bad.nidx");
        std::fs::write(&bad, &bytes).unwrap();
        let err = run_to_string(&["decompose", "--input", &path, "--index", &bad]).unwrap_err();
        assert!(err.contains("corrupt"), "got: {err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&other).ok();
        std::fs::remove_file(&idx).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn flag_parsing_errors_are_reported() {
        assert!(run_to_string(&["decompose", "--input"]).is_err());
        assert!(run_to_string(&["decompose", "badflag"]).is_err());
        let out = run_to_string(&["decompose", "--kind", "core"]);
        assert!(out.is_err()); // missing --input
    }
}
