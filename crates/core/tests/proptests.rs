//! Property tests: all hierarchy algorithms agree with each other, with
//! the brute-force definitions, and with the paper's invariants — on
//! arbitrary random graphs.

use proptest::prelude::*;

use nucleus_core::algo::dft::dft;
use nucleus_core::algo::fnd::{fnd, fnd_parallel_with, FndOptions};
use nucleus_core::algo::lcps::lcps;
use nucleus_core::algo::naive::naive;
use nucleus_core::algo::tcp::{tcp_query, TcpIndex};
use nucleus_core::decompose::{
    decompose_with, Algorithm, Backend, DecomposeOptions, Kind, PeelEngine,
};
use nucleus_core::peel::{peel, peel_parallel_with, peel_reference, FrontierOptions};
use nucleus_core::persist::PreparedIndex;
use nucleus_core::session::Nucleus;
use nucleus_core::space::{
    EdgeK4Space, EdgeSpace, MaterializedSpace, PeelBackend, PeelSpace, TriangleSpace, VertexSpace,
    VertexTriangleSpace,
};
use nucleus_core::validate::check_semantics;
use nucleus_graph::CsrGraph;

/// Pins every parallel prepare-phase builder to its serial twin,
/// bit-for-bit, at 1, 2 and 8 worker threads:
///
/// * triangle enumeration ([`TriangleList::build_with_threads`]) and the
///   edge→thirds index ([`TriangleIndex::build_with_threads`]) — the
///   shared substrate of the (1,3), (2,3), (2,4) and (3,4) spaces;
/// * the per-family ω-degree kernels (edge supports, per-vertex triangle
///   counts, per-edge K4 degrees) that feed the peeling engines;
/// * the whole prepared pipeline: `prepare` → FND at every thread count
///   must produce identical λ and an identical hierarchy for all five
///   kinds (the frontier engine is pinned so the peel itself is the
///   thread-count-invariant one; `check_engine_equivalence` separately
///   forces the parallel `build_hierarchy` path via
///   `min_parallel_work: 0`).
fn check_prepare_equivalence(g: &CsrGraph) {
    use nucleus_cliques::triangles::edge_supports;
    use nucleus_cliques::{
        k4_edge_degrees, k4_edge_degrees_parallel, vertex_triangle_counts,
        vertex_triangle_counts_parallel, TriangleIndex, TriangleList,
    };
    let tris = TriangleList::build(g);
    let index = TriangleIndex::build(g, &tris);
    let vtc = vertex_triangle_counts(g);
    let k4d = k4_edge_degrees(g, &index);
    let supports = edge_supports(g);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            tris,
            TriangleList::build_with_threads(g, threads),
            "TriangleList at t={threads}"
        );
        assert_eq!(
            index,
            TriangleIndex::build_with_threads(g, &tris, threads),
            "TriangleIndex at t={threads}"
        );
        if threads > 1 {
            assert_eq!(
                vtc,
                vertex_triangle_counts_parallel(g, threads),
                "vertex triangle counts at t={threads}"
            );
            assert_eq!(
                k4d,
                k4_edge_degrees_parallel(g, &index, threads),
                "K4 edge degrees at t={threads}"
            );
            assert_eq!(
                supports,
                nucleus_cliques::parallel::edge_supports_parallel(g, threads),
                "edge supports at t={threads}"
            );
        }
    }
    for kind in Kind::all() {
        let options = DecomposeOptions {
            engine: PeelEngine::Frontier,
            threads: 1,
            ..DecomposeOptions::default()
        };
        let base = Nucleus::builder(g)
            .kind(kind)
            .options(options)
            .prepare()
            .expect("prepare t=1");
        let fnd_base = base.run(Algorithm::Fnd).expect("FND t=1");
        for threads in [2usize, 8] {
            let p = Nucleus::builder(g)
                .kind(kind)
                .options(DecomposeOptions { threads, ..options })
                .prepare()
                .unwrap_or_else(|e| panic!("prepare {kind} t={threads}: {e}"));
            let out = p.run(Algorithm::Fnd).expect("FND");
            let label = format!("{kind} t={threads}");
            assert_eq!(fnd_base.peeling.lambda, out.peeling.lambda, "λ at {label}");
            assert_eq!(
                fnd_base.peeling.order, out.peeling.order,
                "order at {label}"
            );
            assert_eq!(fnd_base.hierarchy, out.hierarchy, "hierarchy at {label}");
        }
    }
}

/// Random graph strategy: up to `n_max` vertices, arbitrary edge subset.
fn graph_strategy(n_max: u32, m_max: usize) -> impl Strategy<Value = CsrGraph> {
    (2..=n_max).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=m_max)
            .prop_map(move |edges| CsrGraph::from_edges(n as usize, &edges))
    })
}

fn check_space_agreement<S: PeelSpace>(space: &S) {
    let p = peel(space);
    // 1. peeling matches the literal definition
    assert_eq!(p.lambda, peel_reference(space), "λ vs brute force");
    // 2. all algorithms produce the identical canonical hierarchy
    let h_naive = naive(space, &p);
    let (h_dft, _) = dft(space, &p);
    let out = fnd(space);
    assert_eq!(out.peeling.lambda, p.lambda, "FND λ");
    assert_eq!(h_naive, h_dft, "naive vs dft");
    assert_eq!(h_dft, out.hierarchy, "dft vs fnd");
    // 3. structural + semantic invariants
    h_dft.validate().expect("structural");
    check_semantics(space, &h_dft).expect("semantic");
}

/// Pins the materialized backend to the lazy one: identical ω degrees,
/// identical peeling (λ **and** processing order — the flat index must
/// replay the lazy enumeration order exactly), and identical FND
/// hierarchies, for any space.
fn check_backend_equivalence<S: PeelSpace + Sync>(space: &S) {
    for threads in [1, 3] {
        let mat = MaterializedSpace::with_threads(space, threads);
        assert_eq!(space.degrees(), mat.degrees(), "ω degrees");
        let lazy_peel = peel(space);
        let mat_peel = peel(&mat);
        assert_eq!(lazy_peel.lambda, mat_peel.lambda, "λ");
        assert_eq!(lazy_peel.order, mat_peel.order, "peeling order");
        let lazy_fnd = fnd(space);
        let mat_fnd = fnd(&mat);
        assert_eq!(lazy_fnd.hierarchy, mat_fnd.hierarchy, "FND hierarchy");
        check_semantics(&mat, &mat_fnd.hierarchy).expect("materialized semantics");
    }
}

/// Pins the frontier-parallel engine to the serial one on any space, at
/// 1, 2 and 8 threads with the spawn path forced (`min_parallel_work:
/// 0`) and with the hybrid drain both disabled (`0`) and aggressive
/// (`3` — most rounds on these small graphs fall below it), checking
/// everything downstream consumers rely on: identical λ, a λ-monotone
/// permutation order that is identical across thread counts, and
/// identical DFT *and* parallel-FND hierarchies built on top.
fn check_engine_equivalence<S: PeelSpace + Sync>(space: &S) {
    let serial = peel(space);
    let mat = MaterializedSpace::with_threads(space, 2);
    // thread-count-invariant references, computed once
    let (h_serial, _) = dft(&mat, &serial);
    let h_fnd = fnd(space).hierarchy;
    for serial_round_threshold in [0usize, 3] {
        let mut orders: Vec<Vec<u32>> = vec![];
        for threads in [1usize, 2, 8] {
            let options = FrontierOptions {
                threads,
                min_parallel_work: 0,
                serial_round_threshold,
            };
            let label = format!("{threads} threads, drain below {serial_round_threshold}");
            let par = peel_parallel_with(&mat, options);
            assert_eq!(par.lambda, serial.lambda, "λ at {label}");
            assert_eq!(par.max_lambda, serial.max_lambda, "max λ");
            // the order is a λ-monotone permutation of all cells
            let mut last = 0u32;
            for &c in &par.order {
                assert!(par.lambda_of(c) >= last, "λ-monotone order");
                last = par.lambda_of(c);
            }
            let mut sorted = par.order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..space.cell_count() as u32).collect::<Vec<_>>());
            // the DFT hierarchy over the parallel order matches the
            // serial one
            let (h_par, _) = dft(&mat, &par);
            assert_eq!(h_serial, h_par, "DFT hierarchy at {label}");
            // parallel FND under the same engine options: same λ, same
            // emitted order as the plain frontier peel, and a hierarchy
            // bit-identical to serial FND
            let par_fnd = fnd_parallel_with(&mat, FndOptions::default(), options);
            assert_eq!(par_fnd.peeling.lambda, serial.lambda, "FND λ at {label}");
            assert_eq!(par_fnd.peeling.order, par.order, "FND order at {label}");
            assert_eq!(h_fnd, par_fnd.hierarchy, "FND hierarchy at {label}");
            orders.push(par.order);
        }
        // deterministic: the emitted order is thread-count independent
        // (it may legitimately differ across drain thresholds)
        assert!(orders.windows(2).all(|w| w[0] == w[1]), "order determinism");
    }
}

/// Pins the prepared-pipeline API to the one-shot `decompose_with` for
/// one kind, across every backend × engine × algorithm combination:
///
/// * when the one-shot call succeeds, the session produces bit-identical
///   λ, peeling order and hierarchy, and resolves the same backend and
///   engine (exception: LCPS one-shots always prepare lazily by design,
///   so only the results are compared there);
/// * a **second** `run` on the same `Prepared` reproduces the first one
///   exactly — reuse does not corrupt the cached space or index;
/// * when the one-shot call rejects the combination, the session
///   rejects it too, with the same `CoreError` variant (at `prepare`
///   for algorithm-independent conflicts, at `run` otherwise).
fn check_session_equivalence(g: &CsrGraph, kind: Kind) {
    for backend in [Backend::Lazy, Backend::Materialized, Backend::Auto] {
        for engine in [PeelEngine::Serial, PeelEngine::Frontier] {
            let options = DecomposeOptions {
                backend,
                engine,
                threads: 2,
                ..DecomposeOptions::default()
            };
            let prepared = Nucleus::builder(g).kind(kind).options(options).prepare();
            for &algo in Algorithm::for_kind(kind) {
                let label = format!("{kind}/{algo}/{backend}/{engine}");
                let one_shot = decompose_with(g, kind, algo, options);
                match (&one_shot, &prepared) {
                    (Ok(old), Ok(p)) => {
                        let new = p.run(algo).expect(&label);
                        assert_eq!(old.peeling.lambda, new.peeling.lambda, "{label} λ");
                        assert_eq!(old.peeling.order, new.peeling.order, "{label} order");
                        assert_eq!(old.hierarchy, new.hierarchy, "{label} hierarchy");
                        if algo != Algorithm::Lcps {
                            assert_eq!(old.backend, new.backend, "{label} backend");
                            assert_eq!(old.engine, new.engine, "{label} engine");
                        }
                        // rerun on the same session: identical again
                        let again = p.run(algo).expect(&label);
                        assert_eq!(new.peeling.lambda, again.peeling.lambda, "{label} reuse λ");
                        assert_eq!(
                            new.peeling.order, again.peeling.order,
                            "{label} reuse order"
                        );
                        assert_eq!(new.hierarchy, again.hierarchy, "{label} reuse hierarchy");
                    }
                    (Err(old), Ok(p)) => {
                        // algorithm-dependent conflict: surfaces at run,
                        // same error variant as the one-shot path
                        let new = p.run(algo).expect_err(&label);
                        assert_eq!(
                            std::mem::discriminant(old),
                            std::mem::discriminant(&new),
                            "{label}: one-shot {old} vs session {new}"
                        );
                    }
                    (old, Err(_)) => {
                        // prepare-time conflict (frontier × lazy): the
                        // one-shot path must reject every algorithm too
                        assert!(old.is_err(), "{label}: session rejected, one-shot ran");
                    }
                }
            }
            // the Hypo baseline agrees on component counts whenever the
            // backend combination is expressible at all
            if let Ok(p) = &prepared {
                let (_, comps) = p.hypo_baseline();
                let (_, old) = nucleus_core::decompose::hypo_baseline_with(g, kind, options);
                assert_eq!(comps, old, "{kind}/{backend}/{engine} hypo components");
            }
        }
    }
}

/// Pins the persisted-index path to the in-memory one: `save` → `load`
/// → `prepare_from_index` → `run` yields bit-identical λ, peeling order
/// and hierarchy for every algorithm of the kind, vs the `Prepared`
/// the index was saved from. Every byte of the λ/order/hierarchy
/// equality flows through the on-disk format, so any encode/decode
/// asymmetry fails loudly here.
fn check_persist_round_trip(g: &CsrGraph, kind: Kind) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("nucleus-persist-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{}-{}-{}.nidx",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
        kind.name(),
    ));
    let prepared = Nucleus::builder(g)
        .kind(kind)
        .backend(Backend::Materialized)
        .threads(2)
        .prepare()
        .expect("prepare");
    prepared.save(&path).expect("save");
    let index = PreparedIndex::load(&path).expect("load");
    assert_eq!(index.kind(), kind, "stored kind");
    assert_eq!(index.cells(), prepared.cells(), "stored cell count");
    let restored = Nucleus::builder(g)
        .threads(2)
        .prepare_from_index(index)
        .expect("prepare_from_index");
    for &algo in Algorithm::for_kind(kind) {
        let label = format!("{kind}/{algo}");
        let fresh = prepared.run(algo).expect(&label);
        let loaded = restored.run(algo).expect(&label);
        assert_eq!(fresh.peeling.lambda, loaded.peeling.lambda, "{label} λ");
        assert_eq!(fresh.peeling.order, loaded.peeling.order, "{label} order");
        assert_eq!(fresh.hierarchy, loaded.hierarchy, "{label} hierarchy");
    }
    std::fs::remove_file(&path).ok();
}

/// Deterministic multi-model coverage for the persist round trip: one
/// Erdős–Rényi and one Barabási–Albert graph across all five families
/// (the proptests below cover adversarial random graphs).
#[test]
fn persist_round_trip_on_er_and_ba_models() {
    let er = nucleus_gen::er::gnp(80, 0.08, 5);
    let ba = nucleus_gen::ba::barabasi_albert(100, 3, 5);
    for g in [&er, &ba] {
        for kind in Kind::all() {
            check_persist_round_trip(g, kind);
        }
    }
}

/// Deterministic multi-model coverage for the session equivalence: one
/// Erdős–Rényi and one Barabási–Albert graph across all five families.
#[test]
fn session_equivalence_on_er_and_ba_models() {
    let er = nucleus_gen::er::gnp(80, 0.08, 5);
    let ba = nucleus_gen::ba::barabasi_albert(100, 3, 5);
    for g in [&er, &ba] {
        for kind in Kind::all() {
            check_session_equivalence(g, kind);
        }
    }
}

/// Deterministic multi-model coverage for the prepare-phase
/// equivalence: one Erdős–Rényi and one Barabási–Albert graph, dense
/// enough that every builder has real triangles and K4s to enumerate.
#[test]
fn prepare_equivalence_on_er_and_ba_models() {
    let er = nucleus_gen::er::gnp(80, 0.1, 7);
    let ba = nucleus_gen::ba::barabasi_albert(100, 4, 7);
    for g in [&er, &ba] {
        check_prepare_equivalence(g);
    }
}

/// Deterministic multi-model coverage for the engine equivalence: one
/// Erdős–Rényi and one Barabási–Albert graph per space family (the
/// proptests below cover the adversarial random cases).
#[test]
fn engine_equivalence_on_er_and_ba_models() {
    let er = nucleus_gen::er::gnp(120, 0.08, 3);
    let ba = nucleus_gen::ba::barabasi_albert(150, 4, 3);
    for g in [&er, &ba] {
        check_engine_equivalence(&VertexSpace::new(g));
        check_engine_equivalence(&EdgeSpace::new(g));
        check_engine_equivalence(&TriangleSpace::new(g));
        check_engine_equivalence(&VertexTriangleSpace::new(g));
        check_engine_equivalence(&EdgeK4Space::new(g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_equivalence_core(g in graph_strategy(24, 80)) {
        check_engine_equivalence(&VertexSpace::new(&g));
    }

    #[test]
    fn engine_equivalence_truss(g in graph_strategy(16, 60)) {
        check_engine_equivalence(&EdgeSpace::new(&g));
    }

    #[test]
    fn engine_equivalence_nucleus34(g in graph_strategy(12, 50)) {
        check_engine_equivalence(&TriangleSpace::new(&g));
    }

    #[test]
    fn engine_equivalence_vertex_triangle(g in graph_strategy(14, 50)) {
        check_engine_equivalence(&VertexTriangleSpace::new(&g));
    }

    #[test]
    fn engine_equivalence_edge_k4(g in graph_strategy(10, 40)) {
        check_engine_equivalence(&EdgeK4Space::new(&g));
    }

    #[test]
    fn prepare_equivalence(g in graph_strategy(14, 55)) {
        check_prepare_equivalence(&g);
    }

    #[test]
    fn persist_round_trip_core(g in graph_strategy(20, 70)) {
        check_persist_round_trip(&g, Kind::Core);
    }

    #[test]
    fn persist_round_trip_vertex_triangle(g in graph_strategy(14, 50)) {
        check_persist_round_trip(&g, Kind::VertexTriangle);
    }

    #[test]
    fn persist_round_trip_truss(g in graph_strategy(14, 55)) {
        check_persist_round_trip(&g, Kind::Truss);
    }

    #[test]
    fn persist_round_trip_edge_k4(g in graph_strategy(10, 40)) {
        check_persist_round_trip(&g, Kind::EdgeK4);
    }

    #[test]
    fn persist_round_trip_nucleus34(g in graph_strategy(12, 50)) {
        check_persist_round_trip(&g, Kind::Nucleus34);
    }

    #[test]
    fn session_equivalence_core(g in graph_strategy(20, 70)) {
        check_session_equivalence(&g, Kind::Core);
    }

    #[test]
    fn session_equivalence_vertex_triangle(g in graph_strategy(14, 50)) {
        check_session_equivalence(&g, Kind::VertexTriangle);
    }

    #[test]
    fn session_equivalence_truss(g in graph_strategy(14, 55)) {
        check_session_equivalence(&g, Kind::Truss);
    }

    #[test]
    fn session_equivalence_edge_k4(g in graph_strategy(10, 40)) {
        check_session_equivalence(&g, Kind::EdgeK4);
    }

    #[test]
    fn session_equivalence_nucleus34(g in graph_strategy(12, 50)) {
        check_session_equivalence(&g, Kind::Nucleus34);
    }

    #[test]
    fn backend_equivalence_core(g in graph_strategy(24, 80)) {
        check_backend_equivalence(&VertexSpace::new(&g));
    }

    #[test]
    fn backend_equivalence_truss(g in graph_strategy(16, 60)) {
        check_backend_equivalence(&EdgeSpace::new(&g));
    }

    #[test]
    fn backend_equivalence_nucleus34(g in graph_strategy(12, 50)) {
        check_backend_equivalence(&TriangleSpace::new(&g));
    }

    #[test]
    fn backend_equivalence_vertex_triangle(g in graph_strategy(14, 50)) {
        check_backend_equivalence(&VertexTriangleSpace::new(&g));
    }

    #[test]
    fn backend_equivalence_edge_k4(g in graph_strategy(10, 40)) {
        check_backend_equivalence(&EdgeK4Space::new(&g));
    }

    #[test]
    fn algorithms_agree_on_core(g in graph_strategy(24, 80)) {
        let vs = VertexSpace::new(&g);
        check_space_agreement(&vs);
        // LCPS too (k-core only)
        let p = peel(&vs);
        let h_lcps = lcps(&g, &p);
        let (h_dft, _) = dft(&vs, &p);
        prop_assert_eq!(h_lcps, h_dft);
    }

    #[test]
    fn algorithms_agree_on_truss(g in graph_strategy(16, 60)) {
        check_space_agreement(&EdgeSpace::new(&g));
    }

    #[test]
    fn algorithms_agree_on_nucleus34(g in graph_strategy(12, 50)) {
        check_space_agreement(&TriangleSpace::new(&g));
    }

    #[test]
    fn tcp_queries_match_hierarchy(g in graph_strategy(12, 40)) {
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        let idx = TcpIndex::build(&g, &truss);
        let (h, _) = dft(&es, &truss);
        for k in 1..=h.max_lambda() {
            for node in h.nuclei_at(k) {
                let mut cells = h.nucleus_cells(node);
                cells.sort_unstable();
                let (u, v) = g.endpoints(cells[0]);
                let got = tcp_query(&g, &truss, &idx, u, v, k).expect("community exists");
                prop_assert_eq!(&got, &cells, "k={} node={}", k, node);
            }
        }
    }

    #[test]
    fn hierarchy_partitions_cells(g in graph_strategy(20, 70)) {
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        // every cell appears in exactly one delta, at its own λ
        let mut seen = vec![0u32; g.n()];
        for node in h.nodes() {
            for &c in &node.cells {
                seen[c as usize] += 1;
                prop_assert_eq!(p.lambda_of(c), node.lambda);
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    #[allow(deprecated)]
    fn dynamic_cores_track_recompute(
        n in 4u32..20,
        ops in proptest::collection::vec((0u32..20, 0u32..20, prop::bool::ANY), 1..60),
    ) {
        let mut dc = nucleus_core::maintenance::DynamicCores::with_vertices(n as usize);
        for (a, b, insert) in ops {
            let (a, b) = (a % n, b % n);
            if insert {
                dc.insert_edge(a, b);
            } else {
                dc.remove_edge(a, b);
            }
            let g = dc.to_graph();
            let expect = peel(&VertexSpace::new(&g)).lambda;
            prop_assert_eq!(dc.core_numbers(), expect.as_slice());
        }
    }

    #[test]
    fn weighted_cores_with_unit_weights_match_plain(g in graph_strategy(20, 60)) {
        let weights = vec![1u64; g.m()];
        let wl = nucleus_core::weighted::weighted_core_numbers(&g, &weights);
        let plain = peel(&VertexSpace::new(&g)).lambda;
        let expect: Vec<u64> = plain.iter().map(|&l| l as u64).collect();
        prop_assert_eq!(wl, expect);
    }

    #[test]
    fn weighted_hierarchy_is_valid_for_random_weights(
        g in graph_strategy(14, 40),
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let weights: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..5u64)).collect();
        let wd = nucleus_core::weighted::weighted_core_decomposition(&g, &weights);
        prop_assert!(wd.hierarchy.validate().is_ok());
        // deepest nuclei have the largest threshold
        if let Some(&last) = wd.levels.last() {
            let top = wd.hierarchy.nuclei_at(wd.hierarchy.max_lambda());
            for id in top {
                prop_assert_eq!(wd.threshold(id), last);
            }
        }
    }

    #[test]
    fn nuclei_are_nested(g in graph_strategy(20, 70)) {
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        // For every k, the union of k-nuclei is exactly {cells: λ ≥ k},
        // and each (k+1)-nucleus is contained in exactly one k-nucleus.
        for k in 1..=h.max_lambda() {
            let mut union: Vec<u32> = vec![];
            for id in h.nuclei_at(k) {
                union.extend(h.nucleus_cells(id));
            }
            union.sort_unstable();
            let expect: Vec<u32> = (0..g.n() as u32).filter(|&c| p.lambda_of(c) >= k).collect();
            prop_assert_eq!(union, expect, "level {}", k);
        }
    }
}
