//! Adversarial tests for the persisted-index loader: every way the
//! bytes can be wrong — truncated, bit-flipped, mislabeled, stale —
//! must surface as a *typed* [`CoreError`], never a panic and never a
//! silently wrong index. The whole-file checksum makes most of these
//! deterministic: any byte change is caught.

use nucleus_core::decompose::{Algorithm, Backend, Kind};
use nucleus_core::error::CoreError;
use nucleus_core::persist::PreparedIndex;
use nucleus_core::session::Nucleus;
use nucleus_graph::persist_io::{hash64, FILE_HASH_RANGE};
use nucleus_graph::CsrGraph;
use rand::{Rng, SeedableRng};

/// A valid index image for the karate club's (2,3) space, produced
/// through the real save path.
fn valid_image(kind: Kind) -> (CsrGraph, Vec<u8>) {
    let g = nucleus_gen::karate::karate_club();
    let dir = std::env::temp_dir().join("nucleus-persist-adversarial");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{}.nidx", std::process::id(), kind.name()));
    Nucleus::builder(&g)
        .kind(kind)
        .backend(Backend::Materialized)
        .prepare()
        .unwrap()
        .save(&path)
        .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (g, bytes)
}

/// Recomputes and re-stamps the whole-file hash, so a test can tamper
/// with a *specific* field and still get past the checksum — proving
/// the field's own validation (not just the hash) catches it.
fn reseal(bytes: &mut [u8]) {
    bytes[FILE_HASH_RANGE].fill(0);
    let h = hash64(bytes);
    bytes[FILE_HASH_RANGE].copy_from_slice(&h.to_le_bytes());
}

fn expect_corrupt(bytes: Vec<u8>, what: &str) {
    match PreparedIndex::from_bytes(bytes, "test-image") {
        Err(CoreError::IndexCorrupt { .. }) => {}
        Err(other) => panic!("{what}: expected IndexCorrupt, got {other}"),
        Ok(_) => panic!("{what}: corrupt image was accepted"),
    }
}

#[test]
fn valid_image_loads_for_every_kind() {
    for kind in Kind::all() {
        let (g, bytes) = valid_image(kind);
        let index = PreparedIndex::from_bytes(bytes, "valid").unwrap();
        assert_eq!(index.kind(), kind);
        index.matches(&g).unwrap();
        let restored = Nucleus::builder(&g).prepare_from_index(index).unwrap();
        assert!(restored.run(Algorithm::Dft).is_ok(), "{kind}");
    }
}

#[test]
fn wrong_magic_is_corrupt() {
    let (_, mut bytes) = valid_image(Kind::Truss);
    bytes[0..4].copy_from_slice(b"NOPE");
    reseal(&mut bytes);
    expect_corrupt(bytes, "wrong magic");
}

#[test]
fn future_version_is_corrupt_and_names_the_version() {
    let (_, mut bytes) = valid_image(Kind::Truss);
    bytes[16..20].copy_from_slice(&2u32.to_le_bytes());
    reseal(&mut bytes);
    match PreparedIndex::from_bytes(bytes, "future") {
        Err(CoreError::IndexCorrupt { reason, .. }) => {
            assert!(reason.contains("version"), "{reason}");
        }
        other => panic!("expected IndexCorrupt naming the version, got {other:?}"),
    }
}

#[test]
fn every_truncation_is_rejected() {
    let (_, bytes) = valid_image(Kind::Truss);
    for len in 0..bytes.len() {
        expect_corrupt(bytes[..len].to_vec(), &format!("truncated to {len}"));
    }
}

#[test]
fn every_flipped_byte_is_rejected() {
    // One image per kind keeps this affordable while covering all five
    // section layouts (arity 1 through 5).
    for kind in [Kind::Core, Kind::Truss, Kind::EdgeK4] {
        let (_, bytes) = valid_image(kind);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            expect_corrupt(bad, &format!("{kind}: flipped byte {i}"));
        }
    }
}

#[test]
fn resealed_section_tampering_is_still_caught() {
    // Flip a data byte AND fix the whole-file hash: the per-section
    // checksum must catch it on its own.
    let (_, mut bytes) = valid_image(Kind::Truss);
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    reseal(&mut bytes);
    expect_corrupt(bytes, "resealed data flip");
}

#[test]
fn fingerprint_mismatch_is_typed_not_silent() {
    let (g, bytes) = valid_image(Kind::Truss);
    let index = PreparedIndex::from_bytes(bytes, "stale").unwrap();

    // Graph edited after save: one more edge.
    let mut edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
    edges.push((0, 9));
    edges.sort_unstable();
    edges.dedup();
    let grown = CsrGraph::from_edges(g.n(), &edges);
    let err = index.matches(&grown).unwrap_err();
    assert!(matches!(err, CoreError::IndexMismatch { .. }), "{err}");

    // Same n and m, different degree sequence: a rewired edge.
    let mut rewired: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
    let pos = rewired
        .iter()
        .position(|&(u, v)| (u, v) == (0, 1))
        .expect("karate has edge (0,1)");
    rewired[pos] = (26, 28);
    let moved = CsrGraph::from_edges(g.n(), &rewired);
    assert_eq!(moved.n(), g.n());
    assert_eq!(moved.m(), g.m());
    let err = index.matches(&moved).unwrap_err();
    match err {
        CoreError::IndexMismatch { reason, .. } => {
            assert!(reason.contains("degree"), "{reason}");
        }
        other => panic!("expected IndexMismatch on the degree hash, got {other}"),
    }

    let err = Nucleus::builder(&grown)
        .prepare_from_index(index)
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn swapped_family_header_is_rejected() {
    // Claim a (1,2) index is (2,3): arity 1 contradicts the truss
    // family's record width even after resealing every checksum.
    let (_, mut bytes) = valid_image(Kind::Core);
    bytes[20..24].copy_from_slice(&2u32.to_le_bytes());
    bytes[24..28].copy_from_slice(&3u32.to_le_bytes());
    reseal(&mut bytes);
    expect_corrupt(bytes, "family/arity contradiction");
}

#[test]
fn unsupported_family_is_a_mismatch() {
    // (2,5) is a coherent header (arity C(5,2)-1 = 9 > MAX_ARITY, so
    // use (1,4): arity 3) but names no supported kind.
    let (_, mut bytes) = valid_image(Kind::Nucleus34);
    bytes[20..24].copy_from_slice(&1u32.to_le_bytes());
    bytes[24..28].copy_from_slice(&4u32.to_le_bytes());
    reseal(&mut bytes);
    match PreparedIndex::from_bytes(bytes, "alien family") {
        Err(CoreError::IndexMismatch { reason, .. }) => {
            assert!(reason.contains("not a supported kind"), "{reason}");
        }
        other => panic!("expected IndexMismatch, got {other:?}"),
    }
}

/// Byte-level fuzz: random flips, truncations, extensions and zeroed
/// ranges over a valid image. Any mutation that changes the bytes must
/// be rejected with a typed error — and none may panic (a panic fails
/// the test by aborting it).
#[test]
fn fuzzed_mutations_never_panic_and_never_load() {
    let (g, original) = valid_image(Kind::Truss);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    for iter in 0..300 {
        let mut bytes = original.clone();
        let mutations = rng.gen_range(1..4u32);
        for _ in 0..mutations {
            match rng.gen_range(0..4u32) {
                0 if !bytes.is_empty() => {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= rng.gen_range(1..=255u8);
                }
                1 if !bytes.is_empty() => {
                    let keep = rng.gen_range(0..bytes.len());
                    bytes.truncate(keep);
                }
                2 => {
                    let extra = rng.gen_range(1..64usize);
                    bytes.extend((0..extra).map(|_| rng.gen_range(0..=255u8)));
                }
                _ if !bytes.is_empty() => {
                    let start = rng.gen_range(0..bytes.len());
                    let end = (start + rng.gen_range(1..32usize)).min(bytes.len());
                    bytes[start..end].fill(0);
                }
                _ => {}
            }
        }
        let changed = bytes != original;
        match PreparedIndex::from_bytes(bytes, "fuzz") {
            Ok(index) => {
                assert!(
                    !changed,
                    "iteration {iter}: mutated image was accepted as valid"
                );
                // The untouched image must still behave.
                index.matches(&g).unwrap();
            }
            Err(
                CoreError::IndexCorrupt { .. }
                | CoreError::IndexMismatch { .. }
                | CoreError::IndexIo { .. },
            ) => {}
            Err(other) => panic!("iteration {iter}: untyped error {other}"),
        }
    }
}
