#![warn(missing_docs)]

//! # nucleus-core — fast hierarchy construction for dense subgraphs
//!
//! A faithful implementation of *"Fast Hierarchy Construction for Dense
//! Subgraphs"* (Sarıyüce & Pinar, PVLDB 10(3), VLDB 2016): nucleus
//! decompositions — k-core = (1,2), k-truss community = (2,3) and the
//! (3,4) four-clique nuclei — **with the full containment hierarchy**,
//! not just the peeling numbers.
//!
//! ## Glossary (Table 2 of the paper)
//!
//! | symbol | here | meaning |
//! |--------|------|---------|
//! | K_r | *cell* | r-clique being peeled (vertex / edge / triangle) |
//! | K_s | *container* | s-clique providing the degree (edge / triangle / K4) |
//! | ω_s(u) | [`space::PeelBackend::degrees`] | number of containers of cell u |
//! | λ_s(u) | [`peel::Peeling::lambda`] | max k with u in a k-(r,s) nucleus |
//! | k-(r,s) nucleus | [`hierarchy::HierarchyNode`] subtree | maximal, K_s-connected, min ω ≥ k |
//! | T_{r,s} | sub-nucleus | maximal strongly-connected equal-λ cell set |
//! | T*_{r,s} | FND sub-nucleus | possibly non-maximal T (Alg. 8 artifact) |
//!
//! ## Quick start
//!
//! ```
//! use nucleus_core::prelude::*;
//!
//! // two triangles sharing an edge, plus a tail
//! let g = nucleus_graph::CsrGraph::from_edges(
//!     5,
//!     &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)],
//! );
//! let d = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
//! assert_eq!(d.peeling.lambda, vec![2, 2, 2, 2, 1]);
//! // one 1-core spanning everything, one 2-core inside it
//! assert_eq!(d.hierarchy.nuclei_at(1).len(), 1);
//! assert_eq!(d.hierarchy.nuclei_at(2).len(), 1);
//! ```

pub mod algo;
pub mod analytics;
pub mod decompose;
pub mod error;
pub mod export;
pub mod hierarchy;
pub mod maintenance;
pub mod peel;
pub mod persist;
pub mod plan;
pub mod report;
pub mod session;
pub mod skeleton;
pub mod space;
pub mod validate;
pub mod weighted;

#[cfg(test)]
pub(crate) mod test_graphs;

pub use decompose::{
    decompose, decompose_with, hypo_baseline, hypo_baseline_with, Algorithm, Backend,
    DecomposeOptions, Decomposition, Kind, PeelEngine, PhaseTimes,
};
pub use error::CoreError;
pub use hierarchy::{Hierarchy, HierarchyNode};
pub use peel::{
    peel, peel_parallel, peel_parallel_with, peel_with_sink, FrontierOptions, PeelSink, Peeling,
};
pub use persist::PreparedIndex;
pub use plan::Plan;
pub use session::{Nucleus, NucleusBuilder, Prepared};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algo::fnd::{
        build_hierarchy, fnd, fnd_classify, fnd_parallel, fnd_parallel_with, fnd_with_options,
        FndClassified, FndOptions,
    };
    pub use crate::algo::lcps::lcps;
    pub use crate::algo::tcp::{tcp_query, TcpIndex};
    pub use crate::analytics::{skeleton_profile, SkeletonProfile};
    pub use crate::decompose::{
        decompose, decompose_with, hypo_baseline, hypo_baseline_with, Algorithm, Backend,
        DecomposeOptions, Decomposition, Kind, PeelEngine, PhaseTimes,
    };
    pub use crate::export::{extract_nucleus, hierarchy_to_dot, ExtractedSubgraph};
    pub use crate::hierarchy::{Hierarchy, HierarchyNode};
    #[allow(deprecated)]
    pub use crate::maintenance::DynamicCores;
    pub use crate::peel::{
        peel, peel_parallel, peel_parallel_with, peel_with_sink, FrontierOptions, PeelSink, Peeling,
    };
    pub use crate::persist::PreparedIndex;
    pub use crate::plan::Plan;
    pub use crate::report::{describe, nucleus_vertices, render_tree, summarize_nucleus};
    pub use crate::session::{Nucleus, NucleusBuilder, Prepared};
    pub use crate::space::{
        ContainerIndex, EdgeK4Space, EdgeSpace, IndexedSpace, MaterializedSpace, PeelBackend,
        PeelCells, PeelSpace, TriangleSpace, VertexSpace, VertexTriangleSpace,
    };
    pub use crate::weighted::{weighted_core_decomposition, weighted_core_numbers};
}
