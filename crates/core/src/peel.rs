//! The peeling process (`Set-λ`, Algorithm 1 of the paper), in two
//! engines: the classic sequential bucket-queue loop ([`peel`]) and a
//! frontier-parallel variant ([`peel_parallel`]).
//!
//! # The frontier-round invariant
//!
//! Serial `Set-λ` pops one minimum-ω cell at a time. The frontier
//! engine instead processes whole λ-levels in *rounds*: at level `k` it
//! repeatedly collects every unprocessed cell with current ω ≤ k (the
//! **frontier**), assigns them all `λ = k`, and applies their container
//! decrements concurrently (De Zoysa et al. 2021 use the same scheme
//! for shared-memory densest-subgraph peeling). Correctness rests on
//! two facts the serial loop also relies on:
//!
//! 1. **Saturating decrements.** ω is only ever decremented while
//!    strictly above the current level `k` (the `ω(v) > ω(u)` guard of
//!    Alg. 1), so concurrent decrements cannot drag a cell below the
//!    level floor; a cell whose ω reaches `k` mid-round joins the next
//!    frontier of the *same* level and still receives `λ = k` — exactly
//!    the value the serial loop would assign.
//! 2. **One decrement per dead container.** A container dies when its
//!    first member is peeled. Round stamps
//!    ([`crate::space::PeelCells`]) recover the serial accounting: a
//!    container with a member stamped in an *earlier* round is dead and
//!    skipped; among members stamped in the *same* round, only the
//!    smallest cell id applies the container's decrements, so every
//!    dead container decrements each surviving co-cell exactly once.
//!
//! Rounds emit cells in ascending-id order, level by level, so the
//! produced [`Peeling::order`] is **λ-monotone** — the only property
//! DF-Traversal ([`crate::algo::dft`]) needs from a peeling order — and
//! the engine is fully deterministic: λ values equal the serial
//! engine's bit for bit (the decomposition is unique), and the order
//! itself is identical for every thread count, because frontier
//! *membership* is determined at round barriers, not by thread timing.
//!
//! # Hybrid rounds
//!
//! On heavy-tailed (R-MAT-style) inputs, dense cores degenerate into
//! long cascades of tiny frontiers, and per-round overhead (barrier,
//! sort, work-estimate) outweighs the batching win. The engine is
//! therefore hybrid, with two serial fallbacks keyed off
//! [`FrontierOptions::serial_round_threshold`]:
//!
//! * A **mid-level** frontier falling below the threshold drains the
//!   rest of its λ-level through a FIFO worklist over the same packed
//!   cell words — each drained cell gets a fresh, unique round stamp at
//!   discovery, so the stamp order stays a total processed-before order
//!   and every invariant above carries over unchanged.
//! * A λ-level whose **opening** frontier holds less than [an eighth]
//!   of the remaining cells signals the heavy-tail regime: the rest of
//!   the peel is a long ladder of small levels, where both the rounds
//!   *and* the per-level `alive` compaction scan (O(alive) per level)
//!   cost more than the serial loop. The engine then abandons rounds
//!   entirely and **drains the whole residual** through the same
//!   bucket queue the serial engine uses — on R-MAT-style inputs this
//!   fires on the very first level (which opens with ~10% of cells,
//!   vs. 74–99% for ER/BA), while wide-opening inputs never trigger it
//!   and keep the full frontier win. When the *first* level already
//!   opens that narrow, non-classifying sinks (the plain peel) don't
//!   even build the engine's per-cell state: the first frontier's size
//!   falls out of the initial degree-partition scan, and the run is
//!   handed to the serial engine wholesale, making the heavy-tail worst
//!   case cost within a few percent of [`peel`] itself.
//!
//! Both decisions depend only on frontier sizes, never thread timing,
//! so determinism across thread counts is preserved.
//!
//! [an eighth]: RESIDUAL_OPENING_FRACTION
//!
//! # Riding algorithms: the sink seam
//!
//! The driver is generic over a [`PeelSink`]: per peeled cell it hands
//! the sink the container scan, with `(stamp, id)` lexicographic order
//! (the emission order) as the processed-before relation. The plain
//! sink reproduces `Set-λ` decrements; FND
//! ([`crate::algo::fnd::fnd_parallel_with`]) plugs in a classifying
//! sink that additionally unions same-λ cells through a lock-free
//! [`nucleus_dsf::ConcurrentSets`] and records cross-λ adjacencies —
//! which is how Alg. 8, order-sequential in its textbook form, rides
//! the frontier engine: classification per container is independent of
//! *which* λ-monotone serialization the stamps encode, so the level
//! partitions and the canonical hierarchy come out identical to the
//! serial engine's.
//!
//! The frontier engine assumes container enumeration is cheap enough to
//! repeat per round participant — run it over a
//! [`crate::space::MaterializedSpace`] (flat [`ContainerIndex`] scans),
//! which is how [`crate::decompose::PeelEngine::Frontier`] wires it.
//!
//! [`ContainerIndex`]: crate::space::ContainerIndex

use std::cell::Cell;

use nucleus_cliques::balanced_ranges;
use nucleus_graph::bucket::PeelBuckets;

use crate::space::{PeelBackend, PeelCells};

/// Output of the peeling phase: the λ_s value of every cell plus the
/// processing order (non-decreasing in λ — the property both DFT and FND
/// rely on).
#[derive(Clone, Debug)]
pub struct Peeling {
    /// λ_s per cell: the largest k such that the cell lies in a k-(r,s)
    /// nucleus.
    pub lambda: Vec<u32>,
    /// Maximum λ over all cells.
    pub max_lambda: u32,
    /// Cells in processing (peeling) order; λ is non-decreasing along it.
    pub order: Vec<u32>,
}

impl Peeling {
    /// λ of a cell.
    #[inline]
    pub fn lambda_of(&self, cell: u32) -> u32 {
        self.lambda[cell as usize]
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.lambda.len()
    }

    /// Histogram of λ values (index = λ, value = number of cells).
    pub fn lambda_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_lambda as usize + 1];
        for &l in &self.lambda {
            h[l as usize] += 1;
        }
        h
    }
}

/// Runs `Set-λ` (Algorithm 1): repeatedly process an unprocessed cell of
/// minimum ω, assign `λ = ω`, and decrement the ω of unprocessed
/// co-cells in still-alive containers.
///
/// ```
/// use nucleus_core::peel::peel;
/// use nucleus_core::space::{EdgeSpace, VertexSpace};
/// use nucleus_graph::CsrGraph;
///
/// // triangle with a tail: core numbers [2,2,2,1], trussness [1,1,1,0]
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(peel(&VertexSpace::new(&g)).lambda, vec![2, 2, 2, 1]);
/// let truss = peel(&EdgeSpace::new(&g));
/// assert_eq!(truss.max_lambda, 1);
/// assert_eq!(truss.lambda_of(g.edge_id(2, 3).unwrap()), 0);
/// ```
pub fn peel<B: PeelBackend>(space: &B) -> Peeling {
    let degrees = space.degrees();
    peel_serial_with_degrees(space, degrees)
}

/// [`peel`] with the initial ω values already in hand — lets the hybrid
/// engine hand over a `degrees` vector it has computed anyway when it
/// bails to the serial engine wholesale (see [`peel_with_sink`]).
fn peel_serial_with_degrees<B: PeelBackend>(space: &B, degrees: Vec<u32>) -> Peeling {
    let n = space.cell_count();
    let mut q = PeelBuckets::new(degrees);
    let mut lambda = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    while let Some((u, k)) = q.pop_min() {
        lambda[u as usize] = k;
        max_lambda = max_lambda.max(k);
        order.push(u);
        space.for_each_container(u, |others| {
            // A container with an already-processed cell is dead: it was
            // accounted for when that cell was peeled (Alg. 1, line 8).
            if others.iter().any(|&v| q.is_popped(v)) {
                return;
            }
            for &v in others {
                if q.key(v) > k {
                    q.decrement(v);
                }
            }
        });
    }
    Peeling {
        lambda,
        max_lambda,
        order,
    }
}

/// Tuning for [`peel_parallel_with`].
#[derive(Clone, Copy, Debug)]
pub struct FrontierOptions {
    /// Worker threads for frontier rounds. `0` means "all available
    /// CPUs"; `1` never spawns and uses plain (non-CAS) stores.
    pub threads: usize,
    /// Rounds whose total work estimate (Σ 1 + ω₀ over the frontier)
    /// falls below this run inline on the calling thread — spawning
    /// costs more than it buys on small frontiers. Set to `0` to force
    /// every round through the spawn path (the equivalence tests do,
    /// so the concurrent code path is exercised on tiny graphs).
    pub min_parallel_work: usize,
    /// Hybrid fallback: when a mid-level frontier holds fewer cells
    /// than this, the rest of its λ-level drains through a serial FIFO
    /// worklist instead of parallel rounds (see the module docs) —
    /// tiny-frontier cascades cost more in round overhead than they
    /// gain in batching. `0` disables the hybrid fallbacks entirely
    /// (pure frontier rounds), including the whole-residual switch on
    /// narrow *level openings* ([`RESIDUAL_OPENING_FRACTION`]), which
    /// is otherwise relative to the remaining cell count rather than
    /// sized by this threshold. The default (64) is sized so the
    /// drained levels are the ones whose whole cascade is cheaper than
    /// one round's sort-and-restamp machinery.
    pub serial_round_threshold: usize,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            threads: 0,
            min_parallel_work: 1 << 14,
            serial_round_threshold: Self::DEFAULT_SERIAL_ROUND_THRESHOLD,
        }
    }
}

/// Whole-residual switch trigger: when a λ-level *opens* with fewer
/// than `1/RESIDUAL_OPENING_FRACTION` of the cells still unpeeled, the
/// engine abandons rounds and hands everything that remains to a serial
/// bucket queue. Heavy-tailed inputs (R-MAT) open their first level
/// with ~10% of the cells and then decay; wide-opening inputs (ER, BA)
/// open with 70–99%, so the relative test separates the two regimes on
/// the very first level instead of waiting for an absolute frontier
/// size that scales poorly across graph sizes.
pub const RESIDUAL_OPENING_FRACTION: usize = 8;

impl FrontierOptions {
    /// Default [`FrontierOptions::serial_round_threshold`], shared with
    /// [`crate::decompose::DecomposeOptions`] and the CLI flag default.
    pub const DEFAULT_SERIAL_ROUND_THRESHOLD: usize = 64;

    /// The thread count with `0` resolved to the CPU count.
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Frontier-parallel `Set-λ` with default tuning — see the module docs
/// for the round scheme and the invariant that keeps DFT valid on the
/// resulting order. Produces the same λ values as [`peel`] and a
/// λ-monotone order that is deterministic across thread counts (the
/// order differs from the serial engine's within λ levels: rounds emit
/// in ascending cell id, the bucket queue in counting-sort position).
///
/// `threads = 0` uses every available CPU. Drive it through a
/// [`crate::space::MaterializedSpace`] so each round's container scans
/// are flat-array reads:
///
/// ```
/// use nucleus_core::peel::{peel, peel_parallel};
/// use nucleus_core::space::{MaterializedSpace, VertexSpace};
/// use nucleus_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let vs = VertexSpace::new(&g);
/// let m = MaterializedSpace::new(&vs);
/// let p = peel_parallel(&m, 2);
/// assert_eq!(p.lambda, peel(&vs).lambda);
/// ```
pub fn peel_parallel<B: PeelBackend + Sync>(space: &B, threads: usize) -> Peeling {
    peel_parallel_with(
        space,
        FrontierOptions {
            threads,
            ..FrontierOptions::default()
        },
    )
}

/// [`peel_parallel`] with explicit [`FrontierOptions`].
pub fn peel_parallel_with<B: PeelBackend + Sync>(space: &B, options: FrontierOptions) -> Peeling {
    peel_with_sink(space, options, &mut PlainSink)
}

/// What a riding algorithm does with each peeled cell's containers.
///
/// The driver ([`peel_with_sink`]) calls [`scan_cell`] once per peeled
/// cell — from worker threads during parallel rounds, from the calling
/// thread during inline rounds and serial drains — and hands it the
/// processed-before relation as `(stamp, id)` lexicographic order:
/// co-cell `v` precedes `u` iff `stamp(v) < stamp` or
/// `stamp(v) == stamp && v < u` (unpeeled cells carry the
/// [`PeelCells::ALIVE`] sentinel, which sorts last). Whatever the sink
/// wants to keep beyond `next`-frontier membership it accumulates in a
/// per-worker [`Part`], which the driver feeds back through
/// [`absorb_part`] in deterministic (range) order after each round.
///
/// [`scan_cell`]: PeelSink::scan_cell
/// [`Part`]: PeelSink::Part
/// [`absorb_part`]: PeelSink::absorb_part
pub trait PeelSink<B: PeelBackend + ?Sized>: Sync {
    /// Whether [`scan_cell`] consumes the processed-before stamps (and
    /// anything else beyond the `dec` calls and `next` pushes). `true`
    /// for classifying sinks like FND. A sink may set this to `false`
    /// only if `scan_cell`'s entire observable effect is applying
    /// container decrements — the whole-residual hybrid drain then
    /// skips the sink and runs the serial engine's plain bucket loop,
    /// with no stamp maintenance at all.
    ///
    /// [`scan_cell`]: PeelSink::scan_cell
    const CLASSIFIES: bool = true;

    /// Per-worker accumulator, concatenated in range order.
    type Part: Send;

    /// A fresh, empty accumulator.
    fn new_part(&self) -> Self::Part;

    /// Processes the containers of the just-peeled cell `u` (peeled at
    /// λ-level `level` with round stamp `stamp`). `dec` applies the
    /// saturating ω decrement and reports `true` when its target just
    /// dropped to `level` — such cells must be pushed to `next`.
    #[allow(clippy::too_many_arguments)] // internal seam: one impl per algorithm
    fn scan_cell<D: Fn(u32) -> bool>(
        &self,
        space: &B,
        cells: &PeelCells,
        lambda: &[u32],
        u: u32,
        level: u32,
        stamp: u32,
        dec: &D,
        next: &mut Vec<u32>,
        part: &mut Self::Part,
    );

    /// Folds one worker's accumulator back into the sink.
    fn absorb_part(&mut self, part: Self::Part);
}

/// The plain `Set-λ` sink: container decrements only, nothing kept.
struct PlainSink;

impl<B: PeelBackend + ?Sized> PeelSink<B> for PlainSink {
    const CLASSIFIES: bool = false;

    type Part = ();

    fn new_part(&self) {}

    #[inline]
    fn scan_cell<D: Fn(u32) -> bool>(
        &self,
        space: &B,
        cells: &PeelCells,
        _lambda: &[u32],
        u: u32,
        _level: u32,
        stamp: u32,
        dec: &D,
        next: &mut Vec<u32>,
        _part: &mut (),
    ) {
        space.for_each_container(u, |others| {
            for &v in others {
                let s = cells.stamp(v);
                if s < stamp {
                    return; // container died with an earlier cell
                }
                if s == stamp && v < u {
                    return; // same-round co-cell with smaller id owns it
                }
            }
            for &v in others {
                if dec(v) {
                    next.push(v);
                }
            }
        });
    }

    fn absorb_part(&mut self, _part: ()) {}
}

/// The engine core behind [`peel_parallel_with`] and
/// [`crate::algo::fnd::fnd_parallel_with`]: frontier rounds plus the
/// hybrid serial drain, generic over the per-cell [`PeelSink`].
pub fn peel_with_sink<B: PeelBackend + Sync, S: PeelSink<B>>(
    space: &B,
    options: FrontierOptions,
    sink: &mut S,
) -> Peeling {
    let n = space.cell_count();
    let threads = options.effective_threads();
    let degrees = space.degrees();
    let mut lambda = vec![0u32; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    // Zero-container fast path: ω₀ = 0 cells have λ = 0, appear in no
    // record (a co-cell always has ω ≥ 1) and decrement nothing — emit
    // them directly, in the same ascending order the level-0 frontier
    // would produce. Everything else enters the alive list, compacted
    // on every level-opening scan; `k` starts at the smallest live ω.
    // The same pass counts how many cells sit exactly at that minimum —
    // the first λ level's opening frontier, known before any engine
    // state exists.
    let mut alive: Vec<u32> = Vec::with_capacity(n);
    let mut k = u32::MAX;
    let mut first = 0usize;
    for u in 0..n as u32 {
        let d = degrees[u as usize];
        if d == 0 {
            order.push(u);
        } else {
            alive.push(u);
            match d.cmp(&k) {
                std::cmp::Ordering::Less => {
                    k = d;
                    first = 1;
                }
                std::cmp::Ordering::Equal => first += 1,
                std::cmp::Ordering::Greater => {}
            }
        }
    }
    if !S::CLASSIFIES
        && options.serial_round_threshold > 0
        && first * RESIDUAL_OPENING_FRACTION < alive.len()
    {
        // The very first λ level already opens with less than a
        // [`RESIDUAL_OPENING_FRACTION`]th of the live cells: the whole
        // peel is heavy-tail, and every round the engine could run is on
        // the losing side of the residual switch below. For sinks that
        // observe nothing (the plain peel) drop the engine before its
        // per-cell state is even allocated and run the serial engine on
        // the degrees it would have used — free on the path that keeps
        // the engine (the counting rides the partition scan above).
        return peel_serial_with_degrees(space, degrees);
    }
    // Packed (processed-round, live ω) word per cell — one cache-line
    // touch answers both hot-loop questions (see PeelCells).
    let cells = PeelCells::new(&degrees);
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    let mut round = 0u32;
    while order.len() < n {
        // Open level k: pull every alive cell with current ω ≤ k into
        // the frontier (stamping it in the same pass — the packed word
        // is already in hand) and remember the smallest ω above k so
        // empty levels are jumped instead of scanned one by one.
        frontier.clear();
        let mut min_above = u32::MAX;
        alive.retain(|&u| {
            let (stamp, w) = cells.load(u);
            if stamp != PeelCells::ALIVE {
                return false;
            }
            if w <= k {
                cells.mark_with_omega(u, round, w);
                lambda[u as usize] = k;
                frontier.push(u);
                false
            } else {
                min_above = min_above.min(w);
                true
            }
        });
        if frontier.is_empty() {
            debug_assert!(!alive.is_empty(), "cells left but none reachable");
            k = min_above;
            continue;
        }
        if options.serial_round_threshold > 0
            && frontier.len() * RESIDUAL_OPENING_FRACTION < frontier.len() + alive.len()
        {
            // The level opens with a sliver of what remains: heavy-tail
            // regime. Finish the whole peel through the serial bucket
            // queue — no more level-opening scans, no more rounds. (A
            // first level this narrow never reaches here for plain
            // sinks — the pre-flight above already bailed to the serial
            // engine — so this switch serves classifying sinks from the
            // start and every sink once the tail emerges mid-peel.)
            order.extend_from_slice(&frontier);
            max_lambda = k;
            drain_residual(
                space,
                &cells,
                &mut lambda,
                &mut order,
                &mut max_lambda,
                &frontier,
                &alive,
                k,
                round,
                sink,
            );
            debug_assert_eq!(order.len(), n, "residual drain left cells unprocessed");
            break;
        }
        loop {
            order.extend_from_slice(&frontier);
            max_lambda = k;
            if options.serial_round_threshold > 0 && frontier.len() < options.serial_round_threshold
            {
                // Hybrid fallback: this frontier (and whatever cascade
                // it triggers) is too small for round machinery — drain
                // the rest of the level serially. The drain stamps each
                // discovered cell with a fresh round, so `round` jumps.
                round = drain_level(
                    space,
                    &cells,
                    &mut lambda,
                    &mut order,
                    &frontier,
                    k,
                    round,
                    sink,
                );
                break;
            }
            next.clear();
            frontier_round(
                space,
                &cells,
                &frontier,
                &lambda,
                &degrees,
                k,
                round,
                threads,
                options.min_parallel_work,
                sink,
                &mut next,
            );
            round += 1;
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
            // Membership was fixed at the barrier; sorting makes the
            // emitted order independent of which worker found what.
            // (Level-opening frontiers skip this: the compacting scan
            // above produces them in ascending id order already.)
            frontier.sort_unstable();
            for &u in &frontier {
                cells.mark(u, round);
                lambda[u as usize] = k;
            }
        }
        k += 1;
    }
    Peeling {
        lambda,
        max_lambda,
        order,
    }
}

/// Serially exhausts λ-level `k`: processes the (already stamped,
/// ascending-id) `seed` frontier and every cell it cascades onto
/// through a FIFO worklist. Each discovered cell is stamped with a
/// fresh, unique round at discovery and emitted there, so processing
/// order equals stamp order and `(stamp, id)` stays a total
/// processed-before order — the sink sees exactly the same contract as
/// in parallel rounds. Returns the next unused round number.
#[allow(clippy::too_many_arguments)] // internal: single call site
fn drain_level<B: PeelBackend + Sync, S: PeelSink<B>>(
    space: &B,
    cells: &PeelCells,
    lambda: &mut [u32],
    order: &mut Vec<u32>,
    seed: &[u32],
    k: u32,
    round: u32,
    sink: &mut S,
) -> u32 {
    let mut pending: Vec<u32> = seed.to_vec();
    let mut head = 0usize;
    let mut next_stamp = round + 1;
    let mut part = sink.new_part();
    let mut next: Vec<u32> = Vec::new();
    let dec = |v: u32| cells.dec_above(v, k);
    while head < pending.len() {
        let u = pending[head];
        head += 1;
        let stamp = cells.stamp(u);
        next.clear();
        sink.scan_cell(
            space, cells, lambda, u, k, stamp, &dec, &mut next, &mut part,
        );
        for &v in &next {
            cells.mark(v, next_stamp);
            next_stamp += 1;
            lambda[v as usize] = k;
            order.push(v);
            pending.push(v);
        }
    }
    sink.absorb_part(part);
    next_stamp
}

/// Batagelj–Zaversnik bucket queue over the *residual* subset of cells,
/// used by the whole-residual hybrid drain. Same array layout and
/// laziness invariant as [`PeelBuckets`], with two differences that
/// matter at the switch point: it is built from a member list —
/// O(members) queue work plus two zero-filled n-sized arrays, instead
/// of O(n) queue operations over every already-peeled cell — and every
/// method takes `&self` (`Cell` fields: zero-cost single-threaded
/// interior mutability), so the sink-facing `dec` closure can drive it
/// without a `RefCell` turnstile in the hottest loop of the peel.
///
/// Keys of non-members read as 0; since every member enters with
/// ω > floor ≥ 0, the caller-side `key > floor` guard makes non-member
/// decrements (co-cells of the seed frontier) a natural no-op.
struct ResidualBuckets {
    bin: Vec<Cell<usize>>,
    pos: Vec<Cell<usize>>,
    vert: Vec<Cell<u32>>,
    key: Vec<Cell<u32>>,
    cursor: Cell<usize>,
    floor: Cell<u32>,
}

impl ResidualBuckets {
    /// Builds the queue over `members` (current ω read from `cells`),
    /// with the λ level `floor` the drain enters at (debug-checked
    /// against pops and decrements, like [`PeelBuckets`]' floor).
    fn new(n: usize, members: &[u32], cells: &PeelCells, floor: u32) -> Self {
        let mut key = vec![0u32; n];
        let mut max_key = 0u32;
        for &u in members {
            let w = cells.load(u).1;
            key[u as usize] = w;
            max_key = max_key.max(w);
        }
        let mut bin = vec![0usize; max_key as usize + 2];
        for &u in members {
            bin[key[u as usize] as usize + 1] += 1;
        }
        for d in 1..bin.len() {
            bin[d] += bin[d - 1];
        }
        let mut vert = vec![0u32; members.len()];
        let mut pos = vec![0usize; n];
        let mut fill = bin.clone();
        for &u in members {
            let d = key[u as usize] as usize;
            vert[fill[d]] = u;
            pos[u as usize] = fill[d];
            fill[d] += 1;
        }
        ResidualBuckets {
            bin: bin.into_iter().map(Cell::new).collect(),
            pos: pos.into_iter().map(Cell::new).collect(),
            vert: vert.into_iter().map(Cell::new).collect(),
            key: key.into_iter().map(Cell::new).collect(),
            cursor: Cell::new(0),
            floor: Cell::new(floor),
        }
    }

    /// Current key of `x` (0 for non-members).
    #[inline]
    fn key(&self, x: u32) -> u32 {
        self.key[x as usize].get()
    }

    /// Pops a member with the minimum current key; keys of successive
    /// pops are non-decreasing.
    fn pop_min(&self) -> Option<(u32, u32)> {
        let c = self.cursor.get();
        if c >= self.vert.len() {
            return None;
        }
        let x = self.vert[c].get();
        let k = self.key[x as usize].get();
        debug_assert!(k >= self.floor.get(), "residual keys regressed");
        self.floor.set(k);
        self.cursor.set(c + 1);
        Some((x, k))
    }

    /// Decrements the key of an unpopped member by one; caller must
    /// hold the `key(x) > floor` peeling guard.
    #[inline]
    fn decrement(&self, x: u32) {
        let xi = x as usize;
        let d = self.key[xi].get() as usize;
        debug_assert!(
            self.key[xi].get() > self.floor.get(),
            "decrement would drop key below peeling floor"
        );
        let p = self.pos[xi].get();
        let start = self.bin[d].get().max(self.cursor.get());
        debug_assert_eq!(
            self.key[self.vert[start].get() as usize].get(),
            self.key[xi].get()
        );
        let w = self.vert[start].get();
        if w != x {
            self.vert[p].set(w);
            self.vert[start].set(x);
            self.pos[w as usize].set(p);
            self.pos[xi].set(start);
        }
        self.bin[d].set(start + 1);
        self.key[xi].set(self.key[xi].get() - 1);
    }
}

/// Serially exhausts **everything that is left**: processes the
/// (already stamped, ascending-id) `seed` frontier of level `k`, then
/// pops the remaining `alive` cells from a [`ResidualBuckets`] queue in
/// λ-monotone order — the serial engine's loop, entered mid-peel.
/// Invoked when a λ-level opens with less than a
/// [`RESIDUAL_OPENING_FRACTION`]th of the remaining cells: from that
/// point on, the per-level `alive` compaction scan (O(alive) per level)
/// costs more than every remaining frontier is worth, so one
/// O(residual) queue build replaces all of them.
///
/// Sinks that classify ([`PeelSink::CLASSIFIES`]) get the generic loop:
/// each pop is stamped with a fresh, unique round before its container
/// scan, so `(stamp, id)` remains a total processed-before order and
/// the sink contract is identical to [`drain_level`]'s (the packed ω
/// halves go stale — the queue keys schedule the pops — but no sink
/// reads ω, only stamps). The plain sink instead takes
/// [`drain_residual_plain`], which is bit-for-bit the serial engine.
#[allow(clippy::too_many_arguments)] // internal: single call site
fn drain_residual<B: PeelBackend + Sync, S: PeelSink<B>>(
    space: &B,
    cells: &PeelCells,
    lambda: &mut [u32],
    order: &mut Vec<u32>,
    max_lambda: &mut u32,
    seed: &[u32],
    alive: &[u32],
    k: u32,
    round: u32,
    sink: &mut S,
) {
    let n = lambda.len();
    if !S::CLASSIFIES {
        drain_residual_plain(space, cells, lambda, order, max_lambda, seed, alive, k);
        return;
    }
    let q = ResidualBuckets::new(n, alive, cells, k);
    let floor = Cell::new(k);
    let dec = |v: u32| {
        if q.key(v) > floor.get() {
            q.decrement(v);
            q.key(v) == floor.get()
        } else {
            false
        }
    };
    let mut part = sink.new_part();
    let mut next: Vec<u32> = Vec::new();
    // The seed frontier shares the stamp `round` and is already in
    // `order`; process it FIFO in ascending id, like a shared-stamp
    // round. Cells its cascade drags down to k wait in bucket k and
    // come back out of the queue first (pops are λ-monotone).
    for &u in seed {
        sink.scan_cell(
            space, cells, lambda, u, k, round, &dec, &mut next, &mut part,
        );
        next.clear();
    }
    let mut next_stamp = round + 1;
    while let Some((u, ku)) = q.pop_min() {
        floor.set(ku);
        cells.mark(u, next_stamp);
        lambda[u as usize] = ku;
        *max_lambda = (*max_lambda).max(ku);
        order.push(u);
        sink.scan_cell(
            space, cells, lambda, u, ku, next_stamp, &dec, &mut next, &mut part,
        );
        next.clear();
        next_stamp += 1;
    }
    sink.absorb_part(part);
}

/// [`drain_residual`] for the plain sink: the serial engine's exact
/// loop — popped-bitmap dead-container checks, bucket-queue decrements,
/// no stamp maintenance (nothing reads stamps once the plain peel is
/// over). A subset [`PeelBuckets`] starts with every non-residual cell
/// already popped, then the seeds mark themselves popped in ascending
/// id before scanning — which encodes precisely the `(stamp, id)`
/// processed-before relation the stamped engines use. Unlike
/// [`ResidualBuckets`] this queue is driven through `&mut` (the plain
/// path needs no interior mutability), which is worth ~20% on the
/// drain: exclusive access lets the compiler keep the queue's cursors
/// out of memory in the decrement-heavy inner loop.
#[allow(clippy::too_many_arguments)] // internal: single call site
fn drain_residual_plain<B: PeelBackend + Sync>(
    space: &B,
    cells: &PeelCells,
    lambda: &mut [u32],
    order: &mut Vec<u32>,
    max_lambda: &mut u32,
    seed: &[u32],
    alive: &[u32],
    k: u32,
) {
    let n = lambda.len();
    let mut q = PeelBuckets::over_subset(n, alive, |u| cells.load(u).1, k);
    for &u in seed {
        q.clear_popped(u);
    }
    for &u in seed {
        q.mark_popped(u);
        space.for_each_container(u, |others| {
            if others.iter().any(|&v| q.is_popped(v)) {
                return;
            }
            for &v in others {
                if q.key(v) > k {
                    q.decrement(v);
                }
            }
        });
    }
    let mut ord = std::mem::take(order);
    let mut ml = *max_lambda;
    while let Some((u, ku)) = q.pop_min() {
        lambda[u as usize] = ku;
        ml = ml.max(ku);
        ord.push(u);
        space.for_each_container(u, |others| {
            if others.iter().any(|&v| q.is_popped(v)) {
                return;
            }
            for &v in others {
                if q.key(v) > ku {
                    q.decrement(v);
                }
            }
        });
    }
    *order = ord;
    *max_lambda = ml;
}

/// Applies one round's container decrements, appending the cells whose
/// ω crossed down to exactly `k` — the next frontier of this level —
/// to `next` (membership is unique: only the decrement that performs
/// the `k + 1 → k` transition reports the cell). `next` is a reused
/// buffer, cleared by the caller.
#[allow(clippy::too_many_arguments)] // internal: one call site per engine path
fn frontier_round<B: PeelBackend + Sync, S: PeelSink<B>>(
    space: &B,
    cells: &PeelCells,
    frontier: &[u32],
    lambda: &[u32],
    degrees: &[u32],
    k: u32,
    round: u32,
    threads: usize,
    min_parallel_work: usize,
    sink: &mut S,
    next: &mut Vec<u32>,
) {
    let weight = |u: u32| degrees[u as usize] as usize + 1;
    if threads <= 1 || frontier.iter().map(|&u| weight(u)).sum::<usize>() < min_parallel_work {
        // Inline fast path: same packed storage, but single-writer
        // decrements (relaxed load + store compile to plain moves — no
        // compare-exchange in the single-threaded engine).
        let dec = |v: u32| cells.dec_above(v, k);
        let mut part = sink.new_part();
        for &u in frontier {
            sink.scan_cell(space, cells, lambda, u, k, round, &dec, next, &mut part);
        }
        sink.absorb_part(part);
        return;
    }
    let dec = |v: u32| cells.dec_above_atomic(v, k);
    let weights: Vec<usize> = frontier.iter().map(|&u| weight(u)).collect();
    let ranges = balanced_ranges(&weights, threads);
    let parts: Vec<(Vec<u32>, S::Part)> = std::thread::scope(|scope| {
        let sink_ref: &S = sink;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let owned = &frontier[range];
                let dec = &dec;
                scope.spawn(move || {
                    let mut found = Vec::new();
                    let mut part = sink_ref.new_part();
                    for &u in owned {
                        sink_ref.scan_cell(
                            space, cells, lambda, u, k, round, dec, &mut found, &mut part,
                        );
                    }
                    (found, part)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("peel worker panicked"))
            .collect()
    });
    for (mut found, part) in parts {
        next.append(&mut found);
        sink.absorb_part(part);
    }
}

/// Brute-force reference: computes λ by literally re-running the
/// definition — repeatedly delete all cells with ω < k from the highest
/// k downward. Exponentially clearer, polynomially slower; used by the
/// property tests to pin down [`peel`].
pub fn peel_reference<B: PeelBackend>(space: &B) -> Vec<u32> {
    let n = space.cell_count();
    let mut lambda = vec![0u32; n];
    let mut alive = vec![true; n];
    let mut k = 1u32;
    loop {
        // Iteratively delete alive cells whose alive-container count < k.
        let mut changed = true;
        while changed {
            changed = false;
            for c in 0..n as u32 {
                if !alive[c as usize] {
                    continue;
                }
                let mut deg = 0u32;
                space.for_each_container(c, |others| {
                    if others.iter().all(|&v| alive[v as usize]) {
                        deg += 1;
                    }
                });
                if deg < k {
                    alive[c as usize] = false;
                    changed = true;
                }
            }
        }
        let mut any = false;
        for c in 0..n {
            if alive[c] {
                lambda[c] = k;
                any = true;
            }
        }
        if !any {
            break;
        }
        k += 1;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use nucleus_graph::CsrGraph;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn core_numbers_of_clique() {
        let g = complete(6);
        let p = peel(&VertexSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 5));
        assert_eq!(p.max_lambda, 5);
    }

    #[test]
    fn core_numbers_of_path_and_star() {
        let path = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = peel(&VertexSpace::new(&path));
        assert!(p.lambda.iter().all(|&l| l == 1));

        let star = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = peel(&VertexSpace::new(&star));
        assert!(p.lambda.iter().all(|&l| l == 1));
    }

    #[test]
    fn isolated_vertices_have_lambda_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda[2], 0);
        assert_eq!(p.lambda[3], 0);
        assert_eq!(p.lambda[0], 1);
    }

    #[test]
    fn order_is_monotone_in_lambda() {
        let g = crate::test_graphs::nested_cores();
        let p = peel(&VertexSpace::new(&g));
        let mut last = 0;
        for &c in &p.order {
            assert!(p.lambda_of(c) >= last);
            last = p.lambda_of(c);
        }
        assert_eq!(p.order.len(), g.n());
    }

    #[test]
    fn truss_numbers_of_clique() {
        // K5: every edge in 3 triangles, λ₃ = 3 for all.
        let g = complete(5);
        let p = peel(&EdgeSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn nucleus34_of_clique() {
        // K6: every triangle in 3 K4s, λ₄ = 3 for all.
        let g = complete(6);
        let p = peel(&TriangleSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn matches_reference_on_mixed_graph() {
        let g = crate::test_graphs::nested_cores();
        for_all_spaces_match(&g);
        let g = nucleus_graph::CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        for_all_spaces_match(&g);
    }

    fn for_all_spaces_match(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        assert_eq!(peel(&vs).lambda, peel_reference(&vs));
        let es = EdgeSpace::new(g);
        assert_eq!(peel(&es).lambda, peel_reference(&es));
        let ts = TriangleSpace::new(g);
        assert_eq!(peel(&ts).lambda, peel_reference(&ts));
    }

    #[test]
    fn lambda_histogram_sums_to_cells() {
        let g = complete(5);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda_histogram().iter().sum::<usize>(), 5);
    }

    /// λ from the frontier engine equals the serial engine on every
    /// space, at several thread counts, with the spawn path forced —
    /// with the hybrid drain disabled, always-on, and on a mid-size
    /// threshold that mixes both per level.
    fn check_frontier_matches_serial(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        let es = EdgeSpace::new(g);
        let ts = TriangleSpace::new(g);
        fn check<S: crate::space::PeelSpace + Sync>(space: &S) {
            let serial = peel(space);
            let m = crate::space::MaterializedSpace::new(space);
            for serial_round_threshold in [0, 3, usize::MAX] {
                for threads in [1, 2, 8] {
                    let opts = FrontierOptions {
                        threads,
                        min_parallel_work: 0,
                        serial_round_threshold,
                    };
                    let par = peel_parallel_with(space, opts);
                    assert_eq!(
                        par.lambda, serial.lambda,
                        "lazy backend, {threads} threads, drain < {serial_round_threshold}"
                    );
                    let par_m = peel_parallel_with(&m, opts);
                    assert_eq!(
                        par_m.lambda, serial.lambda,
                        "materialized, {threads} threads, drain < {serial_round_threshold}"
                    );
                    assert_eq!(par_m.max_lambda, serial.max_lambda);
                    // λ-monotone order covering every cell exactly once
                    let mut last = 0;
                    for &c in &par_m.order {
                        assert!(par_m.lambda_of(c) >= last);
                        last = par_m.lambda_of(c);
                    }
                    let mut seen = par_m.order.clone();
                    seen.sort_unstable();
                    assert_eq!(seen, (0..space.cell_count() as u32).collect::<Vec<_>>());
                    // deterministic across thread counts and backends
                    assert_eq!(par.order, par_m.order);
                }
            }
        }
        check(&vs);
        check(&es);
        check(&ts);
    }

    #[test]
    fn frontier_engine_matches_serial_on_clique_and_mixed() {
        check_frontier_matches_serial(&complete(7));
        check_frontier_matches_serial(&crate::test_graphs::nested_cores());
        check_frontier_matches_serial(&CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        ));
    }

    #[test]
    fn frontier_engine_on_empty_and_isolated() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = peel_parallel(&VertexSpace::new(&g), 4);
        assert_eq!(p.cell_count(), 0);
        assert_eq!(p.max_lambda, 0);

        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let p = peel_parallel(&VertexSpace::new(&g), 2);
        assert_eq!(p.lambda, vec![1, 1, 0, 0]);
        // isolated cells are emitted first (λ = 0 level precedes λ = 1)
        assert_eq!(&p.order[..2], &[2, 3]);
    }

    #[test]
    fn frontier_order_is_ascending_within_rounds() {
        // K5: one frontier containing everything, emitted in id order.
        let g = complete(5);
        let p = peel_parallel(&VertexSpace::new(&g), 2);
        assert_eq!(p.order, vec![0, 1, 2, 3, 4]);
        assert!(p.lambda.iter().all(|&l| l == 4));
    }
}
