//! The generic peeling process (`Set-λ`, Algorithm 1 of the paper).

use nucleus_graph::bucket::PeelBuckets;

use crate::space::PeelBackend;

/// Output of the peeling phase: the λ_s value of every cell plus the
/// processing order (non-decreasing in λ — the property both DFT and FND
/// rely on).
#[derive(Clone, Debug)]
pub struct Peeling {
    /// λ_s per cell: the largest k such that the cell lies in a k-(r,s)
    /// nucleus.
    pub lambda: Vec<u32>,
    /// Maximum λ over all cells.
    pub max_lambda: u32,
    /// Cells in processing (peeling) order; λ is non-decreasing along it.
    pub order: Vec<u32>,
}

impl Peeling {
    /// λ of a cell.
    #[inline]
    pub fn lambda_of(&self, cell: u32) -> u32 {
        self.lambda[cell as usize]
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.lambda.len()
    }

    /// Histogram of λ values (index = λ, value = number of cells).
    pub fn lambda_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_lambda as usize + 1];
        for &l in &self.lambda {
            h[l as usize] += 1;
        }
        h
    }
}

/// Runs `Set-λ` (Algorithm 1): repeatedly process an unprocessed cell of
/// minimum ω, assign `λ = ω`, and decrement the ω of unprocessed
/// co-cells in still-alive containers.
///
/// ```
/// use nucleus_core::peel::peel;
/// use nucleus_core::space::{EdgeSpace, VertexSpace};
/// use nucleus_graph::CsrGraph;
///
/// // triangle with a tail: core numbers [2,2,2,1], trussness [1,1,1,0]
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(peel(&VertexSpace::new(&g)).lambda, vec![2, 2, 2, 1]);
/// let truss = peel(&EdgeSpace::new(&g));
/// assert_eq!(truss.max_lambda, 1);
/// assert_eq!(truss.lambda_of(g.edge_id(2, 3).unwrap()), 0);
/// ```
pub fn peel<B: PeelBackend>(space: &B) -> Peeling {
    let n = space.cell_count();
    let mut q = PeelBuckets::new(space.degrees());
    let mut lambda = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    while let Some((u, k)) = q.pop_min() {
        lambda[u as usize] = k;
        max_lambda = max_lambda.max(k);
        order.push(u);
        space.for_each_container(u, |others| {
            // A container with an already-processed cell is dead: it was
            // accounted for when that cell was peeled (Alg. 1, line 8).
            if others.iter().any(|&v| q.is_popped(v)) {
                return;
            }
            for &v in others {
                if q.key(v) > k {
                    q.decrement(v);
                }
            }
        });
    }
    Peeling {
        lambda,
        max_lambda,
        order,
    }
}

/// Brute-force reference: computes λ by literally re-running the
/// definition — repeatedly delete all cells with ω < k from the highest
/// k downward. Exponentially clearer, polynomially slower; used by the
/// property tests to pin down [`peel`].
pub fn peel_reference<B: PeelBackend>(space: &B) -> Vec<u32> {
    let n = space.cell_count();
    let mut lambda = vec![0u32; n];
    let mut alive = vec![true; n];
    let mut k = 1u32;
    loop {
        // Iteratively delete alive cells whose alive-container count < k.
        let mut changed = true;
        while changed {
            changed = false;
            for c in 0..n as u32 {
                if !alive[c as usize] {
                    continue;
                }
                let mut deg = 0u32;
                space.for_each_container(c, |others| {
                    if others.iter().all(|&v| alive[v as usize]) {
                        deg += 1;
                    }
                });
                if deg < k {
                    alive[c as usize] = false;
                    changed = true;
                }
            }
        }
        let mut any = false;
        for c in 0..n {
            if alive[c] {
                lambda[c] = k;
                any = true;
            }
        }
        if !any {
            break;
        }
        k += 1;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use nucleus_graph::CsrGraph;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn core_numbers_of_clique() {
        let g = complete(6);
        let p = peel(&VertexSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 5));
        assert_eq!(p.max_lambda, 5);
    }

    #[test]
    fn core_numbers_of_path_and_star() {
        let path = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = peel(&VertexSpace::new(&path));
        assert!(p.lambda.iter().all(|&l| l == 1));

        let star = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = peel(&VertexSpace::new(&star));
        assert!(p.lambda.iter().all(|&l| l == 1));
    }

    #[test]
    fn isolated_vertices_have_lambda_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda[2], 0);
        assert_eq!(p.lambda[3], 0);
        assert_eq!(p.lambda[0], 1);
    }

    #[test]
    fn order_is_monotone_in_lambda() {
        let g = crate::test_graphs::nested_cores();
        let p = peel(&VertexSpace::new(&g));
        let mut last = 0;
        for &c in &p.order {
            assert!(p.lambda_of(c) >= last);
            last = p.lambda_of(c);
        }
        assert_eq!(p.order.len(), g.n());
    }

    #[test]
    fn truss_numbers_of_clique() {
        // K5: every edge in 3 triangles, λ₃ = 3 for all.
        let g = complete(5);
        let p = peel(&EdgeSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn nucleus34_of_clique() {
        // K6: every triangle in 3 K4s, λ₄ = 3 for all.
        let g = complete(6);
        let p = peel(&TriangleSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn matches_reference_on_mixed_graph() {
        let g = crate::test_graphs::nested_cores();
        for_all_spaces_match(&g);
        let g = nucleus_graph::CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        for_all_spaces_match(&g);
    }

    fn for_all_spaces_match(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        assert_eq!(peel(&vs).lambda, peel_reference(&vs));
        let es = EdgeSpace::new(g);
        assert_eq!(peel(&es).lambda, peel_reference(&es));
        let ts = TriangleSpace::new(g);
        assert_eq!(peel(&ts).lambda, peel_reference(&ts));
    }

    #[test]
    fn lambda_histogram_sums_to_cells() {
        let g = complete(5);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda_histogram().iter().sum::<usize>(), 5);
    }
}
