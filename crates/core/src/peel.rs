//! The peeling process (`Set-λ`, Algorithm 1 of the paper), in two
//! engines: the classic sequential bucket-queue loop ([`peel`]) and a
//! frontier-parallel variant ([`peel_parallel`]).
//!
//! # The frontier-round invariant
//!
//! Serial `Set-λ` pops one minimum-ω cell at a time. The frontier
//! engine instead processes whole λ-levels in *rounds*: at level `k` it
//! repeatedly collects every unprocessed cell with current ω ≤ k (the
//! **frontier**), assigns them all `λ = k`, and applies their container
//! decrements concurrently (De Zoysa et al. 2021 use the same scheme
//! for shared-memory densest-subgraph peeling). Correctness rests on
//! two facts the serial loop also relies on:
//!
//! 1. **Saturating decrements.** ω is only ever decremented while
//!    strictly above the current level `k` (the `ω(v) > ω(u)` guard of
//!    Alg. 1), so concurrent decrements cannot drag a cell below the
//!    level floor; a cell whose ω reaches `k` mid-round joins the next
//!    frontier of the *same* level and still receives `λ = k` — exactly
//!    the value the serial loop would assign.
//! 2. **One decrement per dead container.** A container dies when its
//!    first member is peeled. Round stamps
//!    ([`crate::space::PeelCells`]) recover the serial accounting: a
//!    container with a member stamped in an *earlier* round is dead and
//!    skipped; among members stamped in the *same* round, only the
//!    smallest cell id applies the container's decrements, so every
//!    dead container decrements each surviving co-cell exactly once.
//!
//! Rounds emit cells in ascending-id order, level by level, so the
//! produced [`Peeling::order`] is **λ-monotone** — the only property
//! DF-Traversal ([`crate::algo::dft`]) needs from a peeling order — and
//! the engine is fully deterministic: λ values equal the serial
//! engine's bit for bit (the decomposition is unique), and the order
//! itself is identical for every thread count, because frontier
//! *membership* is determined at round barriers, not by thread timing.
//! FND is the one algorithm that cannot ride on top: Alg. 8 interleaves
//! hierarchy construction with the pops themselves, so it stays on the
//! serial engine.
//!
//! The frontier engine assumes container enumeration is cheap enough to
//! repeat per round participant — run it over a
//! [`crate::space::MaterializedSpace`] (flat [`ContainerIndex`] scans),
//! which is how [`crate::decompose::PeelEngine::Frontier`] wires it.
//!
//! [`ContainerIndex`]: crate::space::ContainerIndex

use nucleus_cliques::balanced_ranges;
use nucleus_graph::bucket::PeelBuckets;

use crate::space::{PeelBackend, PeelCells};

/// Output of the peeling phase: the λ_s value of every cell plus the
/// processing order (non-decreasing in λ — the property both DFT and FND
/// rely on).
#[derive(Clone, Debug)]
pub struct Peeling {
    /// λ_s per cell: the largest k such that the cell lies in a k-(r,s)
    /// nucleus.
    pub lambda: Vec<u32>,
    /// Maximum λ over all cells.
    pub max_lambda: u32,
    /// Cells in processing (peeling) order; λ is non-decreasing along it.
    pub order: Vec<u32>,
}

impl Peeling {
    /// λ of a cell.
    #[inline]
    pub fn lambda_of(&self, cell: u32) -> u32 {
        self.lambda[cell as usize]
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.lambda.len()
    }

    /// Histogram of λ values (index = λ, value = number of cells).
    pub fn lambda_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_lambda as usize + 1];
        for &l in &self.lambda {
            h[l as usize] += 1;
        }
        h
    }
}

/// Runs `Set-λ` (Algorithm 1): repeatedly process an unprocessed cell of
/// minimum ω, assign `λ = ω`, and decrement the ω of unprocessed
/// co-cells in still-alive containers.
///
/// ```
/// use nucleus_core::peel::peel;
/// use nucleus_core::space::{EdgeSpace, VertexSpace};
/// use nucleus_graph::CsrGraph;
///
/// // triangle with a tail: core numbers [2,2,2,1], trussness [1,1,1,0]
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// assert_eq!(peel(&VertexSpace::new(&g)).lambda, vec![2, 2, 2, 1]);
/// let truss = peel(&EdgeSpace::new(&g));
/// assert_eq!(truss.max_lambda, 1);
/// assert_eq!(truss.lambda_of(g.edge_id(2, 3).unwrap()), 0);
/// ```
pub fn peel<B: PeelBackend>(space: &B) -> Peeling {
    let n = space.cell_count();
    let mut q = PeelBuckets::new(space.degrees());
    let mut lambda = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    while let Some((u, k)) = q.pop_min() {
        lambda[u as usize] = k;
        max_lambda = max_lambda.max(k);
        order.push(u);
        space.for_each_container(u, |others| {
            // A container with an already-processed cell is dead: it was
            // accounted for when that cell was peeled (Alg. 1, line 8).
            if others.iter().any(|&v| q.is_popped(v)) {
                return;
            }
            for &v in others {
                if q.key(v) > k {
                    q.decrement(v);
                }
            }
        });
    }
    Peeling {
        lambda,
        max_lambda,
        order,
    }
}

/// Tuning for [`peel_parallel_with`].
#[derive(Clone, Copy, Debug)]
pub struct FrontierOptions {
    /// Worker threads for frontier rounds. `0` means "all available
    /// CPUs"; `1` never spawns and uses plain (non-CAS) stores.
    pub threads: usize,
    /// Rounds whose total work estimate (Σ 1 + ω₀ over the frontier)
    /// falls below this run inline on the calling thread — spawning
    /// costs more than it buys on small frontiers. Set to `0` to force
    /// every round through the spawn path (the equivalence tests do,
    /// so the concurrent code path is exercised on tiny graphs).
    pub min_parallel_work: usize,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            threads: 0,
            min_parallel_work: 1 << 14,
        }
    }
}

impl FrontierOptions {
    /// The thread count with `0` resolved to the CPU count.
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Frontier-parallel `Set-λ` with default tuning — see the module docs
/// for the round scheme and the invariant that keeps DFT valid on the
/// resulting order. Produces the same λ values as [`peel`] and a
/// λ-monotone order that is deterministic across thread counts (the
/// order differs from the serial engine's within λ levels: rounds emit
/// in ascending cell id, the bucket queue in counting-sort position).
///
/// `threads = 0` uses every available CPU. Drive it through a
/// [`crate::space::MaterializedSpace`] so each round's container scans
/// are flat-array reads:
///
/// ```
/// use nucleus_core::peel::{peel, peel_parallel};
/// use nucleus_core::space::{MaterializedSpace, VertexSpace};
/// use nucleus_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
/// let vs = VertexSpace::new(&g);
/// let m = MaterializedSpace::new(&vs);
/// let p = peel_parallel(&m, 2);
/// assert_eq!(p.lambda, peel(&vs).lambda);
/// ```
pub fn peel_parallel<B: PeelBackend + Sync>(space: &B, threads: usize) -> Peeling {
    peel_parallel_with(
        space,
        FrontierOptions {
            threads,
            ..FrontierOptions::default()
        },
    )
}

/// [`peel_parallel`] with explicit [`FrontierOptions`].
pub fn peel_parallel_with<B: PeelBackend + Sync>(space: &B, options: FrontierOptions) -> Peeling {
    let n = space.cell_count();
    let threads = options.effective_threads();
    let degrees = space.degrees();
    // Packed (processed-round, live ω) word per cell — one cache-line
    // touch answers both hot-loop questions (see PeelCells).
    let cells = PeelCells::new(&degrees);
    let mut lambda = vec![0u32; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    // Zero-container fast path: ω₀ = 0 cells have λ = 0, appear in no
    // record (a co-cell always has ω ≥ 1) and decrement nothing — emit
    // them directly, in the same ascending order the level-0 frontier
    // would produce. Everything else enters the alive list, compacted
    // on every level-opening scan; `k` starts at the smallest live ω.
    let mut alive: Vec<u32> = Vec::with_capacity(n);
    let mut k = u32::MAX;
    for u in 0..n as u32 {
        let d = degrees[u as usize];
        if d == 0 {
            order.push(u);
        } else {
            alive.push(u);
            k = k.min(d);
        }
    }
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    let mut round = 0u32;
    while order.len() < n {
        // Open level k: pull every alive cell with current ω ≤ k into
        // the frontier (stamping it in the same pass — the packed word
        // is already in hand) and remember the smallest ω above k so
        // empty levels are jumped instead of scanned one by one.
        frontier.clear();
        let mut min_above = u32::MAX;
        alive.retain(|&u| {
            let (stamp, w) = cells.load(u);
            if stamp != PeelCells::ALIVE {
                return false;
            }
            if w <= k {
                cells.mark_with_omega(u, round, w);
                lambda[u as usize] = k;
                frontier.push(u);
                false
            } else {
                min_above = min_above.min(w);
                true
            }
        });
        if frontier.is_empty() {
            debug_assert!(!alive.is_empty(), "cells left but none reachable");
            k = min_above;
            continue;
        }
        loop {
            order.extend_from_slice(&frontier);
            max_lambda = k;
            next.clear();
            frontier_round(
                space,
                &cells,
                &frontier,
                &degrees,
                k,
                round,
                threads,
                options.min_parallel_work,
                &mut next,
            );
            round += 1;
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
            // Membership was fixed at the barrier; sorting makes the
            // emitted order independent of which worker found what.
            // (Level-opening frontiers skip this: the compacting scan
            // above produces them in ascending id order already.)
            frontier.sort_unstable();
            for &u in &frontier {
                cells.mark(u, round);
                lambda[u as usize] = k;
            }
        }
        k += 1;
    }
    Peeling {
        lambda,
        max_lambda,
        order,
    }
}

/// Applies one round's container decrements, appending the cells whose
/// ω crossed down to exactly `k` — the next frontier of this level —
/// to `next` (membership is unique: only the decrement that performs
/// the `k + 1 → k` transition reports the cell). `next` is a reused
/// buffer, cleared by the caller.
#[allow(clippy::too_many_arguments)] // internal: one call site per engine path
fn frontier_round<B: PeelBackend + Sync>(
    space: &B,
    cells: &PeelCells,
    frontier: &[u32],
    degrees: &[u32],
    k: u32,
    round: u32,
    threads: usize,
    min_parallel_work: usize,
    next: &mut Vec<u32>,
) {
    let weight = |u: u32| degrees[u as usize] as usize + 1;
    if threads <= 1 || frontier.iter().map(|&u| weight(u)).sum::<usize>() < min_parallel_work {
        // Inline fast path: same packed storage, but single-writer
        // decrements (relaxed load + store compile to plain moves — no
        // compare-exchange in the single-threaded engine).
        let dec = |v: u32| cells.dec_above(v, k);
        scan_frontier_cells(space, cells, frontier, round, &dec, next);
        return;
    }
    let dec = |v: u32| cells.dec_above_atomic(v, k);
    let weights: Vec<usize> = frontier.iter().map(|&u| weight(u)).collect();
    let ranges = balanced_ranges(&weights, threads);
    let parts: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let owned = &frontier[range];
                let dec = &dec;
                scope.spawn(move || {
                    let mut part = Vec::new();
                    scan_frontier_cells(space, cells, owned, round, dec, &mut part);
                    part
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("peel worker panicked"))
            .collect()
    });
    for mut part in parts {
        next.append(&mut part);
    }
}

/// The per-worker scan: for each owned frontier cell, decide container
/// liveness/ownership from the round stamps and apply decrements via
/// `dec` (which reports `true` when its target just dropped to the
/// level value and must join the next frontier).
fn scan_frontier_cells<B: PeelBackend, D: Fn(u32) -> bool>(
    space: &B,
    cells: &PeelCells,
    owned: &[u32],
    round: u32,
    dec: &D,
    next: &mut Vec<u32>,
) {
    for &u in owned {
        space.for_each_container(u, |others| {
            for &v in others {
                let s = cells.stamp(v);
                if s < round {
                    return; // container died in an earlier round
                }
                if s == round && v < u {
                    return; // same-round co-cell with smaller id owns it
                }
            }
            for &v in others {
                if dec(v) {
                    next.push(v);
                }
            }
        });
    }
}

/// Brute-force reference: computes λ by literally re-running the
/// definition — repeatedly delete all cells with ω < k from the highest
/// k downward. Exponentially clearer, polynomially slower; used by the
/// property tests to pin down [`peel`].
pub fn peel_reference<B: PeelBackend>(space: &B) -> Vec<u32> {
    let n = space.cell_count();
    let mut lambda = vec![0u32; n];
    let mut alive = vec![true; n];
    let mut k = 1u32;
    loop {
        // Iteratively delete alive cells whose alive-container count < k.
        let mut changed = true;
        while changed {
            changed = false;
            for c in 0..n as u32 {
                if !alive[c as usize] {
                    continue;
                }
                let mut deg = 0u32;
                space.for_each_container(c, |others| {
                    if others.iter().all(|&v| alive[v as usize]) {
                        deg += 1;
                    }
                });
                if deg < k {
                    alive[c as usize] = false;
                    changed = true;
                }
            }
        }
        let mut any = false;
        for c in 0..n {
            if alive[c] {
                lambda[c] = k;
                any = true;
            }
        }
        if !any {
            break;
        }
        k += 1;
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use nucleus_graph::CsrGraph;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn core_numbers_of_clique() {
        let g = complete(6);
        let p = peel(&VertexSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 5));
        assert_eq!(p.max_lambda, 5);
    }

    #[test]
    fn core_numbers_of_path_and_star() {
        let path = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = peel(&VertexSpace::new(&path));
        assert!(p.lambda.iter().all(|&l| l == 1));

        let star = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let p = peel(&VertexSpace::new(&star));
        assert!(p.lambda.iter().all(|&l| l == 1));
    }

    #[test]
    fn isolated_vertices_have_lambda_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda[2], 0);
        assert_eq!(p.lambda[3], 0);
        assert_eq!(p.lambda[0], 1);
    }

    #[test]
    fn order_is_monotone_in_lambda() {
        let g = crate::test_graphs::nested_cores();
        let p = peel(&VertexSpace::new(&g));
        let mut last = 0;
        for &c in &p.order {
            assert!(p.lambda_of(c) >= last);
            last = p.lambda_of(c);
        }
        assert_eq!(p.order.len(), g.n());
    }

    #[test]
    fn truss_numbers_of_clique() {
        // K5: every edge in 3 triangles, λ₃ = 3 for all.
        let g = complete(5);
        let p = peel(&EdgeSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn nucleus34_of_clique() {
        // K6: every triangle in 3 K4s, λ₄ = 3 for all.
        let g = complete(6);
        let p = peel(&TriangleSpace::new(&g));
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn matches_reference_on_mixed_graph() {
        let g = crate::test_graphs::nested_cores();
        for_all_spaces_match(&g);
        let g = nucleus_graph::CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        for_all_spaces_match(&g);
    }

    fn for_all_spaces_match(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        assert_eq!(peel(&vs).lambda, peel_reference(&vs));
        let es = EdgeSpace::new(g);
        assert_eq!(peel(&es).lambda, peel_reference(&es));
        let ts = TriangleSpace::new(g);
        assert_eq!(peel(&ts).lambda, peel_reference(&ts));
    }

    #[test]
    fn lambda_histogram_sums_to_cells() {
        let g = complete(5);
        let p = peel(&VertexSpace::new(&g));
        assert_eq!(p.lambda_histogram().iter().sum::<usize>(), 5);
    }

    /// λ from the frontier engine equals the serial engine on every
    /// space, at several thread counts, with the spawn path forced.
    fn check_frontier_matches_serial(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        let es = EdgeSpace::new(g);
        let ts = TriangleSpace::new(g);
        fn check<S: crate::space::PeelSpace + Sync>(space: &S) {
            let serial = peel(space);
            let m = crate::space::MaterializedSpace::new(space);
            for threads in [1, 2, 8] {
                let par = peel_parallel_with(
                    space,
                    FrontierOptions {
                        threads,
                        min_parallel_work: 0,
                    },
                );
                assert_eq!(par.lambda, serial.lambda, "lazy backend, {threads} threads");
                let par_m = peel_parallel_with(
                    &m,
                    FrontierOptions {
                        threads,
                        min_parallel_work: 0,
                    },
                );
                assert_eq!(
                    par_m.lambda, serial.lambda,
                    "materialized, {threads} threads"
                );
                assert_eq!(par_m.max_lambda, serial.max_lambda);
                // λ-monotone order covering every cell exactly once
                let mut last = 0;
                for &c in &par_m.order {
                    assert!(par_m.lambda_of(c) >= last);
                    last = par_m.lambda_of(c);
                }
                let mut seen = par_m.order.clone();
                seen.sort_unstable();
                assert_eq!(seen, (0..space.cell_count() as u32).collect::<Vec<_>>());
                // deterministic across thread counts
                assert_eq!(par.order, par_m.order);
            }
        }
        check(&vs);
        check(&es);
        check(&ts);
    }

    #[test]
    fn frontier_engine_matches_serial_on_clique_and_mixed() {
        check_frontier_matches_serial(&complete(7));
        check_frontier_matches_serial(&crate::test_graphs::nested_cores());
        check_frontier_matches_serial(&CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        ));
    }

    #[test]
    fn frontier_engine_on_empty_and_isolated() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = peel_parallel(&VertexSpace::new(&g), 4);
        assert_eq!(p.cell_count(), 0);
        assert_eq!(p.max_lambda, 0);

        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let p = peel_parallel(&VertexSpace::new(&g), 2);
        assert_eq!(p.lambda, vec![1, 1, 0, 0]);
        // isolated cells are emitted first (λ = 0 level precedes λ = 1)
        assert_eq!(&p.order[..2], &[2, 3]);
    }

    #[test]
    fn frontier_order_is_ascending_within_rounds() {
        // K5: one frontier containing everything, emitted in id order.
        let g = complete(5);
        let p = peel_parallel(&VertexSpace::new(&g), 2);
        assert_eq!(p.order, vec![0, 1, 2, 3, 4]);
        assert!(p.lambda.iter().all(|&l| l == 4));
    }
}
