//! Hierarchy export: GraphViz DOT (the visualization use case of
//! Alvarez-Hamelin et al. / Zhao & Tung cited in §3) and nucleus
//! subgraph extraction for downstream processing.

use std::fmt::Write as _;

use nucleus_graph::CsrGraph;

use crate::hierarchy::Hierarchy;
use crate::report::nucleus_vertices;
use crate::space::PeelSpace;

/// Renders the hierarchy as a GraphViz DOT tree. Each node is labeled
/// `k=λ (members)`; node area hints at subtree size. Limits output to
/// `max_nodes` nodes (breadth-first from the root) to keep plots usable.
pub fn hierarchy_to_dot(h: &Hierarchy, max_nodes: usize) -> String {
    let mut out =
        String::from("digraph nuclei {\n  rankdir=TB;\n  node [shape=box, style=rounded];\n");
    let mut queue = vec![Hierarchy::ROOT];
    let mut head = 0usize;
    let mut included = Vec::new();
    while head < queue.len() && included.len() < max_nodes {
        let id = queue[head];
        head += 1;
        included.push(id);
        queue.extend_from_slice(&h.node(id).children);
    }
    for &id in &included {
        let node = h.node(id);
        let label = if id == Hierarchy::ROOT {
            format!("root ({} cells)", node.subtree_cells)
        } else {
            format!("k={} ({} cells)", node.lambda, node.subtree_cells)
        };
        let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
    }
    for &id in &included {
        for &c in &h.node(id).children {
            if included.contains(&c) {
                let _ = writeln!(out, "  n{id} -> n{c};");
            }
        }
    }
    let truncated = h.len() - included.len();
    if truncated > 0 {
        let _ = writeln!(
            out,
            "  trunc [label=\"… {truncated} more nuclei\", style=dashed];"
        );
    }
    out.push_str("}\n");
    out
}

/// An extracted nucleus as a standalone graph: vertices are re-labeled
/// densely; `original` maps new ids back to the source graph.
#[derive(Clone, Debug)]
pub struct ExtractedSubgraph {
    /// The induced subgraph on the nucleus's vertex span.
    pub graph: CsrGraph,
    /// `original[new_id] = old_id`.
    pub original: Vec<u32>,
}

/// Extracts the subgraph induced by the vertices spanned by the nucleus
/// rooted at `node`.
pub fn extract_nucleus<S: PeelSpace>(
    g: &CsrGraph,
    space: &S,
    h: &Hierarchy,
    node: u32,
) -> ExtractedSubgraph {
    let verts = nucleus_vertices(space, h, node);
    let mut new_id = vec![u32::MAX; g.n()];
    for (i, &v) in verts.iter().enumerate() {
        new_id[v as usize] = i as u32;
    }
    let mut edges = Vec::new();
    for &v in &verts {
        for &w in g.neighbors(v) {
            if v < w && new_id[w as usize] != u32::MAX {
                edges.push((new_id[v as usize], new_id[w as usize]));
            }
        }
    }
    ExtractedSubgraph {
        graph: CsrGraph::from_edges(verts.len(), &edges),
        original: verts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::peel::peel;
    use crate::space::VertexSpace;
    use crate::test_graphs;

    #[test]
    fn dot_contains_all_levels() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        let dot = hierarchy_to_dot(&h, 100);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("k=4"));
        assert!(dot.contains("->"));
        assert!(!dot.contains("more nuclei"));
    }

    #[test]
    fn dot_truncates() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        let dot = hierarchy_to_dot(&h, 1);
        assert!(dot.contains("more nuclei"));
    }

    #[test]
    fn extracted_nucleus_is_the_k5() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        let deep = h.nuclei_at(4)[0];
        let sub = extract_nucleus(&g, &vs, &h, deep);
        assert_eq!(sub.graph.n(), 5);
        assert_eq!(sub.graph.m(), 10); // K5
        assert_eq!(sub.original.len(), 5);
        // mapping points at real vertices of the original K5 (ids 0..5)
        assert!(sub.original.iter().all(|&v| v < 5));
    }

    #[test]
    fn extraction_of_root_returns_whole_graph() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        let sub = extract_nucleus(&g, &vs, &h, Hierarchy::ROOT);
        assert_eq!(sub.graph.n(), g.n());
        assert_eq!(sub.graph.m(), g.m());
    }
}
