//! The peeling-space abstraction: one interface for every (r, s) pair.
//!
//! A *(r, s) nucleus decomposition* peels **cells** (the K_r's: vertices,
//! edges or triangles) by their **container** count (the K_s's they lie
//! in: edges, triangles or four-cliques). All hierarchy algorithms in
//! this crate — Naive, DFT, FND, Hypo — are written once against
//! [`PeelSpace`] and monomorphized per space, which is the paper's
//! genericity claim made concrete.

/// A cell universe for peeling. Cells are dense `u32` ids.
pub trait PeelSpace {
    /// `r` of the (r, s) pair (cells are K_r's).
    fn r(&self) -> u32;

    /// `s` of the (r, s) pair (containers are K_s's).
    fn s(&self) -> u32;

    /// Number of cells.
    fn cell_count(&self) -> usize;

    /// Initial ω_s of every cell (number of containers it lies in).
    fn degrees(&self) -> Vec<u32>;

    /// Enumerates the containers (K_s's) of `cell`, invoking `f` once per
    /// container with the *other* cells of that container (`s choose r`
    /// minus one ids: 1 for (1,2), 2 for (2,3), 3 for (3,4)).
    ///
    /// The slice is only valid for the duration of the call.
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, f: F);

    /// Appends the vertices spanned by `cell` to `out` (1, 2 or 3 ids).
    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>);

    /// Human-readable space name, e.g. `"(2,3)"`.
    fn name(&self) -> String {
        format!("({},{})", self.r(), self.s())
    }
}

pub mod edge;
pub mod edge_k4;
pub mod triangle;
pub mod vertex;
pub mod vertex_triangle;

pub use edge::EdgeSpace;
pub use edge_k4::EdgeK4Space;
pub use triangle::TriangleSpace;
pub use vertex::VertexSpace;
pub use vertex_triangle::VertexTriangleSpace;
