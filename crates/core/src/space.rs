//! The peeling-space abstraction: one interface for every (r, s) pair,
//! served by two interchangeable backends.
//!
//! A *(r, s) nucleus decomposition* peels **cells** (the K_r's: vertices,
//! edges or triangles) by their **container** count (the K_s's they lie
//! in: edges, triangles or four-cliques). All hierarchy algorithms in
//! this crate — Naive, DFT, FND, Hypo — are written once against the two
//! traits below and monomorphized per space *and* per backend, which is
//! the paper's genericity claim made concrete.
//!
//! # The two backends
//!
//! [`PeelBackend`] is the container-enumeration contract the algorithms
//! actually drive; [`PeelSpace`] adds the space's identity (`r`, `s`,
//! the vertices a cell spans). Two families implement them:
//!
//! * **Lazy** — the five concrete spaces ([`VertexSpace`],
//!   [`EdgeSpace`], [`TriangleSpace`], [`VertexTriangleSpace`],
//!   [`EdgeK4Space`]) re-enumerate a cell's containers on every visit
//!   by intersecting sorted neighbor lists. No memory beyond the ω
//!   values, but peeling revisits each cell once per surviving
//!   container, so the same intersections are recomputed many times.
//! * **Materialized** — [`MaterializedSpace`] wraps any lazy space with
//!   a [`ContainerIndex`]: a flat CSR built **once** (in parallel) that
//!   stores, per cell, one fixed-width record per container holding the
//!   co-cell ids. Peeling and traversal then touch only two contiguous
//!   arrays — no intersections, no pointer chasing — at the cost of
//!   `containers × (C(s,r) − 1) × 4` bytes (e.g. two words per triangle
//!   per edge for (2,3), three words per K4 per triangle for (3,4)).
//!
//! Both backends produce bit-identical results (the proptests in
//! `tests/proptests.rs` pin λ, peeling order and FND hierarchies);
//! the trade is purely memory for time. Select one through
//! [`crate::decompose::Backend`] (`Auto` materializes when the
//! estimated index fits a size cap) or the `nucleus` CLI's
//! `--backend {auto,lazy,materialized}` flag.
//!
//! The materialized backend is also the substrate of the
//! **frontier-parallel peeling engine**
//! ([`crate::peel::peel_parallel`], selected through
//! [`crate::decompose::PeelEngine`]): processing a whole λ-level per
//! round only pays off when each participant's container scan is a flat
//! [`ContainerIndex`] read, and the engine's container-liveness
//! accounting lives in [`PeelCells`] alongside the index.

/// The container-enumeration contract every peeling algorithm drives.
///
/// This is the hot-loop surface: [`crate::peel::peel`],
/// [`crate::algo::hypo::hypo_sweep`], the traversals and
/// [`crate::validate::check_semantics`] need nothing else. Implemented
/// by the lazy spaces (recomputing containers per call) and by
/// [`MaterializedSpace`] (serving them from a flat [`ContainerIndex`]).
pub trait PeelBackend {
    /// Number of cells.
    fn cell_count(&self) -> usize;

    /// Initial ω_s of every cell (number of containers it lies in).
    fn degrees(&self) -> Vec<u32>;

    /// Enumerates the containers (K_s's) of `cell`, invoking `f` once per
    /// container with the *other* cells of that container (`s choose r`
    /// minus one ids: 1 for (1,2), 2 for (2,3), 3 for (3,4)).
    ///
    /// The slice is only valid for the duration of the call. The
    /// enumeration order must be deterministic: the materialized backend
    /// replays the order observed at build time, which keeps peeling
    /// orders bit-identical across backends.
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, f: F);
}

/// A cell universe for peeling: a [`PeelBackend`] plus the space's
/// identity. Cells are dense `u32` ids.
pub trait PeelSpace: PeelBackend {
    /// `r` of the (r, s) pair (cells are K_r's).
    fn r(&self) -> u32;

    /// `s` of the (r, s) pair (containers are K_s's).
    fn s(&self) -> u32;

    /// Appends the vertices spanned by `cell` to `out` (1, 2 or 3 ids).
    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>);

    /// Human-readable space name, e.g. `"(2,3)"`.
    fn name(&self) -> String {
        format!("({},{})", self.r(), self.s())
    }
}

pub mod edge;
pub mod edge_k4;
pub mod materialized;
pub mod triangle;
pub mod vertex;
pub mod vertex_triangle;

pub use edge::EdgeSpace;
pub use edge_k4::EdgeK4Space;
pub use materialized::{ContainerIndex, IndexedSpace, MaterializedSpace, PeelCells};
pub use triangle::TriangleSpace;
pub use vertex::VertexSpace;
pub use vertex_triangle::VertexTriangleSpace;
