//! Hierarchy-construction algorithms.
//!
//! * [`naive`] — Algorithms 2/3: one traversal per k level (baseline);
//! * [`dft`] — Algorithms 5/6: single decreasing-λ traversal with the
//!   root-augmented disjoint-set forest;
//! * [`fnd`] — Algorithms 8/9: traversal-free, hierarchy built during
//!   peeling (the paper's headline contribution);
//! * [`lcps`] — Matula & Beck's Level Component Priority Search, adapted
//!   with a bucket priority queue (k-core only, §5.1);
//! * [`tcp`] — Huang et al.'s TCP index (the (2,3) comparator, §5.2);
//! * [`hypo`] — the hypothetical best traversal-based baseline.

pub mod dft;
pub mod fnd;
pub mod hypo;
pub mod lcps;
pub mod naive;
pub mod tcp;
pub mod variants;
