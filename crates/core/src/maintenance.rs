//! Incremental k-core maintenance under edge insertions and removals —
//! the *streaming* setting of Sarıyüce et al. (PVLDB'13 / VLDBJ'16),
//! which the paper's sub-nucleus (T₁,₂ = "subcore") machinery descends
//! from (§3.1). One edge update changes core numbers by at most one, and
//! only inside the subcore of the update's lower-λ endpoint; this module
//! exploits exactly that.
//!
//! **Deprecated home**: this module now lives behind the
//! `nucleus-dynamic` crate, whose `DynamicGraph` supersedes
//! [`DynamicCores`] with batched updates, per-batch reports, truss
//! maintenance and scoped recompute for the higher families. The type
//! stays here (re-exported as `nucleus_dynamic::DynamicCores`) so
//! existing imports keep compiling.
//!
//! ```
//! # #![allow(deprecated)]
//! use nucleus_core::maintenance::DynamicCores;
//! use nucleus_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]);
//! let mut dc = DynamicCores::new(&g);
//! assert_eq!(dc.core_numbers(), &[2, 2, 2, 0]);
//! dc.insert_edge(3, 0);
//! dc.insert_edge(3, 1);
//! dc.insert_edge(3, 2);
//! assert_eq!(dc.core_numbers(), &[3, 3, 3, 3]); // K4 now
//! dc.remove_edge(3, 0);
//! assert_eq!(dc.core_numbers(), &[2, 2, 2, 2]);
//! ```

#![allow(deprecated)]

use nucleus_graph::CsrGraph;

use crate::peel::peel;
use crate::space::VertexSpace;

/// A dynamic graph with incrementally maintained core numbers (λ₂).
#[deprecated(
    since = "0.1.0",
    note = "moved to the nucleus-dynamic crate; use nucleus_dynamic::DynamicCores \
            (or nucleus_dynamic::DynamicGraph for batched multi-family maintenance)"
)]
#[derive(Clone, Debug)]
pub struct DynamicCores {
    /// Sorted adjacency lists.
    adj: Vec<Vec<u32>>,
    /// Current core number per vertex.
    lambda: Vec<u32>,
    /// Scratch: visited marker with stamp (avoids clearing per update).
    mark: Vec<u32>,
    stamp: u32,
}

impl DynamicCores {
    /// Initializes from a static graph (core numbers via peeling).
    pub fn new(g: &CsrGraph) -> Self {
        let lambda = peel(&VertexSpace::new(g)).lambda;
        let adj = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        DynamicCores {
            adj,
            lambda,
            mark: vec![0; g.n()],
            stamp: 0,
        }
    }

    /// Empty dynamic graph over `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynamicCores {
            adj: vec![Vec::new(); n],
            lambda: vec![0; n],
            mark: vec![0; n],
            stamp: 0,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    /// Current core numbers.
    pub fn core_numbers(&self) -> &[u32] {
        &self.lambda
    }

    /// Neighbors of `v` (sorted).
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Whether `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Snapshot into an immutable [`CsrGraph`].
    pub fn to_graph(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.m());
        for (u, ns) in self.adj.iter().enumerate() {
            for &v in ns {
                if (u as u32) < v {
                    edges.push((u as u32, v));
                }
            }
        }
        CsrGraph::from_edges(self.n(), &edges)
    }

    /// Inserts edge `{u, v}` and repairs core numbers. Returns `false`
    /// (and changes nothing) if the edge already exists or `u == v`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        assert!((u as usize) < self.n() && (v as usize) < self.n());
        if u == v || self.has_edge(u, v) {
            return false;
        }
        let pu = self.adj[u as usize].binary_search(&v).unwrap_err();
        self.adj[u as usize].insert(pu, v);
        let pv = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pv, u);

        // Only vertices with λ = k in the root's subcore may rise to k+1.
        let k = self.lambda[u as usize].min(self.lambda[v as usize]);
        let root = if self.lambda[u as usize] <= self.lambda[v as usize] {
            u
        } else {
            v
        };
        let candidates = self.subcore(root, k);
        // Effective degree: neighbors with λ > k, plus candidate
        // neighbors with λ = k (non-candidate λ = k neighbors can never
        // reach the (k+1)-core, so they do not count).
        let mut in_set = std::collections::HashMap::new();
        for (i, &w) in candidates.iter().enumerate() {
            in_set.insert(w, i);
        }
        let mut alive: Vec<bool> = vec![true; candidates.len()];
        let mut cd: Vec<u32> = candidates
            .iter()
            .map(|&w| {
                self.adj[w as usize]
                    .iter()
                    .filter(|&&x| self.lambda[x as usize] > k || in_set.contains_key(&x))
                    .count() as u32
            })
            .collect();
        // Peel candidates with cd ≤ k.
        let mut queue: Vec<usize> = (0..candidates.len()).filter(|&i| cd[i] <= k).collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            if !alive[i] {
                continue;
            }
            alive[i] = false;
            for &x in &self.adj[candidates[i] as usize] {
                if let Some(&j) = in_set.get(&x) {
                    if alive[j] {
                        cd[j] -= 1;
                        if cd[j] <= k {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        for (i, &w) in candidates.iter().enumerate() {
            if alive[i] {
                self.lambda[w as usize] = k + 1;
            }
        }
        true
    }

    /// Removes edge `{u, v}` and repairs core numbers. Returns `false`
    /// (and changes nothing) if the edge does not exist.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let Ok(pu) = self.adj[u as usize].binary_search(&v) else {
            return false;
        };
        self.adj[u as usize].remove(pu);
        let pv = self.adj[v as usize]
            .binary_search(&u)
            .expect("symmetric edge");
        self.adj[v as usize].remove(pv);

        let k = self.lambda[u as usize].min(self.lambda[v as usize]);
        if k == 0 {
            return true; // an isolated-ish endpoint: no core can drop
        }
        // Only λ = k vertices in the subcores of the λ = k endpoints may
        // drop to k-1. (If both endpoints have λ = k, the two subcores
        // may have just split — process both.)
        let mut candidates = Vec::new();
        if self.lambda[u as usize] == k {
            candidates.extend(self.subcore(u, k));
        }
        if self.lambda[v as usize] == k && !candidates.contains(&v) {
            candidates.extend(self.subcore(v, k));
        }
        let mut in_set = std::collections::HashMap::new();
        for (i, &w) in candidates.iter().enumerate() {
            in_set.insert(w, i);
        }
        // cd = neighbors with λ ≥ k; vertices failing cd ≥ k drop out
        // and cascade through λ = k neighbors.
        let mut alive: Vec<bool> = vec![true; candidates.len()];
        let mut cd: Vec<u32> = candidates
            .iter()
            .map(|&w| {
                self.adj[w as usize]
                    .iter()
                    .filter(|&&x| self.lambda[x as usize] >= k)
                    .count() as u32
            })
            .collect();
        let mut queue: Vec<usize> = (0..candidates.len()).filter(|&i| cd[i] < k).collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            if !alive[i] {
                continue;
            }
            alive[i] = false;
            self.lambda[candidates[i] as usize] = k - 1;
            for &x in &self.adj[candidates[i] as usize] {
                if let Some(&j) = in_set.get(&x) {
                    if alive[j] {
                        cd[j] -= 1;
                        if cd[j] < k {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        true
    }

    /// The subcore of `root`: vertices with λ = k reachable from `root`
    /// through λ = k vertices (the T₁,₂ of the paper, Definition 5).
    fn subcore(&mut self, root: u32, k: u32) -> Vec<u32> {
        debug_assert_eq!(self.lambda[root as usize], k);
        self.stamp += 1;
        let stamp = self.stamp;
        let mut out = vec![root];
        self.mark[root as usize] = stamp;
        let mut head = 0;
        while head < out.len() {
            let w = out[head];
            head += 1;
            for &x in &self.adj[w as usize] {
                if self.lambda[x as usize] == k && self.mark[x as usize] != stamp {
                    self.mark[x as usize] = stamp;
                    out.push(x);
                }
            }
        }
        out
    }

    /// Full recompute of every core number (reference / repair).
    pub fn recompute(&mut self) {
        let g = self.to_graph();
        self.lambda = peel(&VertexSpace::new(&g)).lambda;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_consistent(dc: &DynamicCores) {
        let g = dc.to_graph();
        let expect = peel(&VertexSpace::new(&g)).lambda;
        assert_eq!(
            dc.core_numbers(),
            expect.as_slice(),
            "drifted from recompute"
        );
    }

    #[test]
    fn build_k4_edge_by_edge() {
        let mut dc = DynamicCores::with_vertices(4);
        let edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (u, v) in edges {
            assert!(dc.insert_edge(u, v));
            assert_consistent(&dc);
        }
        assert_eq!(dc.core_numbers(), &[3, 3, 3, 3]);
        assert_eq!(dc.m(), 6);
    }

    #[test]
    fn tear_down_k4_edge_by_edge() {
        let g = nucleus_gen::classic::complete(4);
        let mut dc = DynamicCores::new(&g);
        for (_, u, v) in g.edges() {
            assert!(dc.remove_edge(u, v));
            assert_consistent(&dc);
        }
        assert_eq!(dc.core_numbers(), &[0, 0, 0, 0]);
    }

    #[test]
    fn duplicate_and_missing_edges_are_noops() {
        let g = nucleus_gen::classic::complete(3);
        let mut dc = DynamicCores::new(&g);
        assert!(!dc.insert_edge(0, 1));
        assert!(!dc.insert_edge(1, 1));
        assert!(!dc.remove_edge(0, 0));
        let snapshot = dc.core_numbers().to_vec();
        assert!(!dc.remove_edge(2, 2));
        assert_eq!(dc.core_numbers(), snapshot.as_slice());
    }

    #[test]
    fn insertion_bridging_two_subcores() {
        // two triangles; adding a bridge edge must NOT raise anything
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let mut dc = DynamicCores::new(&g);
        dc.insert_edge(2, 3);
        assert_consistent(&dc);
        assert_eq!(dc.core_numbers(), &[2, 2, 2, 2, 2, 2]);
        // completing more cross edges eventually raises the cores
        dc.insert_edge(2, 4);
        assert_consistent(&dc);
        dc.insert_edge(1, 3);
        assert_consistent(&dc);
        dc.insert_edge(1, 4);
        assert_consistent(&dc);
    }

    #[test]
    fn deletion_splitting_a_core() {
        // ring of 6 (all λ=2): deleting one edge drops everyone to 1
        let g = nucleus_gen::classic::cycle(6);
        let mut dc = DynamicCores::new(&g);
        dc.remove_edge(0, 1);
        assert_consistent(&dc);
        assert!(dc.core_numbers().iter().all(|&l| l == 1));
    }

    #[test]
    fn karate_random_churn_stays_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = nucleus_gen::karate::karate_club();
        let mut dc = DynamicCores::new(&g);
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..300 {
            let u = rng.gen_range(0..34u32);
            let v = rng.gen_range(0..34u32);
            if rng.gen_bool(0.5) {
                dc.insert_edge(u, v);
            } else {
                dc.remove_edge(u, v);
            }
            if step % 10 == 0 {
                assert_consistent(&dc);
            }
        }
        assert_consistent(&dc);
    }
}
