//! Semantic validation: check a hierarchy against the *definitions*
//! (Definition 2 / Corollary 2 of the paper) by brute-force traversal.
//! Quadratic-ish; intended for tests and property checks on small graphs.

use crate::hierarchy::Hierarchy;
use crate::space::PeelBackend;

/// Verifies that every node of `h` is exactly one k-(r,s) nucleus of the
/// space: the subtree cell set equals the BFS closure of its cells over
/// containers with λ_{r,s} ≥ k (connectivity **and** maximality), and the
/// minimum λ inside equals k. Generic over the backend, so materialized
/// spaces are validated through the same code path.
pub fn check_semantics<B: PeelBackend>(space: &B, h: &Hierarchy) -> Result<(), String> {
    let lambda = h.lambdas();
    for id in 1..h.len() as u32 {
        let node = h.node(id);
        let k = node.lambda;
        let mut members = h.nucleus_cells(id);
        members.sort_unstable();
        // (a) min λ inside the nucleus is exactly k
        let min_l = members.iter().map(|&c| lambda[c as usize]).min().unwrap();
        if min_l != k {
            return Err(format!("node {id}: min λ {min_l} != {k}"));
        }
        // (b) BFS closure from one member over qualifying containers
        let mut in_members = vec![false; space.cell_count()];
        for &c in &members {
            in_members[c as usize] = true;
        }
        let mut visited = vec![false; space.cell_count()];
        let start = members[0];
        let mut queue = vec![start];
        visited[start as usize] = true;
        let mut head = 0;
        let mut reached = 0usize;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            reached += 1;
            space.for_each_container(x, |others| {
                if others.iter().any(|&v| lambda[v as usize] < k) {
                    return;
                }
                for &v in others {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        queue.push(v);
                    }
                }
            });
        }
        // connectivity: closure reaches every member; maximality: closure
        // contains nothing else
        if reached != members.len() {
            return Err(format!(
                "node {id} (k={k}): closure size {reached} != member count {}",
                members.len()
            ));
        }
        for (c, (&v, &m)) in visited.iter().zip(in_members.iter()).enumerate() {
            if v != m {
                return Err(format!(
                    "node {id} (k={k}): cell {c} closure/member mismatch"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::peel::peel;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use crate::test_graphs;

    #[test]
    fn dft_satisfies_definitions_on_all_spaces() {
        for g in [
            test_graphs::nested_cores(),
            nucleus_gen::paper::fig2_two_three_cores(),
            nucleus_gen::paper::fig1_nucleus_contrast(),
            nucleus_gen::karate::karate_club(),
        ] {
            let vs = VertexSpace::new(&g);
            let p = peel(&vs);
            let (h, _) = dft(&vs, &p);
            check_semantics(&vs, &h).expect("(1,2) semantics");

            let es = EdgeSpace::new(&g);
            let p = peel(&es);
            let (h, _) = dft(&es, &p);
            check_semantics(&es, &h).expect("(2,3) semantics");

            let ts = TriangleSpace::new(&g);
            let p = peel(&ts);
            let (h, _) = dft(&ts, &p);
            check_semantics(&ts, &h).expect("(3,4) semantics");
        }
    }

    #[test]
    fn detects_broken_hierarchy() {
        use crate::hierarchy::{RawHierarchy, NO_NODE};
        // Two separate triangles forced into one fake nucleus.
        let g = nucleus_graph::CsrGraph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        );
        let vs = VertexSpace::new(&g);
        let mut raw = RawHierarchy::default();
        raw.push(2, NO_NODE, vec![0, 1, 2, 3, 4, 5]);
        let h = raw.into_hierarchy(1, 2, vec![2; 6], 2);
        assert!(check_semantics(&vs, &h).is_err());
    }
}
