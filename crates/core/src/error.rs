//! Error type for the decomposition API.

use std::fmt;

/// Errors produced by [`crate::decompose::decompose`] and friends.
#[derive(Debug)]
pub enum CoreError {
    /// The requested algorithm cannot run on the requested family
    /// (e.g. LCPS is defined for k-core only).
    UnsupportedAlgorithm {
        /// Algorithm name.
        algorithm: &'static str,
        /// Family it was requested for.
        kind: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedAlgorithm { algorithm, kind } => {
                write!(f, "{algorithm} does not support the {kind} decomposition")
            }
        }
    }
}

impl std::error::Error for CoreError {}
