//! Error type for the decomposition API.

use std::fmt;

/// Errors produced by [`crate::decompose::decompose`] and friends.
#[derive(Debug)]
pub enum CoreError {
    /// The requested algorithm cannot run on the requested family
    /// (e.g. LCPS is defined for k-core only).
    UnsupportedAlgorithm {
        /// Algorithm name.
        algorithm: &'static str,
        /// Family it was requested for.
        kind: String,
    },
    /// The requested [`crate::decompose::DecomposeOptions`] combination
    /// is contradictory (e.g. the frontier peeling engine with the lazy
    /// backend, or with FND, which interleaves hierarchy construction
    /// with the serial peel).
    InvalidOptions {
        /// Human-readable explanation of the conflict.
        reason: String,
    },
    /// A textual token (typically a CLI argument) named no known kind,
    /// algorithm, backend or engine. Produced by the `parse` associated
    /// functions on those types; `expected` enumerates the actual
    /// accepted spellings, so the message never goes stale.
    UnknownName {
        /// What was being parsed: `"kind"`, `"algorithm"`, …
        what: &'static str,
        /// The offending token.
        token: String,
        /// Rendered list of accepted spellings.
        expected: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedAlgorithm { algorithm, kind } => {
                write!(f, "{algorithm} does not support the {kind} decomposition")
            }
            CoreError::InvalidOptions { reason } => {
                write!(f, "invalid decompose options: {reason}")
            }
            CoreError::UnknownName {
                what,
                token,
                expected,
            } => {
                write!(f, "unknown {what} {token:?} (expected one of: {expected})")
            }
        }
    }
}

impl std::error::Error for CoreError {}
