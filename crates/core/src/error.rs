//! Error type for the decomposition API.

use std::fmt;

/// Errors produced by [`crate::decompose::decompose`] and friends.
#[derive(Debug)]
pub enum CoreError {
    /// The requested algorithm cannot run on the requested family
    /// (e.g. LCPS is defined for k-core only).
    UnsupportedAlgorithm {
        /// Algorithm name.
        algorithm: &'static str,
        /// Family it was requested for.
        kind: String,
    },
    /// The requested [`crate::decompose::DecomposeOptions`] combination
    /// is contradictory (e.g. the frontier peeling engine with the lazy
    /// backend, or with LCPS, which walks the graph directly and never
    /// peels).
    InvalidOptions {
        /// Human-readable explanation of the conflict.
        reason: String,
    },
    /// A textual token (typically a CLI argument) named no known kind,
    /// algorithm, backend or engine. Produced by the `parse` associated
    /// functions on those types; `expected` enumerates the actual
    /// accepted spellings, so the message never goes stale.
    UnknownName {
        /// What was being parsed: `"kind"`, `"algorithm"`, …
        what: &'static str,
        /// The offending token.
        token: String,
        /// Rendered list of accepted spellings.
        expected: String,
    },
    /// A persisted index file failed structural validation: bad magic,
    /// unsupported version, checksum mismatch, truncated or
    /// out-of-bounds sections, malformed records. The bytes cannot be
    /// trusted; re-run `prepare` to regenerate the file.
    IndexCorrupt {
        /// Where the bytes came from (file path, or a label for
        /// in-memory images).
        path: String,
        /// What the validator tripped over.
        reason: String,
    },
    /// A structurally valid index file does not belong to the inputs it
    /// was offered for: the graph fingerprint differs (the graph changed
    /// after `prepare`), or the requested kind contradicts the stored
    /// (r, s) family.
    IndexMismatch {
        /// Where the index came from.
        path: String,
        /// Which part of the identity disagreed.
        reason: String,
    },
    /// Reading or writing a persisted index failed at the I/O layer
    /// (missing file, permissions, full disk).
    IndexIo {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnsupportedAlgorithm { algorithm, kind } => {
                write!(f, "{algorithm} does not support the {kind} decomposition")
            }
            CoreError::InvalidOptions { reason } => {
                write!(f, "invalid decompose options: {reason}")
            }
            CoreError::UnknownName {
                what,
                token,
                expected,
            } => {
                write!(f, "unknown {what} {token:?} (expected one of: {expected})")
            }
            CoreError::IndexCorrupt { path, reason } => {
                write!(f, "index file {path:?} is corrupt: {reason}")
            }
            CoreError::IndexMismatch { path, reason } => {
                write!(f, "index file {path:?} does not match this graph: {reason}")
            }
            CoreError::IndexIo { path, reason } => {
                write!(f, "index file {path:?}: i/o error: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}
