//! Weighted k-core decomposition — the Giatsidis-style adaptation the
//! paper surveys in §3.1, *including* the step those adaptations
//! overlooked: finding the **connected** weighted cores and their
//! hierarchy, not just the weighted λ values.
//!
//! A vertex's weighted degree is the sum of its integer edge weights;
//! the weighted core number `λʷ(v)` is the largest `k` such that `v`
//! belongs to a (connected) subgraph where every vertex has weighted
//! degree ≥ k within the subgraph.
//!
//! Because weights make the ω values drop by arbitrary amounts (not 1),
//! the bucket queue of the unweighted peeling does not apply; peeling
//! uses a lazy-deletion binary heap instead, and the hierarchy is built
//! by the same canonical machinery as the unweighted decompositions
//! (per-level components — correct for any λ assignment, weighted
//! included).

use std::collections::BinaryHeap;

use nucleus_graph::CsrGraph;

use crate::hierarchy::{Hierarchy, RawHierarchy, NO_NODE};

/// Computes weighted core numbers. `weights[e]` is the (non-negative)
/// weight of edge id `e`.
///
/// # Panics
/// Panics if `weights.len() != g.m()`.
pub fn weighted_core_numbers(g: &CsrGraph, weights: &[u64]) -> Vec<u64> {
    assert_eq!(weights.len(), g.m(), "one weight per edge");
    let n = g.n();
    let mut wdeg: Vec<u64> = vec![0; n];
    for (e, u, v) in g.edges() {
        wdeg[u as usize] += weights[e as usize];
        wdeg[v as usize] += weights[e as usize];
    }
    let mut lambda = vec![0u64; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..n as u32)
        .map(|v| std::cmp::Reverse((wdeg[v as usize], v)))
        .collect();
    let mut floor = 0u64;
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if done[v as usize] || d != wdeg[v as usize] {
            continue; // stale heap entry
        }
        done[v as usize] = true;
        floor = floor.max(d);
        lambda[v as usize] = floor;
        for (w, e) in g.arcs(v) {
            if !done[w as usize] {
                let wt = weights[e as usize];
                let nd = wdeg[w as usize].saturating_sub(wt);
                // never drop below the current floor: the vertex is
                // already guaranteed a core of that strength
                wdeg[w as usize] = nd.max(floor.min(wdeg[w as usize]));
                heap.push(std::cmp::Reverse((wdeg[w as usize], w)));
            }
        }
    }
    lambda
}

/// Builds the full **connected** weighted-core hierarchy: per level,
/// nuclei are components of `{v : λʷ(v) ≥ k}` connected through such
/// vertices. Levels are the distinct λʷ values (weights make dense
/// 1..max iteration pointless).
///
/// λ values are compressed to dense ranks so the canonical [`Hierarchy`]
/// (which stores `u32` levels) applies; `levels[rank]` maps back.
pub struct WeightedCoreDecomposition {
    /// The canonical hierarchy over *rank* levels.
    pub hierarchy: Hierarchy,
    /// Weighted core number per vertex.
    pub lambda: Vec<u64>,
    /// `levels[rank - 1]` = actual weighted threshold of rank `rank`.
    pub levels: Vec<u64>,
}

impl WeightedCoreDecomposition {
    /// The real weighted threshold of a hierarchy node.
    pub fn threshold(&self, node: u32) -> u64 {
        let rank = self.hierarchy.node(node).lambda;
        if rank == 0 {
            0
        } else {
            self.levels[rank as usize - 1]
        }
    }
}

/// Runs the weighted decomposition (λʷ + connected hierarchy).
pub fn weighted_core_decomposition(g: &CsrGraph, weights: &[u64]) -> WeightedCoreDecomposition {
    let lambda = weighted_core_numbers(g, weights);
    // Compress distinct positive λ values to dense ranks 1..=L.
    let mut levels: Vec<u64> = lambda.iter().copied().filter(|&l| l > 0).collect();
    levels.sort_unstable();
    levels.dedup();
    let rank_of = |l: u64| -> u32 {
        if l == 0 {
            0
        } else {
            (levels.binary_search(&l).expect("present") + 1) as u32
        }
    };
    let ranks: Vec<u32> = lambda.iter().map(|&l| rank_of(l)).collect();

    // Per-level component labeling, top rank downward, reusing the
    // Naive construction (correct for arbitrary λ assignments).
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| ranks[v as usize]);
    let max_rank = levels.len() as u32;
    let mut raw = RawHierarchy::default();
    let mut label = vec![NO_NODE; n];
    let mut label_prev = vec![NO_NODE; n];
    let mut emitted_prev: Vec<u32> = Vec::new();
    let mut emitted_cur: Vec<u32> = Vec::new();
    let mut first_ge = vec![0usize; max_rank as usize + 2];
    {
        let mut i = 0usize;
        for k in 0..=max_rank {
            while i < order.len() && ranks[order[i] as usize] < k {
                i += 1;
            }
            first_ge[k as usize] = i;
        }
    }
    let mut queue: Vec<u32> = Vec::new();
    for k in 1..=max_rank {
        emitted_cur.clear();
        let suffix = &order[first_ge[k as usize]..];
        for &c in suffix {
            label[c as usize] = NO_NODE;
        }
        let mut comp_count = 0u32;
        for &c0 in suffix {
            if label[c0 as usize] != NO_NODE {
                continue;
            }
            let comp = comp_count;
            comp_count += 1;
            label[c0 as usize] = comp;
            queue.clear();
            queue.push(c0);
            let mut delta = Vec::new();
            let mut head = 0;
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                if ranks[x as usize] == k {
                    delta.push(x);
                }
                for &w in g.neighbors(x) {
                    if ranks[w as usize] >= k && label[w as usize] == NO_NODE {
                        label[w as usize] = comp;
                        queue.push(w);
                    }
                }
            }
            let parent = if k == 1 {
                NO_NODE
            } else {
                emitted_prev[label_prev[c0 as usize] as usize]
            };
            let node = if delta.is_empty() {
                parent
            } else {
                raw.push(k, parent, delta)
            };
            emitted_cur.push(node);
        }
        std::mem::swap(&mut label, &mut label_prev);
        std::mem::swap(&mut emitted_cur, &mut emitted_prev);
    }
    let hierarchy = raw.into_hierarchy(1, 2, ranks, max_rank);
    WeightedCoreDecomposition {
        hierarchy,
        lambda,
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, Algorithm, Kind};

    #[test]
    fn unit_weights_reduce_to_plain_cores() {
        let g = crate::test_graphs::nested_cores();
        let weights = vec![1u64; g.m()];
        let wl = weighted_core_numbers(&g, &weights);
        let plain = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
        let expect: Vec<u64> = plain.peeling.lambda.iter().map(|&l| l as u64).collect();
        assert_eq!(wl, expect);
        // The hierarchy matches structurally; levels are rank-compressed
        // (λ values {1,2,4} become ranks {1,2,3}), so compare through the
        // threshold mapping.
        let wd = weighted_core_decomposition(&g, &weights);
        wd.hierarchy.validate().expect("valid");
        assert_eq!(wd.hierarchy.len(), plain.hierarchy.len());
        for (id, (wn, pn)) in wd
            .hierarchy
            .nodes()
            .iter()
            .zip(plain.hierarchy.nodes())
            .enumerate()
            .skip(1)
        {
            assert_eq!(wn.cells, pn.cells, "node {id}");
            assert_eq!(wn.parent, pn.parent, "node {id}");
            assert_eq!(wd.threshold(id as u32), pn.lambda as u64, "node {id}");
        }
    }

    #[test]
    fn heavy_edge_dominates() {
        // path 0-1-2; edge (0,1) has weight 10, edge (1,2) weight 1.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let e01 = g.edge_id(0, 1).unwrap() as usize;
        let mut weights = vec![1u64; 2];
        weights[e01] = 10;
        let wl = weighted_core_numbers(&g, &weights);
        // peel vertex 2 first (wdeg 1) → then 0 and 1 form a w-10 pair
        assert_eq!(wl[2], 1);
        assert_eq!(wl[0], 10);
        assert_eq!(wl[1], 10);
        let wd = weighted_core_decomposition(&g, &weights);
        wd.hierarchy.validate().expect("valid");
        assert_eq!(wd.levels, vec![1, 10]);
        // deepest nucleus = the heavy pair
        let deep = wd.hierarchy.nuclei_at(2);
        assert_eq!(deep.len(), 1);
        assert_eq!(wd.threshold(deep[0]), 10);
        let mut cells = wd.hierarchy.nucleus_cells(deep[0]);
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1]);
    }

    #[test]
    fn connectivity_still_matters_with_weights() {
        // two weighted triangles joined by a light path: one threshold-2
        // subgraph by λʷ values, but two *connected* weighted cores —
        // the §3.1 point, weighted edition.
        let g = CsrGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (4, 5),
                (5, 6),
                (4, 6),
                (2, 3),
                (3, 4),
            ],
        );
        let mut weights = vec![2u64; g.m()];
        let light1 = g.edge_id(2, 3).unwrap() as usize;
        let light2 = g.edge_id(3, 4).unwrap() as usize;
        weights[light1] = 1;
        weights[light2] = 1;
        let wd = weighted_core_decomposition(&g, &weights);
        wd.hierarchy.validate().expect("valid");
        let top_rank = wd.hierarchy.max_lambda();
        let deep = wd.hierarchy.nuclei_at(top_rank);
        assert_eq!(deep.len(), 2, "two connected heavy cores");
    }

    #[test]
    #[should_panic]
    fn weight_arity_is_checked() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        weighted_core_numbers(&g, &[1]);
    }

    #[test]
    fn zero_weight_edges_do_not_support_cores() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let wl = weighted_core_numbers(&g, &[0, 0, 0]);
        assert_eq!(wl, vec![0, 0, 0]);
        let wd = weighted_core_decomposition(&g, &[0, 0, 0]);
        assert_eq!(wd.hierarchy.nucleus_count(), 0);
    }
}
