//! The hierarchy-skeleton: sub-nuclei plus the root-augmented forest.
//!
//! Both DFT (Alg. 5/6) and FND (Alg. 8/9) build this structure — a
//! growable set of *sub-nucleus* nodes (`T_{r,s}` for DFT, possibly
//! non-maximal `T*_{r,s}` for FND), each with a λ value, wired together
//! by a [`RootedForest`]: `parent` links spell the skeleton tree, `root`
//! links give fast greatest-ancestor lookups. [`Skeleton::into_raw`]
//! contracts equal-λ chains into one node per k-(r,s) nucleus.

use nucleus_dsf::RootedForest;

use crate::hierarchy::{RawHierarchy, NO_NODE};

/// Growable skeleton: one entry per sub-nucleus, plus the per-cell
/// `comp` assignment.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// λ of each sub-nucleus.
    pub lambda: Vec<u32>,
    /// parent/root/rank pointers (see [`RootedForest`]).
    pub forest: RootedForest,
    /// Sub-nucleus id of every cell ([`NO_NODE`] = unassigned / λ = 0).
    pub comp: Vec<u32>,
}

impl Skeleton {
    /// Empty skeleton over `cell_count` cells.
    pub fn new(cell_count: usize) -> Self {
        Skeleton {
            lambda: Vec::new(),
            forest: RootedForest::new(),
            comp: vec![NO_NODE; cell_count],
        }
    }

    /// Number of sub-nuclei created so far (|T| for DFT, |T*| for FND).
    pub fn len(&self) -> usize {
        self.lambda.len()
    }

    /// True when no sub-nucleus exists.
    pub fn is_empty(&self) -> bool {
        self.lambda.is_empty()
    }

    /// Creates a sub-nucleus with the given λ; returns its id.
    pub fn new_subnucleus(&mut self, lambda: u32) -> u32 {
        let id = self.forest.push();
        debug_assert_eq!(id as usize, self.lambda.len());
        self.lambda.push(lambda);
        id
    }

    /// Contracts equal-λ parent chains and emits a [`RawHierarchy`]:
    /// one raw node per k-(r,s) nucleus (= per equal-λ connected group of
    /// sub-nuclei), parented at the first strictly-smaller-λ ancestor.
    pub fn into_raw(&mut self) -> RawHierarchy {
        let n = self.lambda.len();
        // rep[i]: the top of i's equal-λ parent chain, path-compressed.
        let mut rep = vec![NO_NODE; n];
        let mut path: Vec<u32> = Vec::new();
        for i in 0..n as u32 {
            if rep[i as usize] != NO_NODE {
                continue;
            }
            path.clear();
            let mut cur = i;
            let top = loop {
                if rep[cur as usize] != NO_NODE {
                    break rep[cur as usize];
                }
                match self.forest.parent(cur) {
                    Some(p) if self.lambda[p as usize] == self.lambda[cur as usize] => {
                        path.push(cur);
                        cur = p;
                    }
                    _ => break cur,
                }
            };
            for &x in &path {
                rep[x as usize] = top;
            }
            rep[cur as usize] = top;
        }
        // Raw node per representative.
        let mut raw = RawHierarchy::default();
        let mut raw_id = vec![NO_NODE; n];
        for i in 0..n {
            if rep[i] == i as u32 {
                raw_id[i] = raw.push(self.lambda[i], NO_NODE, Vec::new());
            }
        }
        // Parents: a representative's skeleton parent (if any) has a
        // strictly smaller λ; map it through its own representative.
        for i in 0..n {
            if rep[i] != i as u32 {
                continue;
            }
            if let Some(p) = self.forest.parent(i as u32) {
                debug_assert!(
                    self.lambda[p as usize] < self.lambda[i],
                    "skeleton parent must have smaller λ after contraction"
                );
                let p_rep = rep[p as usize];
                raw.nodes[raw_id[i] as usize].parent = raw_id[p_rep as usize];
            }
        }
        // Cells.
        for (cell, &c) in self.comp.iter().enumerate() {
            if c != NO_NODE {
                let owner = raw_id[rep[c as usize] as usize];
                raw.nodes[owner as usize].cells.push(cell as u32);
            }
        }
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_subnucleus_becomes_one_node() {
        let mut sk = Skeleton::new(3);
        let a = sk.new_subnucleus(2);
        sk.comp = vec![a, a, NO_NODE];
        let raw = sk.into_raw();
        assert_eq!(raw.nodes.len(), 1);
        assert_eq!(raw.nodes[0].lambda, 2);
        assert_eq!(raw.nodes[0].cells, vec![0, 1]);
        assert_eq!(raw.nodes[0].parent, NO_NODE);
    }

    #[test]
    fn equal_lambda_union_contracts() {
        let mut sk = Skeleton::new(4);
        let a = sk.new_subnucleus(3);
        let b = sk.new_subnucleus(3);
        sk.forest.union_r(a, b);
        sk.comp = vec![a, a, b, b];
        let raw = sk.into_raw();
        // one raw node per equal-λ group: a and b contracted together
        assert_eq!(raw.nodes.len(), 1);
        assert_eq!(raw.nodes[0].cells.len(), 4);
        assert_eq!(raw.nodes[0].lambda, 3);
    }

    #[test]
    fn cross_level_attach_becomes_parent() {
        let mut sk = Skeleton::new(4);
        let hi = sk.new_subnucleus(5); // deeper nucleus
        let lo = sk.new_subnucleus(2); // enclosing nucleus
        sk.forest.attach(hi, lo);
        sk.comp = vec![hi, hi, lo, lo];
        let raw = sk.into_raw();
        assert_eq!(raw.nodes.len(), 2);
        let hi_node = raw.nodes.iter().position(|n| n.lambda == 5).unwrap();
        let lo_node = raw.nodes.iter().position(|n| n.lambda == 2).unwrap();
        assert_eq!(raw.nodes[hi_node].parent, lo_node as u32);
        assert_eq!(raw.nodes[lo_node].parent, NO_NODE);
    }

    #[test]
    fn mixed_chain_contracts_through_unions() {
        // two λ=4 groups merged, attached under a λ=1 group
        let mut sk = Skeleton::new(6);
        let a = sk.new_subnucleus(4);
        let b = sk.new_subnucleus(4);
        let c = sk.new_subnucleus(1);
        let top = sk.forest.union_r(a, b);
        sk.forest.attach(top, c);
        sk.comp = vec![a, a, b, b, c, c];
        let raw = sk.into_raw();
        let four: Vec<_> = raw
            .nodes
            .iter()
            .filter(|n| n.lambda == 4 && !n.cells.is_empty())
            .collect();
        assert_eq!(four.len(), 1);
        assert_eq!(four[0].cells.len(), 4);
        let one = raw.nodes.iter().position(|n| n.lambda == 1).unwrap() as u32;
        assert_eq!(four[0].parent, one);
    }
}
