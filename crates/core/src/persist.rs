//! Saving and loading prepared sessions: the on-disk index behind
//! `nucleus prepare --out` / `nucleus decompose --index`.
//!
//! `results/BENCH_prepared_reuse_*.json` show that preparation (clique
//! enumeration plus the [`ContainerIndex`] build) dominates end-to-end
//! decomposition time, yet a process restart used to throw that work
//! away. This module persists a materialized [`Prepared`] session's
//! index in the format of [`nucleus_graph::persist_io`] (see its module
//! docs for the exact byte layout and the version-bump policy) and
//! loads it back as a [`PreparedIndex`] — a fully *validated* image
//! whose records are then served zero-copy through
//! [`NucleusBuilder::prepare_from_index`](crate::session::NucleusBuilder::prepare_from_index).
//!
//! # Trust and invalidation
//!
//! Loading never trusts the bytes: [`PreparedIndex::load`] verifies the
//! magic, format version, whole-file and per-section checksums, section
//! bounds, record-structure invariants, and that the stored (r, s) pair
//! names a supported [`Kind`] whose record arity matches. Binding the
//! index to a graph additionally checks the stored *fingerprint*
//! (vertex count, edge count, degree-sequence hash) against the live
//! graph. Each failure mode maps to a typed error:
//!
//! * [`CoreError::IndexCorrupt`] — the bytes are structurally bad;
//! * [`CoreError::IndexMismatch`] — valid bytes, wrong graph or kind;
//! * [`CoreError::IndexIo`] — the file could not be read or written.
//!
//! The fingerprint catches any change to n, m or a degree, but a
//! degree-preserving rewire is invisible to it — callers needing a
//! stronger guarantee should hash the graph file itself.
//!
//! ```no_run
//! use nucleus_core::prelude::*;
//!
//! # fn demo(g: &nucleus_graph::CsrGraph) -> Result<(), nucleus_core::CoreError> {
//! // Pay for preparation once …
//! let prepared = Nucleus::builder(g)
//!     .kind(Kind::Truss)
//!     .backend(Backend::Materialized)
//!     .prepare()?;
//! prepared.save("graph.truss.nidx")?;
//!
//! // … and skip it on every later run (usually another process).
//! let index = PreparedIndex::load("graph.truss.nidx")?;
//! let restored = Nucleus::builder(g).prepare_from_index(index)?;
//! let d = restored.run(Algorithm::Dft)?;
//! # let _ = d;
//! # Ok(())
//! # }
//! ```

use std::path::Path;

use nucleus_graph::persist_io::{graph_fingerprint, IndexImage};
use nucleus_graph::{CsrGraph, GraphError};

use crate::decompose::Kind;
use crate::error::CoreError;
use crate::session::Prepared;
use crate::space::materialized::record_arity;
use crate::space::ContainerIndex;

/// Maps a graph-crate loader error onto the typed core family: I/O
/// failures keep their own variant, everything else means the bytes are
/// bad.
fn map_graph_error(path: &str, e: GraphError) -> CoreError {
    match e {
        GraphError::Io(io) => CoreError::IndexIo {
            path: path.to_string(),
            reason: io.to_string(),
        },
        other => CoreError::IndexCorrupt {
            path: path.to_string(),
            reason: other.to_string(),
        },
    }
}

/// A loaded, validated persisted index, not yet bound to a graph.
///
/// Produced by [`PreparedIndex::load`]; consumed by
/// [`NucleusBuilder::prepare_from_index`](crate::session::NucleusBuilder::prepare_from_index),
/// which checks the fingerprint against the builder's graph and then
/// serves containers zero-copy off the image.
#[derive(Clone, Debug)]
pub struct PreparedIndex {
    image: IndexImage,
    kind: Kind,
    path: String,
}

impl PreparedIndex {
    /// Reads and validates the index file at `path`.
    ///
    /// # Errors
    /// [`CoreError::IndexIo`] when the file cannot be read;
    /// [`CoreError::IndexCorrupt`] when the bytes fail any structural
    /// check (see the [module docs](self)); [`CoreError::IndexMismatch`]
    /// when the stored (r, s) pair names no supported kind.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        let label = path.as_ref().display().to_string();
        let image = IndexImage::read_file(path.as_ref()).map_err(|e| map_graph_error(&label, e))?;
        Self::from_image(image, label)
    }

    /// Validates an in-memory byte image under a diagnostic `label`
    /// (used in error messages where a file path would be). This is the
    /// hook fuzz tests — and a future mmap backend — feed bytes through.
    pub fn from_bytes(bytes: Vec<u8>, label: &str) -> Result<Self, CoreError> {
        let image = IndexImage::from_bytes(bytes).map_err(|e| map_graph_error(label, e))?;
        Self::from_image(image, label.to_string())
    }

    fn from_image(image: IndexImage, path: String) -> Result<Self, CoreError> {
        let h = *image.header();
        let kind = Kind::all()
            .into_iter()
            .find(|k| k.rs() == (h.r, h.s))
            .ok_or_else(|| CoreError::IndexMismatch {
                path: path.clone(),
                reason: format!("stored family ({},{}) is not a supported kind", h.r, h.s),
            })?;
        let expect_arity = record_arity(h.r, h.s);
        if h.arity as usize != expect_arity {
            return Err(CoreError::IndexCorrupt {
                path,
                reason: format!(
                    "stored arity {} contradicts family ({},{}) (needs {expect_arity})",
                    h.arity, h.r, h.s
                ),
            });
        }
        Ok(PreparedIndex { image, kind, path })
    }

    /// The (r, s) family the index was built for.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Number of peeling cells the index covers.
    pub fn cells(&self) -> usize {
        self.image.header().cells as usize
    }

    /// Total container records (Σ ω over all cells).
    pub fn containers(&self) -> u64 {
        self.image.header().records
    }

    /// Size of the loaded image in bytes.
    pub fn bytes(&self) -> usize {
        self.image.len()
    }

    /// Where the index was loaded from (a path, or the label given to
    /// [`PreparedIndex::from_bytes`]).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Checks the stored graph fingerprint against `g`.
    ///
    /// # Errors
    /// [`CoreError::IndexMismatch`] naming the first disagreeing
    /// component (n, m, or the degree-sequence hash).
    pub fn matches(&self, g: &CsrGraph) -> Result<(), CoreError> {
        self.matches_fingerprint(&graph_fingerprint(g))
    }

    /// Checks the stored graph fingerprint against an already-computed
    /// `live` fingerprint — e.g. `DynamicGraph::fingerprint()` from the
    /// `nucleus-dynamic` crate, so mutable-graph callers can fail
    /// closed without materialising a CSR snapshot first.
    ///
    /// # Errors
    /// [`CoreError::IndexMismatch`], as for [`PreparedIndex::matches`].
    pub fn matches_fingerprint(
        &self,
        live: &nucleus_graph::persist_io::GraphFingerprint,
    ) -> Result<(), CoreError> {
        let stored = self.image.header().fingerprint;
        let reason = if stored.n != live.n {
            format!(
                "index was built for n = {}, graph has n = {}",
                stored.n, live.n
            )
        } else if stored.m != live.m {
            format!(
                "index was built for m = {}, graph has m = {}",
                stored.m, live.m
            )
        } else if stored.degree_hash != live.degree_hash {
            "degree sequence changed since the index was built".to_string()
        } else {
            return Ok(());
        };
        Err(CoreError::IndexMismatch {
            path: self.path.clone(),
            reason,
        })
    }

    /// Converts into the [`ContainerIndex`] a session peels through.
    pub(crate) fn into_container_index(self) -> ContainerIndex {
        ContainerIndex::from_image(self.image)
    }
}

impl Prepared<'_> {
    /// Writes this session's [`ContainerIndex`] to `path` in the
    /// persisted format, stamped with the graph's fingerprint, so a
    /// later process can [`PreparedIndex::load`] it instead of
    /// re-preparing.
    ///
    /// # Errors
    /// [`CoreError::InvalidOptions`] on lazy sessions (there is no
    /// index to save); [`CoreError::IndexIo`] when the file cannot be
    /// written.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CoreError> {
        let index = self
            .container_index()
            .ok_or_else(|| CoreError::InvalidOptions {
                reason: "only materialized sessions can be saved; \
                     prepare with Backend::Materialized (or Auto on a graph under the cap)"
                    .to_string(),
            })?;
        let label = path.as_ref().display().to_string();
        let (r, s) = self.kind().rs();
        let fp = graph_fingerprint(self.graph());
        let file = std::fs::File::create(path.as_ref()).map_err(|e| CoreError::IndexIo {
            path: label.clone(),
            reason: e.to_string(),
        })?;
        let mut w = std::io::BufWriter::new(file);
        index
            .write_to(&mut w, r, s, fp)
            .map_err(|e| map_graph_error(&label, e))?;
        use std::io::Write as _;
        w.flush().map_err(|e| CoreError::IndexIo {
            path: label,
            reason: e.to_string(),
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{Algorithm, Backend, Kind};
    use crate::session::Nucleus;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nucleus-persist-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip_matches_in_memory() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("truss.nidx");
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap();
        prepared.save(&path).unwrap();

        let index = PreparedIndex::load(&path).unwrap();
        assert_eq!(index.kind(), Kind::Truss);
        assert_eq!(index.cells(), g.m());
        assert!(index.containers() > 0);
        assert!(index.bytes() > 0);
        index.matches(&g).unwrap();

        let restored = Nucleus::builder(&g).prepare_from_index(index).unwrap();
        assert_eq!(restored.kind(), Kind::Truss);
        assert_eq!(restored.backend(), Backend::Materialized);
        let plan = restored.plan(Algorithm::Dft).unwrap();
        assert!(plan.backend_reason.contains("loaded index"), "{plan}");
        for &algo in Algorithm::for_kind(Kind::Truss) {
            let fresh = prepared.run(algo).unwrap();
            let loaded = restored.run(algo).unwrap();
            assert_eq!(fresh.peeling.lambda, loaded.peeling.lambda, "{algo} λ");
            assert_eq!(fresh.peeling.order, loaded.peeling.order, "{algo} order");
            assert_eq!(fresh.hierarchy, loaded.hierarchy, "{algo} hierarchy");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resaving_a_loaded_index_emits_identical_bytes() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("resave.nidx");
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Core)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap();
        prepared.save(&path).unwrap();
        let original = std::fs::read(&path).unwrap();
        let restored = Nucleus::builder(&g)
            .prepare_from_index(PreparedIndex::load(&path).unwrap())
            .unwrap();
        let path2 = tmp("resave2.nidx");
        restored.save(&path2).unwrap();
        assert_eq!(original, std::fs::read(&path2).unwrap());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn save_on_lazy_session_errors() {
        let g = nucleus_gen::karate::karate_club();
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Lazy)
            .prepare()
            .unwrap();
        let err = prepared.save(tmp("lazy.nidx")).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        assert!(err.to_string().contains("materialized"), "{err}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = PreparedIndex::load(tmp("does-not-exist.nidx")).unwrap_err();
        assert!(matches!(err, CoreError::IndexIo { .. }), "{err}");
    }

    #[test]
    fn mismatched_graph_is_rejected_with_typed_error() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("mismatch.nidx");
        Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap()
            .save(&path)
            .unwrap();
        let index = PreparedIndex::load(&path).unwrap();
        // Same vertex count, one extra edge: m and the degrees change.
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        edges.push((0, 9));
        edges.sort_unstable();
        edges.dedup();
        let edited = CsrGraph::from_edges(g.n(), &edges);
        assert_ne!(edited.m(), g.m(), "test graph must actually change");
        let err = index.matches(&edited).unwrap_err();
        assert!(matches!(err, CoreError::IndexMismatch { .. }), "{err}");
        assert!(err.to_string().contains("does not match"), "{err}");
        let err = Nucleus::builder(&edited)
            .prepare_from_index(index)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CoreError::IndexMismatch { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn matches_fingerprint_fails_closed_after_mutation() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("fp-mutation.nidx");
        Nucleus::builder(&g)
            .kind(Kind::Core)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap()
            .save(&path)
            .unwrap();
        let index = PreparedIndex::load(&path).unwrap();
        index.matches_fingerprint(&graph_fingerprint(&g)).unwrap();
        // A same-n, same-m rewiring still fails: the degree hash drifts.
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        let swap = edges
            .iter()
            .position(|&(u, v)| u == 0 && !edges.contains(&(1, v)) && v > 1)
            .unwrap();
        edges[swap] = (1, edges[swap].1);
        edges.sort_unstable();
        let rewired = CsrGraph::from_edges(g.n(), &edges);
        assert_eq!(rewired.m(), g.m());
        let err = index
            .matches_fingerprint(&graph_fingerprint(&rewired))
            .unwrap_err();
        assert!(matches!(err, CoreError::IndexMismatch { .. }), "{err}");
        assert!(err.to_string().contains("degree sequence"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_kind_is_overridden_by_the_index() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("kind-override.nidx");
        Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap()
            .save(&path)
            .unwrap();
        let restored = Nucleus::builder(&g)
            .kind(Kind::Core) // ignored: the file says truss
            .prepare_from_index(PreparedIndex::load(&path).unwrap())
            .unwrap();
        assert_eq!(restored.kind(), Kind::Truss);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn explicit_lazy_backend_conflicts_with_an_index() {
        let g = nucleus_gen::karate::karate_club();
        let path = tmp("lazy-conflict.nidx");
        Nucleus::builder(&g)
            .kind(Kind::Core)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap()
            .save(&path)
            .unwrap();
        let err = Nucleus::builder(&g)
            .backend(Backend::Lazy)
            .prepare_from_index(PreparedIndex::load(&path).unwrap())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
