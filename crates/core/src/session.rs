//! The prepared-pipeline API: build a peeling space **once**, then run
//! any number of hierarchy algorithms (and baselines) over it.
//!
//! The paper's framework is generic in two orthogonal directions — the
//! (r, s) family and the hierarchy algorithm — and the expensive part
//! of a run is almost never the algorithm: it is enumerating the
//! cliques behind the space (triangles for (2,3)/(1,3), four-cliques
//! for (3,4)/(2,4)) and, on materialized runs, building the
//! [`ContainerIndex`]. The one-shot [`crate::decompose::decompose`]
//! rebuilds all of that per call; a serving system that answers many
//! queries — or a comparison workload that runs Naive, DFT *and* FND on
//! one graph — should pay for it once:
//!
//! ```
//! use nucleus_core::prelude::*;
//!
//! let g = nucleus_graph::CsrGraph::from_edges(
//!     5,
//!     &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)],
//! );
//! let prepared = Nucleus::builder(&g).kind(Kind::Truss).prepare()?;
//! println!("{}", prepared.plan(Algorithm::Dft)?.explain());
//! let dft = prepared.run(Algorithm::Dft)?; // reuses the cached space
//! let fnd = prepared.run(Algorithm::Fnd)?; // ... and again
//! assert_eq!(dft.hierarchy, fnd.hierarchy);
//! # Ok::<(), nucleus_core::CoreError>(())
//! ```
//!
//! # Stages
//!
//! 1. **[`Nucleus::builder`]** collects the choices of
//!    [`crate::decompose::DecomposeOptions`] plus the [`Kind`].
//! 2. **[`NucleusBuilder::prepare`]** does the expensive, run-invariant
//!    work: builds the space (clique enumeration, ω counts), resolves
//!    the [`Backend`] policy (including the `Auto` size estimate) and,
//!    when materialized, builds the [`ContainerIndex`]. It fails fast
//!    on option combinations that no run could ever satisfy
//!    (frontier engine × explicit lazy backend).
//! 3. **[`Prepared::run`]** executes one algorithm over the cached
//!    space/index — bit-identical to the one-shot API — and can be
//!    called any number of times; runs never mutate the prepared state.
//!    [`Prepared::plan`] returns the same decision as a [`Plan`]
//!    without running, and [`Prepared::hypo_baseline`] runs the Hypo
//!    baseline over the same cached space.
//!
//! Validation is centralized in [`crate::plan::validate`]: the checks
//! that involve the algorithm (frontier × LCPS, LCPS × non-core)
//! happen at `plan`/`run` time, since one `Prepared` may serve
//! different algorithms.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use nucleus_graph::CsrGraph;

use crate::algo::dft::dft;
use crate::algo::fnd::{fnd, fnd_parallel_with, FndOptions};
use crate::algo::hypo::hypo_sweep;
use crate::algo::lcps::lcps;
use crate::algo::naive::naive;
use crate::decompose::{
    Algorithm, Backend, DecomposeOptions, Decomposition, Kind, PeelEngine, PhaseTimes,
    SkeletonStats,
};
use crate::error::CoreError;
use crate::peel::{peel, peel_parallel_with, FrontierOptions};
use crate::plan::{self, format_bytes, Plan};
use crate::space::{
    ContainerIndex, EdgeK4Space, EdgeSpace, IndexedSpace, PeelBackend, PeelSpace, TriangleSpace,
    VertexSpace, VertexTriangleSpace,
};

/// The five lazy spaces behind one door, so [`Prepared`] can own any of
/// them by value while the algorithms stay monomorphized per space.
enum AnySpace<'g> {
    Vertex(VertexSpace<'g>),
    VertexTriangle(VertexTriangleSpace<'g>),
    Edge(EdgeSpace<'g>),
    EdgeK4(EdgeK4Space<'g>),
    Triangle(TriangleSpace<'g>),
}

impl<'g> AnySpace<'g> {
    fn build(g: &'g CsrGraph, kind: Kind, threads: usize) -> Self {
        match kind {
            Kind::Core => AnySpace::Vertex(VertexSpace::with_threads(g, threads)),
            Kind::VertexTriangle => {
                AnySpace::VertexTriangle(VertexTriangleSpace::with_threads(g, threads))
            }
            Kind::Truss => AnySpace::Edge(EdgeSpace::with_threads(g, threads)),
            Kind::EdgeK4 => AnySpace::EdgeK4(EdgeK4Space::with_threads(g, threads)),
            Kind::Nucleus34 => AnySpace::Triangle(TriangleSpace::with_threads(g, threads)),
        }
    }
}

/// How a session's prepare phase runs its cell enumeration — the string
/// [`Plan::explain`] reports on the `enumeration:` line.
fn enumeration_mode(kind: Kind, threads: usize) -> String {
    if kind == Kind::Core {
        // ω here is a plain degree read; there is no enumeration pass
        "serial (degree read, nothing to enumerate)".to_string()
    } else if threads > 1 {
        format!("parallel (t={threads})")
    } else {
        "serial".to_string()
    }
}

/// Dispatches `$body` with `$s` bound to the concrete lazy space.
/// A macro rather than a visitor so `$body` monomorphizes per space —
/// the same zero-overhead dispatch the one-shot API had.
macro_rules! with_space {
    ($space:expr, $s:ident => $body:expr) => {
        match &$space {
            AnySpace::Vertex($s) => $body,
            AnySpace::VertexTriangle($s) => $body,
            AnySpace::Edge($s) => $body,
            AnySpace::EdgeK4($s) => $body,
            AnySpace::Triangle($s) => $body,
        }
    };
}

/// Entry point of the prepared-pipeline API; see the [module docs]
/// (self) for the full walkthrough.
pub struct Nucleus;

impl Nucleus {
    /// Starts configuring a decomposition session over `g`. Defaults:
    /// [`Kind::Core`], automatic backend and engine, all CPUs.
    pub fn builder(g: &CsrGraph) -> NucleusBuilder<'_> {
        NucleusBuilder {
            g,
            kind: Kind::Core,
            options: DecomposeOptions::default(),
        }
    }
}

/// Builder for a [`Prepared`] session: the same knobs as
/// [`DecomposeOptions`] plus the [`Kind`], applied fluently.
#[derive(Clone, Copy, Debug)]
pub struct NucleusBuilder<'g> {
    g: &'g CsrGraph,
    kind: Kind,
    options: DecomposeOptions,
}

impl<'g> NucleusBuilder<'g> {
    /// Selects the (r, s) family (default [`Kind::Core`]).
    pub fn kind(mut self, kind: Kind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the backend policy (default [`Backend::Auto`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.options.backend = backend;
        self
    }

    /// Selects the engine policy (default [`PeelEngine::Auto`]).
    pub fn engine(mut self, engine: PeelEngine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Caps worker threads (default `0` = all CPUs).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Sets the hybrid-round threshold for the frontier engine: λ-levels
    /// whose opening frontier has fewer cells than this drain serially
    /// (default [`FrontierOptions::DEFAULT_SERIAL_ROUND_THRESHOLD`];
    /// `0` disables the hybrid drain entirely).
    pub fn frontier_serial_below(mut self, cells: usize) -> Self {
        self.options.frontier_serial_below = cells;
        self
    }

    /// Applies a whole [`DecomposeOptions`] at once (keeps the kind).
    pub fn options(mut self, options: DecomposeOptions) -> Self {
        self.options = options;
        self
    }

    /// Does the run-invariant heavy lifting: builds the space (clique
    /// enumeration + ω counts), resolves the backend policy, and builds
    /// the [`ContainerIndex`] when the resolution says materialize.
    ///
    /// # Errors
    /// [`CoreError::InvalidOptions`] when [`PeelEngine::Frontier`] was
    /// combined with an explicit [`Backend::Lazy`] — the one conflict
    /// that no later `run` could resolve. Algorithm-dependent conflicts
    /// surface from [`Prepared::run`] / [`Prepared::plan`].
    pub fn prepare(self) -> Result<Prepared<'g>, CoreError> {
        let NucleusBuilder { g, kind, options } = self;
        if options.engine == PeelEngine::Frontier && options.backend == Backend::Lazy {
            return Err(plan::frontier_lazy_conflict());
        }
        let threads = options.effective_threads();
        let t0 = Instant::now();
        let space = AnySpace::build(g, kind, threads);
        let cells = with_space!(space, s => s.cell_count());
        // Explicit-lazy sessions never touch `degrees()` here: the
        // one-shot lazy path never did (peeling computes ω itself per
        // run), so doing it eagerly would double the setup cost the
        // wrappers promise to preserve. The space facts defer to first
        // use instead (`Prepared::facts`).
        let (facts, backend_reason, index) = if options.backend == Backend::Lazy {
            (OnceLock::new(), "explicitly requested".to_string(), None)
        } else {
            with_space!(space, s => {
                let counts = s.degrees();
                let containers: u64 = counts.iter().map(|&c| c as u64).sum();
                let est = ContainerIndex::estimate_bytes_from(s.r(), s.s(), &counts);
                let (materialize, reason) =
                    resolve_backend(options.backend, options.engine, est);
                let index =
                    materialize.then(|| ContainerIndex::build_with_counts(s, counts, threads));
                let facts = OnceLock::new();
                let _ = facts.set((containers, est));
                (facts, reason, index)
            })
        };
        Ok(Prepared {
            g,
            kind,
            backend: if index.is_some() {
                Backend::Materialized
            } else {
                Backend::Lazy
            },
            engine: options.engine,
            threads,
            frontier_serial_below: options.frontier_serial_below,
            space,
            index,
            cells,
            facts,
            backend_reason,
            enumeration: enumeration_mode(kind, threads),
            prep_time: t0.elapsed(),
        })
    }

    /// Like [`NucleusBuilder::prepare`], but the [`ContainerIndex`]
    /// comes from a persisted file ([`crate::persist::PreparedIndex`])
    /// instead of being rebuilt — the load path behind
    /// `nucleus decompose --index`. Only the cheap parts of preparation
    /// remain: the lazy space is still constructed (it answers identity
    /// queries like `cell_vertices`), but clique-per-cell enumeration
    /// and the index build are skipped.
    ///
    /// The session's kind is taken **from the index** — the stored
    /// (r, s) pair is authoritative; a kind set on the builder is
    /// ignored (callers that care should compare
    /// [`crate::persist::PreparedIndex::kind`] first, as the CLI does).
    ///
    /// # Errors
    /// [`CoreError::InvalidOptions`] when the builder explicitly asked
    /// for [`Backend::Lazy`] (contradicts loading an index);
    /// [`CoreError::IndexMismatch`] when the index's graph fingerprint
    /// or cell count does not match `g`.
    pub fn prepare_from_index(
        self,
        index: crate::persist::PreparedIndex,
    ) -> Result<Prepared<'g>, CoreError> {
        let NucleusBuilder {
            g,
            kind: _,
            options,
        } = self;
        if options.backend == Backend::Lazy {
            return Err(CoreError::InvalidOptions {
                reason: "the lazy backend contradicts loading a persisted index; \
                         drop the explicit Backend::Lazy"
                    .to_string(),
            });
        }
        index.matches(g)?;
        let kind = index.kind();
        let threads = options.effective_threads();
        let t0 = Instant::now();
        let space = AnySpace::build(g, kind, threads);
        let cells = with_space!(space, s => s.cell_count());
        // The fingerprint pins n, m and the degree sequence, which
        // determines the cell count for every kind except the
        // triangle-celled ones — so cross-check the cell count too
        // rather than trusting the file.
        if cells != index.cells() {
            return Err(CoreError::IndexMismatch {
                path: index.path().to_string(),
                reason: format!(
                    "index covers {} cells, the graph's {} space has {}",
                    index.cells(),
                    kind,
                    cells
                ),
            });
        }
        let backend_reason = format!("loaded index from {}", index.path());
        let containers = index.containers();
        let bytes = index.bytes();
        let container_index = index.into_container_index();
        let facts = OnceLock::new();
        let _ = facts.set((containers, bytes));
        Ok(Prepared {
            g,
            kind,
            backend: Backend::Materialized,
            engine: options.engine,
            threads,
            frontier_serial_below: options.frontier_serial_below,
            space,
            index: Some(container_index),
            cells,
            facts,
            backend_reason,
            enumeration: "skipped (persisted index)".to_string(),
            prep_time: t0.elapsed(),
        })
    }
}

/// Resolves the backend policy into a concrete materialize/lazy
/// decision plus the human-readable "why" that [`Plan::explain`]
/// reports. An explicit frontier-engine request forces materialization
/// (the engine is defined over the flat index), even past the `Auto`
/// size cap — mirroring the one-shot API.
fn resolve_backend(backend: Backend, engine: PeelEngine, est_bytes: usize) -> (bool, String) {
    if engine == PeelEngine::Frontier {
        return (
            true,
            "forced by the frontier engine (defined over the flat index)".to_string(),
        );
    }
    let materialize = backend.wants_index(|| est_bytes);
    let reason = match backend {
        Backend::Lazy | Backend::Materialized => "explicitly requested".to_string(),
        Backend::Auto => {
            let cap = format_bytes(Backend::AUTO_BYTE_CAP);
            let est = format_bytes(est_bytes);
            if materialize {
                format!("auto: estimated index {est} ≤ {cap} cap")
            } else {
                format!("auto: estimated index {est} exceeds the {cap} cap")
            }
        }
    };
    (materialize, reason)
}

/// A prepared decomposition session: the space (and, when materialized,
/// its [`ContainerIndex`]) built once, ready to serve any number of
/// [`Prepared::run`] calls. Runs never mutate the prepared state, so a
/// `Prepared` behaves like an immutable snapshot of the graph's
/// (r, s) structure.
pub struct Prepared<'g> {
    g: &'g CsrGraph,
    kind: Kind,
    /// Resolved: `Lazy` or `Materialized`, never `Auto`.
    backend: Backend,
    /// As requested (possibly `Auto`): the engine resolves per run,
    /// because it depends on the algorithm.
    engine: PeelEngine,
    threads: usize,
    /// Hybrid-round threshold handed to every frontier-engine run
    /// (see [`FrontierOptions::serial_round_threshold`]).
    frontier_serial_below: usize,
    space: AnySpace<'g>,
    index: Option<ContainerIndex>,
    cells: usize,
    /// `(Σ ω, estimated index bytes)` — filled at prepare time whenever
    /// the ω counts were computed anyway (auto/materialized sessions),
    /// deferred to first use on explicit-lazy ones.
    facts: OnceLock<(u64, usize)>,
    backend_reason: String,
    /// How prepare ran its cell enumeration (see `enumeration_mode`).
    enumeration: String,
    prep_time: Duration,
}

impl<'g> Prepared<'g> {
    /// The family this session decomposes.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// The resolved backend ([`Backend::Lazy`] or
    /// [`Backend::Materialized`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Effective worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of cells (K_r's) in the space.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Total containers (Σ ω over all cells). On explicit-lazy
    /// sessions the first call performs one container enumeration (the
    /// counts are not kept around otherwise — that is what "lazy"
    /// means); auto/materialized sessions recorded it during `prepare`.
    pub fn containers(&self) -> u64 {
        self.facts().0
    }

    /// Estimated [`ContainerIndex`] footprint in bytes (allocated only
    /// on materialized sessions). Same deferral as
    /// [`Prepared::containers`] on explicit-lazy sessions.
    pub fn estimated_index_bytes(&self) -> usize {
        self.facts().1
    }

    /// `(Σ ω, estimated index bytes)`, computing them on first use for
    /// explicit-lazy sessions.
    fn facts(&self) -> (u64, usize) {
        *self.facts.get_or_init(|| {
            with_space!(self.space, s => {
                let counts = s.degrees();
                let containers: u64 = counts.iter().map(|&c| c as u64).sum();
                let est = ContainerIndex::estimate_bytes_from(s.r(), s.s(), &counts);
                (containers, est)
            })
        })
    }

    /// Wall time spent in [`NucleusBuilder::prepare`] (space build, ω
    /// counts, index build). Every [`Prepared::run`] folds this into
    /// its reported peel phase, matching the one-shot API's accounting.
    pub fn prep_time(&self) -> Duration {
        self.prep_time
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.g
    }

    /// The session's [`ContainerIndex`], when materialized — what
    /// [`Prepared::save`](crate::persist) serializes.
    pub(crate) fn container_index(&self) -> Option<&ContainerIndex> {
        self.index.as_ref()
    }

    /// Resolves — without running — exactly what [`Prepared::run`]
    /// would do for `algorithm`: the concrete backend/engine, thread
    /// count, space sizes, and the reasons behind both `Auto`
    /// decisions.
    ///
    /// # Errors
    /// The same [`crate::plan::validate`] rejections `run` would
    /// report.
    pub fn plan(&self, algorithm: Algorithm) -> Result<Plan, CoreError> {
        let engine = self.resolve_engine(algorithm)?;
        let materialized = self.index.is_some();
        // Whenever the run will actually use the frontier engine, the
        // reason also reports the hybrid-round policy it runs under.
        let hybrid = if self.frontier_serial_below > 0 {
            format!("hybrid, serial below {}", self.frontier_serial_below)
        } else {
            "hybrid drain disabled".to_string()
        };
        let engine_reason = match self.engine {
            PeelEngine::Serial => "explicitly requested".to_string(),
            PeelEngine::Frontier => format!("explicitly requested ({hybrid})"),
            PeelEngine::Auto => {
                if engine == PeelEngine::Frontier {
                    format!(
                        "auto: frontier ({hybrid}) — materialized run, {} threads, {algorithm} \
                         rides the peel",
                        self.threads
                    )
                } else if !materialized {
                    "auto: serial (lazy backend re-enumerates containers per visit)".to_string()
                } else if self.threads <= 1 {
                    "auto: serial (single worker thread)".to_string()
                } else {
                    // Only LCPS lands here now: it walks the graph
                    // directly and never runs Set-λ.
                    format!("auto: serial (the frontier engine does not drive {algorithm})")
                }
            }
        };
        Ok(Plan {
            kind: self.kind,
            algorithm,
            backend: self.backend,
            engine,
            threads: self.threads,
            cells: self.cells,
            containers: self.containers(),
            index_bytes: self.estimated_index_bytes(),
            backend_reason: self.backend_reason.clone(),
            engine_reason,
            enumeration: self.enumeration.clone(),
        })
    }

    /// Validates `algorithm` against this session and resolves the
    /// engine for it — the decision core shared by [`Prepared::plan`]
    /// and [`Prepared::run`] (the latter skips the [`Plan`] facts,
    /// which may cost a container enumeration on lazy sessions).
    fn resolve_engine(&self, algorithm: Algorithm) -> Result<PeelEngine, CoreError> {
        plan::validate(self.kind, algorithm, self.backend, self.engine)?;
        Ok(self
            .engine
            .resolve(algorithm, self.index.is_some(), self.threads))
    }

    /// Runs one algorithm over the cached space, producing the same
    /// [`Decomposition`] the one-shot API would — bit-identical λ,
    /// order and hierarchy — with the preparation cost amortized across
    /// calls. The reported peel phase includes [`Prepared::prep_time`]
    /// so phase splits stay comparable with [`mod@crate::decompose`].
    ///
    /// # Errors
    /// See [`crate::plan::validate`].
    pub fn run(&self, algorithm: Algorithm) -> Result<Decomposition, CoreError> {
        let engine = self.resolve_engine(algorithm)?;
        if algorithm == Algorithm::Lcps {
            return Ok(self.run_lcps(engine));
        }
        Ok(with_space!(self.space, s => match &self.index {
            Some(index) => self.run_algo(&IndexedSpace::new(s, index), algorithm, engine),
            None => self.run_algo(s, algorithm, engine),
        }))
    }

    /// LCPS: peel over the cached backend, then the Matula–Beck
    /// priority search directly on the graph. [`Prepared::resolve_engine`]
    /// already proved `kind == Core`.
    fn run_lcps(&self, engine: PeelEngine) -> Decomposition {
        let t0 = Instant::now();
        let peeling = with_space!(self.space, s => match &self.index {
            Some(index) => peel(&IndexedSpace::new(s, index)),
            None => peel(s),
        });
        let peel_t = self.prep_time + t0.elapsed();
        let t1 = Instant::now();
        let hierarchy = lcps(self.g, &peeling);
        let post_t = t1.elapsed();
        Decomposition {
            kind: self.kind,
            algorithm: Algorithm::Lcps,
            backend: self.backend,
            engine,
            stats: SkeletonStats {
                subnuclei: hierarchy.nucleus_count(),
                adj_connections: 0,
            },
            peeling,
            hierarchy,
            times: PhaseTimes {
                peel: peel_t,
                post: post_t,
            },
        }
    }

    /// The algorithm dispatch, monomorphized per space *and* backend —
    /// the exact hot path the pre-session `decompose_with` ran, now fed
    /// from the cached space. `engine` is already resolved (never
    /// `Auto`).
    fn run_algo<S: PeelSpace + Sync>(
        &self,
        space: &S,
        algorithm: Algorithm,
        engine: PeelEngine,
    ) -> Decomposition {
        match algorithm {
            // `resolve_engine` rejects LCPS×non-core and `run` branches
            // LCPS off before dispatching to a backend.
            Algorithm::Lcps => unreachable!("LCPS never reaches backend dispatch"),
            Algorithm::Fnd => {
                let out = match engine {
                    PeelEngine::Frontier => fnd_parallel_with(
                        space,
                        FndOptions::default(),
                        FrontierOptions {
                            threads: self.threads,
                            serial_round_threshold: self.frontier_serial_below,
                            ..FrontierOptions::default()
                        },
                    ),
                    _ => fnd(space),
                };
                Decomposition {
                    kind: self.kind,
                    algorithm,
                    backend: self.backend,
                    engine,
                    peeling: out.peeling,
                    hierarchy: out.hierarchy,
                    times: PhaseTimes {
                        peel: self.prep_time + out.peel_time,
                        post: out.post_time,
                    },
                    stats: SkeletonStats {
                        subnuclei: out.stats.subnuclei,
                        adj_connections: out.stats.adj_connections,
                    },
                }
            }
            Algorithm::Naive | Algorithm::Dft => {
                let t0 = Instant::now();
                let peeling = match engine {
                    PeelEngine::Frontier => peel_parallel_with(
                        space,
                        FrontierOptions {
                            threads: self.threads,
                            serial_round_threshold: self.frontier_serial_below,
                            ..FrontierOptions::default()
                        },
                    ),
                    _ => peel(space),
                };
                let peel_t = self.prep_time + t0.elapsed();
                let t1 = Instant::now();
                let (hierarchy, subnuclei) = match algorithm {
                    Algorithm::Naive => {
                        let h = naive(space, &peeling);
                        let c = h.nucleus_count();
                        (h, c)
                    }
                    _ => {
                        let (h, st) = dft(space, &peeling);
                        (h, st.subnuclei)
                    }
                };
                let post_t = t1.elapsed();
                Decomposition {
                    kind: self.kind,
                    algorithm,
                    backend: self.backend,
                    engine,
                    peeling,
                    hierarchy,
                    times: PhaseTimes {
                        peel: peel_t,
                        post: post_t,
                    },
                    stats: SkeletonStats {
                        subnuclei,
                        adj_connections: 0,
                    },
                }
            }
        }
    }

    /// Distinct vertices spanned by the member cells of hierarchy node
    /// `node` — [`crate::report::nucleus_vertices`] over the cached
    /// space, so session users can summarize nuclei without rebuilding
    /// one.
    pub fn nucleus_vertices(&self, hierarchy: &crate::hierarchy::Hierarchy, node: u32) -> Vec<u32> {
        with_space!(self.space, s => crate::report::nucleus_vertices(s, hierarchy, node))
    }

    /// Runs the *Hypo* baseline over the cached space: serial peeling
    /// plus one full sweep. Returns the phase times (peel includes
    /// [`Prepared::prep_time`]) and the number of s-connectivity
    /// components; no hierarchy is produced (that is the point of the
    /// baseline). Always peels serially, whatever the session's engine
    /// policy.
    pub fn hypo_baseline(&self) -> (PhaseTimes, usize) {
        fn run_on<B: crate::space::PeelBackend>(space: &B, prep: Duration) -> (PhaseTimes, usize) {
            let t0 = Instant::now();
            let _ = peel(space);
            let peel_t = prep + t0.elapsed();
            let t1 = Instant::now();
            let comps = hypo_sweep(space);
            (
                PhaseTimes {
                    peel: peel_t,
                    post: t1.elapsed(),
                },
                comps,
            )
        }
        with_space!(self.space, s => match &self.index {
            Some(index) => run_on(&IndexedSpace::new(s, index), self.prep_time),
            None => run_on(s, self.prep_time),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose_with, hypo_baseline_with};
    use crate::test_graphs;

    #[test]
    fn prepared_runs_match_one_shot_for_all_kinds() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let prepared = Nucleus::builder(&g)
                .kind(kind)
                .threads(2)
                .prepare()
                .unwrap();
            for &algo in Algorithm::for_kind(kind) {
                let one_shot = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .unwrap();
                let run = prepared.run(algo).unwrap();
                assert_eq!(
                    run.peeling.lambda, one_shot.peeling.lambda,
                    "{kind}/{algo} λ"
                );
                assert_eq!(
                    run.peeling.order, one_shot.peeling.order,
                    "{kind}/{algo} order"
                );
                assert_eq!(run.hierarchy, one_shot.hierarchy, "{kind}/{algo} hierarchy");
                if algo != Algorithm::Lcps {
                    // LCPS one-shots prepare lazily by design; other
                    // algorithms must resolve identically
                    assert_eq!(run.backend, one_shot.backend, "{kind}/{algo} backend");
                    assert_eq!(run.engine, one_shot.engine, "{kind}/{algo} engine");
                }
            }
        }
    }

    #[test]
    fn reruns_do_not_corrupt_prepared_state() {
        let g = test_graphs::nested_cores();
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Materialized)
            .threads(2)
            .prepare()
            .unwrap();
        let first = prepared.run(Algorithm::Dft).unwrap();
        let second = prepared.run(Algorithm::Dft).unwrap();
        assert_eq!(first.peeling.lambda, second.peeling.lambda);
        assert_eq!(first.peeling.order, second.peeling.order);
        assert_eq!(first.hierarchy, second.hierarchy);
        // and a different algorithm on the same session still agrees
        let fnd = prepared.run(Algorithm::Fnd).unwrap();
        assert_eq!(fnd.hierarchy, first.hierarchy);
        let (_, comps1) = prepared.hypo_baseline();
        let (_, comps2) = prepared.hypo_baseline();
        assert_eq!(comps1, comps2);
    }

    #[test]
    fn plan_resolves_and_explains() {
        let g = test_graphs::nested_cores();
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Truss)
            .threads(4)
            .prepare()
            .unwrap();
        // small graph + auto → materialized; DFT + 4 threads → frontier
        assert_eq!(prepared.backend(), Backend::Materialized);
        let plan = prepared.plan(Algorithm::Dft).unwrap();
        assert_eq!(plan.backend, Backend::Materialized);
        assert_eq!(plan.engine, PeelEngine::Frontier);
        assert_eq!(plan.threads, 4);
        assert!(plan.cells > 0);
        let text = plan.explain();
        assert!(text.contains("truss"), "{text}");
        assert!(text.contains("(2,3)"), "{text}");
        assert!(text.contains("materialized"), "{text}");
        assert!(text.contains("frontier"), "{text}");
        assert!(text.contains("auto"), "{text}");
        // prepared with 4 threads → the enumeration ran parallel
        assert!(text.contains("enumeration: parallel (t=4)"), "{text}");
        // FND on the same session rides the frontier engine too, and
        // the reason names the hybrid-round policy it runs under
        let plan = prepared.plan(Algorithm::Fnd).unwrap();
        assert_eq!(plan.engine, PeelEngine::Frontier);
        assert!(
            plan.engine_reason.contains("hybrid, serial below 64"),
            "{}",
            plan.engine_reason
        );
        // Display goes through explain
        assert_eq!(format!("{plan}"), plan.explain());
    }

    #[test]
    fn plan_and_run_reject_what_validate_rejects() {
        let g = test_graphs::nested_cores();
        // frontier × lazy dies at prepare
        let err = Nucleus::builder(&g)
            .backend(Backend::Lazy)
            .engine(PeelEngine::Frontier)
            .prepare()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        // frontier × LCPS dies at plan/run
        let prepared = Nucleus::builder(&g)
            .engine(PeelEngine::Frontier)
            .threads(2)
            .prepare()
            .unwrap();
        assert!(prepared.plan(Algorithm::Lcps).is_err());
        assert!(prepared.run(Algorithm::Lcps).is_err());
        // ... but every peeling algorithm runs on that same session
        assert!(prepared.run(Algorithm::Dft).is_ok());
        assert!(prepared.run(Algorithm::Fnd).is_ok());
        // LCPS × non-core dies at plan/run
        let prepared = Nucleus::builder(&g).kind(Kind::EdgeK4).prepare().unwrap();
        let err = prepared.run(Algorithm::Lcps).unwrap_err();
        assert!(
            matches!(err, CoreError::UnsupportedAlgorithm { .. }),
            "{err}"
        );
    }

    #[test]
    fn lcps_reuses_a_materialized_session() {
        let g = test_graphs::nested_cores();
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Core)
            .backend(Backend::Materialized)
            .prepare()
            .unwrap();
        let via_session = prepared.run(Algorithm::Lcps).unwrap();
        assert_eq!(via_session.backend, Backend::Materialized);
        let one_shot =
            decompose_with(&g, Kind::Core, Algorithm::Lcps, DecomposeOptions::default()).unwrap();
        // the wrapper path stays lazy (old behavior), results agree
        assert_eq!(one_shot.backend, Backend::Lazy);
        assert_eq!(via_session.peeling.lambda, one_shot.peeling.lambda);
        assert_eq!(via_session.hierarchy, one_shot.hierarchy);
    }

    #[test]
    fn hypo_baseline_matches_one_shot() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let prepared = Nucleus::builder(&g).kind(kind).prepare().unwrap();
            let (_, comps) = prepared.hypo_baseline();
            let (_, one_shot) = hypo_baseline_with(&g, kind, DecomposeOptions::default());
            assert_eq!(comps, one_shot, "{kind}");
        }
    }

    #[test]
    fn accessors_report_the_prepared_shape() {
        let g = test_graphs::nested_cores();
        let prepared = Nucleus::builder(&g)
            .kind(Kind::Truss)
            .backend(Backend::Lazy)
            .threads(3)
            .prepare()
            .unwrap();
        assert_eq!(prepared.kind(), Kind::Truss);
        assert_eq!(prepared.backend(), Backend::Lazy);
        assert_eq!(prepared.threads(), 3);
        assert_eq!(prepared.cells(), g.m());
        assert!(prepared.containers() > 0);
        assert!(prepared.estimated_index_bytes() > 0);
        assert!(std::ptr::eq(prepared.graph(), &g));
    }
}
