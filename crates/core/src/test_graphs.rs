//! Shared fixtures for this crate's unit tests.

use nucleus_graph::{CsrGraph, GraphBuilder};

/// K5 (λ₂ = 4) ⊂ 2-core ring ⊂ whole graph, plus a pendant (λ₂ = 1):
/// a three-level (1,2) hierarchy. Mirrors
/// `nucleus_gen::paper::three_level_core_hierarchy` without the dev-dep
/// cycle.
pub fn nested_cores() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(0, 5);
    b.add_edge(5, 6);
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    b.add_edge(8, 1);
    b.add_edge(5, 9);
    b.build()
}
