//! The k-truss variant zoo of §3.2 / Figure 3, as executable semantics.
//!
//! From the same λ₃ values, the literature's definitions extract
//! different subgraphs for a given k:
//!
//! * **k-dense** (Saito et al.) / **triangle k-core** (Zhang &
//!   Parthasarathy): *all* edges with λ₃ ≥ k — possibly disconnected;
//! * **k-truss** (Cohen) / **k-community** (Verma & Butenko): the
//!   *vertex-connected components* of those edges;
//! * **k-truss community** (Huang et al.) = **k-(2,3) nucleus**: the
//!   *triangle-connected components* — what this crate's hierarchy
//!   stores.
//!
//! These functions exist to make the paper's misconception discussion
//! testable: on the bowtie graph, one k-dense = one k-truss ≠ two
//! k-truss communities.
//!
//! Note the paper's k convention: Cohen's "k-truss" requires k−2
//! triangles per edge; here `k` is always the triangle count (λ₃ ≥ k),
//! matching the nucleus convention used throughout this crate.

use nucleus_dsf::DisjointSets;
use nucleus_graph::CsrGraph;

use crate::hierarchy::Hierarchy;
use crate::peel::Peeling;

/// The k-dense subgraph: every edge with λ₃ ≥ k (one possibly
/// disconnected edge set; empty when no edge qualifies).
pub fn k_dense(truss: &Peeling, k: u32) -> Vec<u32> {
    (0..truss.cell_count() as u32)
        .filter(|&e| truss.lambda_of(e) >= k)
        .collect()
}

/// Classical connected k-trusses: the qualifying edges grouped by
/// *vertex* connectivity (two edges touch if they share an endpoint).
/// Returns edge-id groups, each sorted.
pub fn k_trusses_connected(g: &CsrGraph, truss: &Peeling, k: u32) -> Vec<Vec<u32>> {
    let edges = k_dense(truss, k);
    if edges.is_empty() {
        return vec![];
    }
    // Union endpoints of qualifying edges; group edges by their
    // endpoint component.
    let mut dsu = DisjointSets::new(g.n());
    for &e in &edges {
        let (u, v) = g.endpoints(e);
        dsu.union(u, v);
    }
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for &e in &edges {
        let (u, _) = g.endpoints(e);
        groups.entry(dsu.find(u)).or_default().push(e);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    for group in &mut out {
        group.sort_unstable();
    }
    out.sort_by_key(|grp| grp[0]);
    out
}

/// k-truss communities = k-(2,3) nuclei, straight from the hierarchy
/// (triangle connectivity). Returns edge-id groups, each sorted.
pub fn k_truss_communities(h: &Hierarchy, k: u32) -> Vec<Vec<u32>> {
    let mut out: Vec<Vec<u32>> = h
        .nuclei_at(k)
        .into_iter()
        .map(|id| {
            let mut cells = h.nucleus_cells(id);
            cells.sort_unstable();
            cells
        })
        .collect();
    out.sort_by_key(|grp| grp[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::peel::peel;
    use crate::space::EdgeSpace;

    #[test]
    fn bowtie_separates_the_three_definitions() {
        // Figure 3's point, on the bowtie: every edge has λ₃ = 1.
        let g = nucleus_gen::paper::fig3_bowtie();
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        // k-dense: one (disconnected-agnostic) edge set with all 6 edges
        assert_eq!(k_dense(&truss, 1).len(), 6);
        // classical k-truss: vertex-connected → still ONE subgraph
        let trusses = k_trusses_connected(&g, &truss, 1);
        assert_eq!(trusses.len(), 1);
        assert_eq!(trusses[0].len(), 6);
        // k-truss community: triangle-connected → TWO communities
        let (h, _) = dft(&es, &truss);
        let communities = k_truss_communities(&h, 1);
        assert_eq!(communities.len(), 2);
        assert!(communities.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn disconnected_trusses_split_vertex_components() {
        // two disjoint K4s: k-dense is one set, k-truss finds two.
        let mut edges = vec![];
        for base in [0u32, 4] {
            for u in 0..4 {
                for v in u + 1..4 {
                    edges.push((base + u, base + v));
                }
            }
        }
        let g = CsrGraph::from_edges(8, &edges);
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        assert_eq!(k_dense(&truss, 2).len(), 12);
        assert_eq!(k_trusses_connected(&g, &truss, 2).len(), 2);
        let (h, _) = dft(&es, &truss);
        assert_eq!(k_truss_communities(&h, 2).len(), 2);
    }

    #[test]
    fn communities_refine_trusses_which_refine_dense() {
        // On any graph: dense ⊇ union(trusses) with trusses a partition,
        // and communities refine trusses.
        let g = nucleus_gen::karate::karate_club();
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        let (h, _) = dft(&es, &truss);
        for k in 1..=truss.max_lambda {
            let dense = k_dense(&truss, k);
            let trusses = k_trusses_connected(&g, &truss, k);
            let communities = k_truss_communities(&h, k);
            let truss_total: usize = trusses.iter().map(|t| t.len()).sum();
            let comm_total: usize = communities.iter().map(|c| c.len()).sum();
            assert_eq!(dense.len(), truss_total, "k={k}");
            assert_eq!(dense.len(), comm_total, "k={k}");
            assert!(communities.len() >= trusses.len(), "k={k}");
            // each community sits inside exactly one truss
            for c in &communities {
                let hits = trusses
                    .iter()
                    .filter(|t| c.iter().all(|e| t.binary_search(e).is_ok()))
                    .count();
                assert_eq!(hits, 1, "k={k}");
            }
        }
    }

    #[test]
    fn empty_levels_yield_empty_sets() {
        let g = nucleus_gen::classic::path(5);
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        assert!(k_dense(&truss, 1).is_empty());
        assert!(k_trusses_connected(&g, &truss, 1).is_empty());
    }
}
