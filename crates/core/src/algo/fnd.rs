//! FastNucleusDecomposition (Algorithms 8 and 9 of the paper): build the
//! hierarchy **during peeling**, with no traversal at all.
//!
//! While a cell `u` is peeled, its containers are inspected. A container
//! whose cells are all unprocessed drives the usual ω decrements; a
//! container with processed cells instead reveals connectivity: the
//! processed cell `w` of minimum λ either shares `u`'s λ (u and w are in
//! the same — possibly non-maximal — sub-nucleus `T*`, so their
//! components are unioned) or has a smaller λ (the pair of sub-nuclei is
//! appended to the `ADJ` list, ordered later by `BuildHierarchy`).
//!
//! # The parallel path
//!
//! [`fnd_parallel_with`] rides the frontier engine
//! ([`crate::peel::peel_with_sink`]) by fusing the classification above
//! into the per-cell container scan, with the engine's `(stamp, id)`
//! order as the processed-before relation. The key observation making
//! this legal: because every peeling order is λ-monotone, a container's
//! first-processed member always attains the container's λ (the minimum
//! member λ), so per container the classification outcome *at the
//! partition level* is order-independent — each of its min-λ members
//! past the first unions with an earlier one (chaining them into one
//! component regardless of which `w` won a tie), each higher-λ member
//! records one adjacency to that same component, and exactly the
//! first-processed member applies decrements. Same-λ unions go through
//! a lock-free [`ConcurrentSets`] over cells; cross-λ adjacencies
//! accumulate in per-worker buffers concatenated in deterministic range
//! order. A finalize pass ([`fnd_classify`]) then allocates one
//! sub-nucleus per component (in emission order) and resolves the
//! buffered pairs, and [`build_hierarchy`] assembles the skeleton —
//! producing the same canonical [`Hierarchy`] as [`fnd`], bit for bit,
//! at every thread count.
//!
//! # Parallel `BuildHierarchy`
//!
//! The assembly pass itself (Alg. 9) parallelizes its two read-heavy
//! phases while keeping every forest **mutation** sequential:
//!
//! 1. λ-binning of the `ADJ` pairs runs as per-worker bucket lists over
//!    balanced ranges, absorbed in range order — each bin ends up in
//!    exactly the order the serial pass would have pushed.
//! 2. Per bin, a read-only *hint* pass resolves every pair's greatest
//!    ancestors concurrently ([`nucleus_dsf::RootedForest::peek_r`]);
//!    the sequential drain then re-resolves from the hint (an ancestor
//!    on the pair's root path, so `find_r(hint)` is exact even after
//!    earlier pairs in the bin mutated the forest) and installs an O(1)
//!    compression shortcut per endpoint.
//!
//! Deliberate deviation from a fully concurrent drain: attach/merge
//! decisions depend on the forest's evolving rank/root state, so
//! free-running concurrent unions (e.g. through [`ConcurrentSets`])
//! would produce winner choices — and therefore `parent` links — that
//! vary with thread interleaving. The hint scheme keeps the *decision
//! sequence* exactly serial, which is what makes the hierarchy
//! bit-identical at every thread count.

use std::time::{Duration, Instant};

use nucleus_cliques::{balanced_ranges, fill_ranges_scoped};
use nucleus_dsf::ConcurrentSets;
use nucleus_graph::bucket::PeelBuckets;

use crate::hierarchy::{Hierarchy, NO_NODE};
use crate::peel::{peel_with_sink, FrontierOptions, PeelSink, Peeling};
use crate::skeleton::Skeleton;
use crate::space::{PeelBackend, PeelCells, PeelSpace};

/// Counters reported alongside the FND hierarchy (Table 3 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct FndStats {
    /// Number of (possibly non-maximal) sub-nuclei |T*_{r,s}|.
    pub subnuclei: usize,
    /// |c↓(T*_{r,s})|: recorded connections from higher-λ sub-nuclei to
    /// lower-λ ones (the length of `ADJ`).
    pub adj_connections: usize,
}

/// Full FND outcome, with the paper's phase split (Figure 6): `peel_time`
/// covers the extended peeling loop, `post_time` covers `BuildHierarchy`
/// plus hierarchy finalization.
#[derive(Debug)]
pub struct FndOutcome {
    /// λ values and processing order (same contract as [`crate::peel::peel`]).
    pub peeling: Peeling,
    /// The canonical hierarchy.
    pub hierarchy: Hierarchy,
    /// |T*| and |c↓(T*)|.
    pub stats: FndStats,
    /// Extended-peeling wall time.
    pub peel_time: Duration,
    /// Post-processing (BuildHierarchy + report) wall time.
    pub post_time: Duration,
}

/// Tuning knobs for [`fnd_with_options`]; the defaults follow the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct FndOptions {
    /// Skip pushing an `ADJ` pair identical to the immediately preceding
    /// one. The paper pushes raw (duplicates are absorbed by `Find-r`
    /// in BuildHierarchy); deduping trades a branch per container for a
    /// shorter list — measured in `bench_micro` (ablation).
    pub dedup_adjacent: bool,
}

/// Runs FastNucleusDecomposition on a space with default options.
///
/// ```
/// use nucleus_core::algo::fnd::fnd;
/// use nucleus_core::space::EdgeSpace;
///
/// // bowtie: two triangles sharing a vertex → two (2,3) nuclei,
/// // discovered with zero traversal
/// let g = nucleus_gen::paper::fig3_bowtie();
/// let out = fnd(&EdgeSpace::new(&g));
/// assert_eq!(out.hierarchy.nuclei_at(1).len(), 2);
/// assert_eq!(out.stats.subnuclei, 2);
/// assert_eq!(out.stats.adj_connections, 0); // single λ level
/// ```
pub fn fnd<S: PeelSpace>(space: &S) -> FndOutcome {
    fnd_with_options(space, FndOptions::default())
}

/// Runs FastNucleusDecomposition with explicit [`FndOptions`].
pub fn fnd_with_options<S: PeelSpace>(space: &S, options: FndOptions) -> FndOutcome {
    let t0 = Instant::now();
    let n = space.cell_count();
    let mut q = PeelBuckets::new(space.degrees());
    let mut lambda = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_lambda = 0u32;
    let mut sk = Skeleton::new(n);
    // `(higher-λ sub-nucleus, lower-λ sub-nucleus)` pairs; the first
    // component is patched after the cell's iteration if it was pushed
    // before the cell got its sub-nucleus (paper line 19).
    let mut adj: Vec<(u32, u32)> = Vec::new();

    while let Some((u, k)) = q.pop_min() {
        lambda[u as usize] = k;
        max_lambda = max_lambda.max(k);
        order.push(u);
        let adj_start = adj.len();
        space.for_each_container(u, |others| {
            // Split the container into processed / unprocessed cells and
            // find the processed cell of minimum λ (paper lines 14-15).
            let mut w = NO_NODE;
            let mut w_lambda = u32::MAX;
            for &v in others {
                if q.is_popped(v) {
                    let lv = lambda[v as usize];
                    if lv < w_lambda {
                        w_lambda = lv;
                        w = v;
                    }
                }
            }
            if w == NO_NODE {
                // All unprocessed: the container is alive — ordinary
                // peeling decrements (lines 10-12).
                for &v in others {
                    if q.key(v) > k {
                        q.decrement(v);
                    }
                }
            } else if w_lambda == k {
                // u and w are strongly connected (this container has
                // λ_{r,s} = k): same T* (line 16-17).
                let cw = sk.comp[w as usize];
                debug_assert_ne!(cw, NO_NODE);
                let cu = sk.comp[u as usize];
                if cu == NO_NODE {
                    sk.comp[u as usize] = cw;
                } else if cu != cw {
                    sk.forest.union_r(cu, cw);
                }
            } else {
                // λ(w) < λ(u): containment relation, deferred (line 18).
                debug_assert!(w_lambda < k);
                let cw = sk.comp[w as usize];
                debug_assert_ne!(cw, NO_NODE, "processed cell in a container must have λ ≥ 1");
                let pair = (sk.comp[u as usize], cw);
                if !(options.dedup_adjacent && adj.last() == Some(&pair)) {
                    adj.push(pair);
                }
            }
        });
        if k > 0 {
            // Line 19: ensure u owns a sub-nucleus, patch pending pairs.
            if sk.comp[u as usize] == NO_NODE {
                let sn = sk.new_subnucleus(k);
                sk.comp[u as usize] = sn;
            }
            let cu = sk.comp[u as usize];
            for pair in &mut adj[adj_start..] {
                if pair.0 == NO_NODE {
                    pair.0 = cu;
                }
            }
        }
    }
    let peel_time = t0.elapsed();

    let t1 = Instant::now();
    build_hierarchy(&mut sk, &adj, max_lambda, 1, usize::MAX);
    let stats = FndStats {
        subnuclei: sk.len(),
        adj_connections: adj.len(),
    };
    drop(adj);
    let raw = sk.into_raw();
    let hierarchy = raw.into_hierarchy(space.r(), space.s(), lambda.clone(), max_lambda);
    let post_time = t1.elapsed();

    FndOutcome {
        peeling: Peeling {
            lambda,
            max_lambda,
            order,
        },
        hierarchy,
        stats,
        peel_time,
        post_time,
    }
}

/// The FND peel sink: classifies each peeled cell's containers exactly
/// as the serial loop does, but against the engine's `(stamp, id)`
/// processed-before order — unions into the concurrent cell-level DSU,
/// adjacency intents into per-worker parts.
struct FndSink {
    /// Same-λ connectivity over *cells*; one final component per
    /// (possibly non-maximal) sub-nucleus.
    dsu: ConcurrentSets,
    /// `(higher-λ cell, lower-λ cell)` adjacency intents, in the
    /// engine's deterministic emission order; resolved to sub-nucleus
    /// pairs by the finalize pass.
    adj: Vec<(u32, u32)>,
}

impl<B: PeelBackend + ?Sized> PeelSink<B> for FndSink {
    type Part = Vec<(u32, u32)>;

    fn new_part(&self) -> Self::Part {
        Vec::new()
    }

    #[inline]
    fn scan_cell<D: Fn(u32) -> bool>(
        &self,
        space: &B,
        cells: &PeelCells,
        lambda: &[u32],
        u: u32,
        level: u32,
        stamp: u32,
        dec: &D,
        next: &mut Vec<u32>,
        part: &mut Self::Part,
    ) {
        space.for_each_container(u, |others| {
            // Find the processed co-cell of minimum λ (Alg. 8 lines
            // 14-15), "processed" meaning before `u` in (stamp, id)
            // order — ALIVE is u32::MAX, so unpeeled cells sort last.
            let mut w = NO_NODE;
            let mut w_lambda = u32::MAX;
            for &v in others {
                let s = cells.stamp(v);
                if s < stamp || (s == stamp && v < u) {
                    let lv = lambda[v as usize];
                    if lv < w_lambda {
                        w_lambda = lv;
                        w = v;
                    }
                }
            }
            if w == NO_NODE {
                // u is the container's first-processed cell: it owns
                // the ordinary peeling decrements (lines 10-12).
                for &v in others {
                    if dec(v) {
                        next.push(v);
                    }
                }
            } else if w_lambda == level {
                // Strong connection at this level (lines 16-17).
                self.dsu.union(u, w);
            } else {
                // λ(w) < λ(u): containment, deferred (line 18).
                debug_assert!(w_lambda < level);
                part.push((u, w));
            }
        });
    }

    fn absorb_part(&mut self, mut part: Self::Part) {
        self.adj.append(&mut part);
    }
}

/// Runs FastNucleusDecomposition through the frontier-parallel engine
/// with default [`FndOptions`]. See [`fnd_parallel_with`].
pub fn fnd_parallel<S: PeelSpace + Sync>(space: &S, threads: usize) -> FndOutcome {
    fnd_parallel_with(
        space,
        FndOptions::default(),
        FrontierOptions {
            threads,
            ..FrontierOptions::default()
        },
    )
}

/// Runs FastNucleusDecomposition on top of the frontier-parallel
/// peeling engine: λ-level rounds peel in parallel while a classifying
/// sink inspects containers on the fly, then a sequential finalize merges
/// the classified structure into the same canonical [`Hierarchy`] the
/// serial [`fnd`] produces (the peeling *order* differs within levels —
/// rounds emit ascending ids, the bucket queue its own positions — but
/// λ values and the hierarchy are identical).
///
/// ```
/// use nucleus_core::algo::fnd::{fnd, fnd_parallel};
/// use nucleus_core::space::{EdgeSpace, MaterializedSpace};
///
/// let g = nucleus_gen::paper::fig3_bowtie();
/// let es = EdgeSpace::new(&g);
/// let m = MaterializedSpace::new(&es);
/// assert_eq!(fnd_parallel(&m, 2).hierarchy, fnd(&es).hierarchy);
/// ```
pub fn fnd_parallel_with<S: PeelSpace + Sync>(
    space: &S,
    options: FndOptions,
    frontier: FrontierOptions,
) -> FndOutcome {
    let threads = frontier.threads;
    let min_parallel = frontier.min_parallel_work;
    let FndClassified {
        peeling,
        skeleton: mut sk,
        adj,
        peel_time,
        resolve_time,
    } = fnd_classify(space, options, frontier);

    let t1 = Instant::now();
    build_hierarchy(&mut sk, &adj, peeling.max_lambda, threads, min_parallel);
    let stats = FndStats {
        subnuclei: sk.len(),
        adj_connections: adj.len(),
    };
    drop(adj);
    let raw = sk.into_raw();
    let hierarchy = raw.into_hierarchy(
        space.r(),
        space.s(),
        peeling.lambda.clone(),
        peeling.max_lambda,
    );
    let post_time = resolve_time + t1.elapsed();

    FndOutcome {
        peeling,
        hierarchy,
        stats,
        peel_time,
        post_time,
    }
}

/// A parallel FND run stopped just short of hierarchy assembly: the
/// peeling, the skeleton (one sub-nucleus per same-λ component,
/// allocated in emission order), and the resolved `ADJ` pairs — exactly
/// the inputs of [`build_hierarchy`]. Split out of
/// [`fnd_parallel_with`] so the assembly pass can be timed and re-run
/// in isolation (the phase benches clone the skeleton per iteration).
#[derive(Debug)]
pub struct FndClassified {
    /// λ values and processing order.
    pub peeling: Peeling,
    /// Skeleton with components assigned but no hierarchy links yet.
    pub skeleton: Skeleton,
    /// Resolved `(higher-λ, lower-λ)` sub-nucleus pairs, in emission
    /// order (deduped when the options asked for it).
    pub adj: Vec<(u32, u32)>,
    /// Extended-peeling wall time.
    pub peel_time: Duration,
    /// Finalize wall time (sub-nucleus allocation + `ADJ` resolution).
    pub resolve_time: Duration,
}

/// The classification half of [`fnd_parallel_with`]: peels through the
/// frontier engine with the FND sink, then finalizes components and
/// adjacency pairs. Feed the result to [`build_hierarchy`] (and
/// [`Skeleton::into_raw`]) to finish the decomposition.
pub fn fnd_classify<S: PeelSpace + Sync>(
    space: &S,
    options: FndOptions,
    frontier: FrontierOptions,
) -> FndClassified {
    let t0 = Instant::now();
    let n = space.cell_count();
    let mut sink = FndSink {
        dsu: ConcurrentSets::new(n),
        adj: Vec::new(),
    };
    let peeling = peel_with_sink(space, frontier, &mut sink);
    let peel_time = t0.elapsed();

    let t1 = Instant::now();
    // Finalize: one sub-nucleus per same-λ DSU component, allocated in
    // emission order so ids are deterministic across thread counts.
    let mut sk = Skeleton::new(n);
    let mut sn_of_root: Vec<u32> = vec![NO_NODE; n];
    for &u in &peeling.order {
        let k = peeling.lambda[u as usize];
        if k == 0 {
            // λ = 0 cells appear in no container; they carry no
            // sub-nucleus in the serial loop either (Alg. 8 line 19
            // runs only for k > 0).
            continue;
        }
        let root = sink.dsu.find(u) as usize;
        if sn_of_root[root] == NO_NODE {
            sn_of_root[root] = sk.new_subnucleus(k);
        }
        sk.comp[u as usize] = sn_of_root[root];
    }
    // Resolve adjacency intents to sub-nucleus pairs; both endpoints
    // have λ ≥ 1, so both components were assigned above. Intents are
    // independent, so the map parallelizes over disjoint chunks; the
    // optional dedup is a serial scan equivalent to the skip-on-push.
    let intents = std::mem::take(&mut sink.adj);
    let mut adj: Vec<(u32, u32)> = if frontier.threads > 1
        && !intents.is_empty()
        && intents.len() >= frontier.min_parallel_work
    {
        let mut out = vec![(0u32, 0u32); intents.len()];
        let ranges = balanced_ranges(&vec![1usize; intents.len()], frontier.threads);
        let comp = &sk.comp;
        fill_ranges_scoped(
            &mut out,
            ranges,
            |range| range.len(),
            |range, chunk| {
                for (slot, &(hi, lo)) in chunk.iter_mut().zip(&intents[range]) {
                    let pair = (comp[hi as usize], comp[lo as usize]);
                    debug_assert_ne!(pair.0, NO_NODE);
                    debug_assert_ne!(pair.1, NO_NODE);
                    *slot = pair;
                }
            },
        );
        out
    } else {
        intents
            .iter()
            .map(|&(hi, lo)| {
                let pair = (sk.comp[hi as usize], sk.comp[lo as usize]);
                debug_assert_ne!(pair.0, NO_NODE);
                debug_assert_ne!(pair.1, NO_NODE);
                pair
            })
            .collect()
    };
    if options.dedup_adjacent {
        adj.dedup();
    }
    let resolve_time = t1.elapsed();

    FndClassified {
        peeling,
        skeleton: sk,
        adj,
        peel_time,
        resolve_time,
    }
}

/// The shared drain decision for one `ADJ` pair whose endpoints resolved
/// to tops `sf` / `tf` in bin `k`: attach across λ levels immediately,
/// defer same-λ merges to the end of the bin.
#[inline]
fn drain_pair(sk: &mut Skeleton, merge: &mut Vec<(u32, u32)>, k: usize, sf: u32, tf: u32) {
    if sf == tf {
        return;
    }
    debug_assert_eq!(
        sk.lambda[tf as usize] as usize, k,
        "lower-side root keeps bin λ"
    );
    if sk.lambda[sf as usize] > sk.lambda[tf as usize] {
        sk.forest.attach(sf, tf);
    } else {
        debug_assert_eq!(sk.lambda[sf as usize], sk.lambda[tf as usize]);
        merge.push((sf, tf));
    }
}

/// λ-bins the `ADJ` pairs with worker threads: per-worker bucket lists
/// over balanced ranges, absorbed in range order — bin contents end up
/// in exactly the adj (= serial push) order.
fn bin_pairs_parallel(
    sk: &Skeleton,
    adj: &[(u32, u32)],
    nbins: usize,
    threads: usize,
) -> Vec<Vec<(u32, u32)>> {
    let ranges = balanced_ranges(&vec![1usize; adj.len()], threads);
    let parts: Vec<Vec<Vec<(u32, u32)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let lambda = &sk.lambda;
                scope.spawn(move || {
                    let mut bins = vec![Vec::new(); nbins];
                    for &(s, t) in &adj[range] {
                        debug_assert!(lambda[s as usize] > lambda[t as usize]);
                        bins[lambda[t as usize] as usize].push((s, t));
                    }
                    bins
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut bins = vec![Vec::new(); nbins];
    for part in parts {
        for (bin, mut local) in bins.iter_mut().zip(part) {
            bin.append(&mut local);
        }
    }
    bins
}

/// `BuildHierarchy` (Algorithm 9): bin the `ADJ` pairs by the λ of their
/// lower side and process bins in decreasing λ, attaching or merging
/// greatest ancestors — the same bottom-up discipline as DF-Traversal.
///
/// With `threads > 1` and at least `min_parallel_work` pairs, the two
/// read-heavy phases run on worker threads (λ-binning via per-worker
/// buckets absorbed in range order; per-bin greatest-ancestor *hints*
/// via the read-only [`nucleus_dsf::RootedForest::peek_r`]) while every
/// forest mutation stays on the calling thread, re-resolving each hint
/// with `find_r` — a hint is an ancestor on its endpoint's root path,
/// so the re-resolution is exact even after earlier pairs in the bin
/// mutated the forest. The attach/merge decision sequence is therefore
/// exactly the serial one, making the resulting skeleton (`parent`
/// links, sub-nucleus λ, components) **bit-identical** at every thread
/// count; see the module docs for why a fully concurrent drain was
/// rejected.
pub fn build_hierarchy(
    sk: &mut Skeleton,
    adj: &[(u32, u32)],
    max_lambda: u32,
    threads: usize,
    min_parallel_work: usize,
) {
    if adj.is_empty() {
        return;
    }
    let parallel = threads > 1 && adj.len() >= min_parallel_work;
    let nbins = max_lambda as usize + 1;
    let mut bins: Vec<Vec<(u32, u32)>> = if parallel {
        bin_pairs_parallel(sk, adj, nbins, threads)
    } else {
        let mut bins = vec![Vec::new(); nbins];
        for &(s, t) in adj {
            debug_assert!(sk.lambda[s as usize] > sk.lambda[t as usize]);
            bins[sk.lambda[t as usize] as usize].push((s, t));
        }
        bins
    };
    let mut merge: Vec<(u32, u32)> = Vec::new();
    let mut hints: Vec<(u32, u32)> = Vec::new();
    for k in (1..=max_lambda as usize).rev() {
        merge.clear();
        // Taking the bin out lets us mutate the forest while iterating.
        let bin = std::mem::take(&mut bins[k]);
        if parallel && bin.len() >= min_parallel_work.max(1) {
            // Read-only hint pass: pre-resolve both tops concurrently.
            hints.clear();
            hints.resize(bin.len(), (0, 0));
            let ranges = balanced_ranges(&vec![1usize; bin.len()], threads);
            let forest = &sk.forest;
            let bin_ref = &bin[..];
            fill_ranges_scoped(
                &mut hints,
                ranges,
                |range| range.len(),
                |range, chunk| {
                    for (slot, &(s, t)) in chunk.iter_mut().zip(&bin_ref[range]) {
                        *slot = (forest.peek_r(s), forest.peek_r(t));
                    }
                },
            );
            for (&(s, t), &(hs, ht)) in bin.iter().zip(&hints) {
                let sf = sk.forest.find_r(hs);
                let tf = sk.forest.find_r(ht);
                // find_r walked only from the hint; shortcut the full
                // endpoints so later peeks stay near-O(1).
                sk.forest.compress_to(s, sf);
                sk.forest.compress_to(t, tf);
                drain_pair(sk, &mut merge, k, sf, tf);
            }
        } else {
            for (s, t) in bin {
                let sf = sk.forest.find_r(s);
                let tf = sk.forest.find_r(t);
                drain_pair(sk, &mut merge, k, sf, tf);
            }
        }
        for &(a, b) in &merge {
            sk.forest.union_r(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use crate::test_graphs;

    /// FND must agree with the peeling λ and produce a valid hierarchy.
    fn check(g: &nucleus_graph::CsrGraph) {
        let vs = VertexSpace::new(g);
        let out = fnd(&vs);
        assert_eq!(out.peeling.lambda, peel(&vs).lambda);
        out.hierarchy.validate().expect("valid (1,2)");

        let es = EdgeSpace::new(g);
        let out = fnd(&es);
        assert_eq!(out.peeling.lambda, peel(&es).lambda);
        out.hierarchy.validate().expect("valid (2,3)");

        let ts = TriangleSpace::new(g);
        let out = fnd(&ts);
        assert_eq!(out.peeling.lambda, peel(&ts).lambda);
        out.hierarchy.validate().expect("valid (3,4)");
    }

    #[test]
    fn agrees_with_plain_peeling_and_validates() {
        check(&test_graphs::nested_cores());
        check(&nucleus_gen::paper::fig2_two_three_cores());
        check(&nucleus_gen::paper::fig3_bowtie());
        check(&nucleus_gen::karate::karate_club());
    }

    #[test]
    fn star_graph_late_center() {
        // The star's center is processed in the last two peeling steps;
        // FND must still produce a single 1-core (paper §4.3 caveat).
        let g = nucleus_gen::classic::star(6);
        let vs = VertexSpace::new(&g);
        let out = fnd(&vs);
        out.hierarchy.validate().expect("valid");
        assert_eq!(out.hierarchy.nuclei_at(1).len(), 1);
        assert_eq!(
            out.hierarchy
                .node(out.hierarchy.nuclei_at(1)[0])
                .subtree_cells,
            7
        );
        // non-maximal sub-nuclei may exceed the single maximal one
        assert!(out.stats.subnuclei >= 1);
    }

    #[test]
    fn planted_cliques_have_zero_adj() {
        // Bridged cliques: every edge's λ₃ is constant inside a clique and
        // bridges are triangle-free, so no cross-λ connections exist —
        // the uk-2005 regime from Table 3 (c↓ = 0).
        let g = nucleus_gen::planted::planted_cliques(4, &[5], 3);
        let es = EdgeSpace::new(&g);
        let out = fnd(&es);
        assert_eq!(out.stats.adj_connections, 0);
        assert_eq!(out.hierarchy.nuclei_at(3).len(), 4);
    }

    #[test]
    fn dedup_option_preserves_hierarchy_with_fewer_connections() {
        let g = nucleus_gen::karate::karate_club();
        let es = EdgeSpace::new(&g);
        let raw = fnd(&es);
        let deduped = fnd_with_options(
            &es,
            FndOptions {
                dedup_adjacent: true,
            },
        );
        assert_eq!(raw.hierarchy, deduped.hierarchy);
        assert!(deduped.stats.adj_connections <= raw.stats.adj_connections);
    }

    /// Parallel FND must produce the serial hierarchy bit for bit —
    /// across thread counts, with the spawn path forced, and with the
    /// hybrid drain off, always-on, and mixed.
    fn check_parallel_matches_serial(g: &nucleus_graph::CsrGraph) {
        fn check<S: crate::space::PeelSpace + Sync>(space: &S) {
            let serial = fnd(space);
            let m = crate::space::MaterializedSpace::new(space);
            for serial_round_threshold in [0, 3, usize::MAX] {
                for threads in [1, 2, 8] {
                    let fopts = crate::peel::FrontierOptions {
                        threads,
                        min_parallel_work: 0,
                        serial_round_threshold,
                    };
                    let par = fnd_parallel_with(&m, FndOptions::default(), fopts);
                    let tag = format!("{threads} threads, drain < {serial_round_threshold}");
                    assert_eq!(par.peeling.lambda, serial.peeling.lambda, "λ, {tag}");
                    assert_eq!(par.hierarchy, serial.hierarchy, "hierarchy, {tag}");
                    par.hierarchy.validate().expect("valid parallel hierarchy");
                }
            }
        }
        check(&VertexSpace::new(g));
        check(&EdgeSpace::new(g));
        check(&TriangleSpace::new(g));
    }

    #[test]
    fn parallel_fnd_matches_serial_hierarchy() {
        check_parallel_matches_serial(&test_graphs::nested_cores());
        check_parallel_matches_serial(&nucleus_gen::paper::fig2_two_three_cores());
        check_parallel_matches_serial(&nucleus_gen::paper::fig3_bowtie());
        check_parallel_matches_serial(&nucleus_gen::karate::karate_club());
        check_parallel_matches_serial(&nucleus_gen::classic::star(6));
    }

    #[test]
    fn parallel_fnd_dedup_preserves_hierarchy() {
        let g = nucleus_gen::karate::karate_club();
        let es = EdgeSpace::new(&g);
        let m = crate::space::MaterializedSpace::new(&es);
        let fopts = crate::peel::FrontierOptions {
            threads: 2,
            min_parallel_work: 0,
            serial_round_threshold: 0,
        };
        let raw = fnd_parallel_with(&m, FndOptions::default(), fopts);
        let deduped = fnd_parallel_with(
            &m,
            FndOptions {
                dedup_adjacent: true,
            },
            fopts,
        );
        assert_eq!(raw.hierarchy, deduped.hierarchy);
        assert!(deduped.stats.adj_connections <= raw.stats.adj_connections);
    }

    #[test]
    fn phase_times_are_populated() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let out = fnd(&vs);
        // Times are small but must be measured (non-negative by type;
        // peel covers at least the main loop).
        assert!(out.peel_time.as_nanos() > 0);
    }
}
