//! The "Hypo" baseline: the hypothetical best possible traversal-based
//! algorithm. It performs the peeling plus exactly **one** sweep over all
//! cells and their containers — the minimum work any traversal-based
//! hierarchy construction must do — without producing a hierarchy.
//! Beating Hypo (as FND does, Tables 4/5) proves an algorithm does
//! better than *any* conceivable traversal-based approach.

use crate::space::PeelBackend;

/// One full sweep over every cell and container; returns the number of
/// s-connectivity components so the work cannot be optimized away.
pub fn hypo_sweep<B: PeelBackend>(space: &B) -> usize {
    let n = space.cell_count();
    let mut visited = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut components = 0usize;
    for c0 in 0..n as u32 {
        if visited[c0 as usize] {
            continue;
        }
        components += 1;
        visited[c0 as usize] = true;
        queue.clear();
        queue.push(c0);
        let mut head = 0usize;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            space.for_each_container(x, |others| {
                for &v in others {
                    if !visited[v as usize] {
                        visited[v as usize] = true;
                        queue.push(v);
                    }
                }
            });
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{EdgeSpace, VertexSpace};

    #[test]
    fn counts_vertex_components() {
        let g = nucleus_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let vs = VertexSpace::new(&g);
        assert_eq!(hypo_sweep(&vs), 3);
    }

    #[test]
    fn counts_triangle_connectivity_components() {
        // bowtie: the two triangles are separate edge-components under
        // triangle connectivity
        let g = nucleus_gen::paper::fig3_bowtie();
        let es = EdgeSpace::new(&g);
        assert_eq!(hypo_sweep(&es), 2);
    }

    #[test]
    fn empty_space() {
        let g = nucleus_graph::CsrGraph::from_edges(0, &[]);
        let vs = VertexSpace::new(&g);
        assert_eq!(hypo_sweep(&vs), 0);
    }
}
