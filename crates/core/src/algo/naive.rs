//! The Naive baseline (Algorithms 2 and 3): one full traversal of the
//! λ ≥ k cells **per k level**. This is the straightforward reading of
//! Corollary 2 and the baseline every speedup in Tables 1/4/5 is
//! measured against. Deliberately kept per-level (its cost is the point)
//! while still producing the exact canonical hierarchy.

use crate::hierarchy::{Hierarchy, RawHierarchy, NO_NODE};
use crate::peel::Peeling;
use crate::space::PeelSpace;

/// Runs the per-level traversal and assembles the hierarchy.
///
/// Level `k` labels the connected components of cells with λ ≥ k (via
/// containers whose minimum λ is ≥ k) and emits one node per component
/// containing at least one λ = k cell; parents are the level-(k-1)
/// components. Components without λ = k cells coincide with their unique
/// deeper nucleus and are passed through, matching the contraction used
/// by all other algorithms.
pub fn naive<S: PeelSpace>(space: &S, peeling: &Peeling) -> Hierarchy {
    let n = space.cell_count();
    let max_lambda = peeling.max_lambda;
    // The peeling order is sorted by λ; the suffix starting at
    // `first_ge[k]` holds exactly the cells with λ ≥ k.
    let mut first_ge = vec![0usize; max_lambda as usize + 2];
    {
        let mut i = 0usize;
        for k in 0..=max_lambda {
            while i < peeling.order.len() && peeling.lambda_of(peeling.order[i]) < k {
                i += 1;
            }
            first_ge[k as usize] = i;
        }
        first_ge[max_lambda as usize + 1] = peeling.order.len();
    }

    let mut raw = RawHierarchy::default();
    let mut label = vec![NO_NODE; n];
    let mut label_prev = vec![NO_NODE; n];
    // Per level-component: the hierarchy node it maps to (its own node,
    // or — for delta-free components — the inherited ancestor node).
    let mut emitted_cur: Vec<u32> = Vec::new();
    let mut emitted_prev: Vec<u32> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();

    for k in 1..=max_lambda {
        emitted_cur.clear();
        let suffix = &peeling.order[first_ge[k as usize]..];
        for &c in suffix {
            label[c as usize] = NO_NODE;
        }
        let mut comp_count = 0u32;
        for &c0 in suffix {
            if label[c0 as usize] != NO_NODE {
                continue;
            }
            let comp = comp_count;
            comp_count += 1;
            label[c0 as usize] = comp;
            queue.clear();
            queue.push(c0);
            let mut delta: Vec<u32> = Vec::new();
            let mut head = 0usize;
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                if peeling.lambda_of(x) == k {
                    delta.push(x);
                }
                space.for_each_container(x, |others| {
                    if others.iter().any(|&v| peeling.lambda_of(v) < k) {
                        return;
                    }
                    for &v in others {
                        if label[v as usize] == NO_NODE {
                            label[v as usize] = comp;
                            queue.push(v);
                        }
                    }
                });
            }
            let parent = if k == 1 {
                NO_NODE
            } else {
                emitted_prev[label_prev[c0 as usize] as usize]
            };
            let node = if delta.is_empty() {
                parent // nucleus identical to its unique child: pass through
            } else {
                raw.push(k, parent, delta)
            };
            emitted_cur.push(node);
        }
        std::mem::swap(&mut label, &mut label_prev);
        std::mem::swap(&mut emitted_cur, &mut emitted_prev);
    }

    raw.into_hierarchy(space.r(), space.s(), peeling.lambda.clone(), max_lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::{EdgeSpace, TriangleSpace, VertexSpace};
    use crate::test_graphs;

    #[test]
    fn nested_cores_shape() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let h = naive(&vs, &p);
        h.validate().expect("valid");
        assert_eq!(h.depth(), 3);
        assert_eq!(h.nuclei_at(4).len(), 1);
    }

    #[test]
    fn matches_dft_on_paper_graphs() {
        for g in [
            nucleus_gen::paper::fig2_two_three_cores(),
            nucleus_gen::paper::fig3_bowtie(),
            nucleus_gen::paper::fig4_chained_towers().0,
            nucleus_gen::karate::karate_club(),
        ] {
            let vs = VertexSpace::new(&g);
            let p = peel(&vs);
            let h1 = naive(&vs, &p);
            let (h2, _) = crate::algo::dft::dft(&vs, &p);
            assert_eq!(h1, h2, "(1,2) mismatch");

            let es = EdgeSpace::new(&g);
            let p = peel(&es);
            let h1 = naive(&es, &p);
            let (h2, _) = crate::algo::dft::dft(&es, &p);
            assert_eq!(h1, h2, "(2,3) mismatch");

            let ts = TriangleSpace::new(&g);
            let p = peel(&ts);
            let h1 = naive(&ts, &p);
            let (h2, _) = crate::algo::dft::dft(&ts, &p);
            assert_eq!(h1, h2, "(3,4) mismatch");
        }
    }

    #[test]
    fn empty_graph() {
        let g = nucleus_graph::CsrGraph::from_edges(3, &[]);
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let h = naive(&vs, &p);
        h.validate().expect("valid");
        assert_eq!(h.nucleus_count(), 0);
        assert_eq!(h.node(0).cells.len(), 3);
    }
}
