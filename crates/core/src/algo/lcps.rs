//! LCPS — Level Component Priority Search (Matula & Beck 1983),
//! adapted as in §5.1 of the paper: the "appropriate priority queue" the
//! original authors found hard to maintain is realized with a max-bucket
//! structure, and the interspersed-brackets output becomes hierarchy
//! nodes directly. k-core (1,2) only.

use nucleus_graph::bucket::MaxBuckets;
use nucleus_graph::CsrGraph;

use crate::hierarchy::{Hierarchy, RawHierarchy, NO_NODE};
use crate::peel::Peeling;

/// Runs the LCPS traversal over the core-peeled graph and returns the
/// canonical (1,2) hierarchy.
///
/// Invariant exploited (Matula–Beck): once any vertex of a connected
/// λ ≥ k region enters the priority queue, the entire region is popped
/// before the maximum priority drops below k — so consecutive pops at
/// the same level always belong to the same sub-core, and level changes
/// translate into descending into a new child node (λ rose) or climbing
/// toward the root, inserting a node for a previously unseen level
/// (λ fell).
///
/// ```
/// use nucleus_core::algo::lcps::lcps;
/// use nucleus_core::peel::peel;
/// use nucleus_core::space::VertexSpace;
///
/// let g = nucleus_gen::classic::lollipop(5, 3); // K5 with a tail
/// let p = peel(&VertexSpace::new(&g));
/// let h = lcps(&g, &p);
/// assert_eq!(h.max_lambda(), 4);
/// assert_eq!(h.nuclei_at(4).len(), 1);
/// ```
pub fn lcps(g: &CsrGraph, peeling: &Peeling) -> Hierarchy {
    let n = g.n();
    let mut raw = RawHierarchy::default();
    let mut visited = vec![false; n];
    let mut pq = MaxBuckets::new(peeling.max_lambda);

    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        pq.push(start, peeling.lambda_of(start));
        // Current node in this component's hierarchy path.
        let mut cur = NO_NODE;
        while let Some((v, k)) = pq.pop_max() {
            cur = assign(&mut raw, cur, v, k);
            for &w in g.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    pq.push(w, peeling.lambda_of(w));
                }
            }
        }
    }
    raw.into_hierarchy(1, 2, peeling.lambda.clone(), peeling.max_lambda)
}

/// Places vertex `v` (λ = k) relative to the current node, creating or
/// climbing hierarchy nodes as the level changes. Returns the new
/// current node.
fn assign(raw: &mut RawHierarchy, mut cur: u32, v: u32, k: u32) -> u32 {
    if k == 0 {
        // isolated vertex: belongs to the root directly
        debug_assert_eq!(cur, NO_NODE);
        return cur;
    }
    if cur == NO_NODE {
        return raw.push(k, NO_NODE, vec![v]);
    }
    let cur_lambda = raw.nodes[cur as usize].lambda;
    if k == cur_lambda {
        raw.nodes[cur as usize].cells.push(v);
        return cur;
    }
    if k > cur_lambda {
        // descend into a deeper (new) nucleus
        return raw.push(k, cur, vec![v]);
    }
    // λ fell: climb to the hierarchy position of level k.
    loop {
        let parent = raw.nodes[cur as usize].parent;
        if parent == NO_NODE || raw.nodes[parent as usize].lambda < k {
            break;
        }
        cur = parent;
    }
    let cur_lambda = raw.nodes[cur as usize].lambda;
    if cur_lambda == k {
        raw.nodes[cur as usize].cells.push(v);
        cur
    } else {
        // First vertex seen at level k on this path: splice a node
        // between `cur` (λ > k) and its parent (λ < k or root).
        debug_assert!(cur_lambda > k);
        let parent = raw.nodes[cur as usize].parent;
        let node = raw.push(k, parent, vec![v]);
        raw.nodes[cur as usize].parent = node;
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::peel::peel;
    use crate::space::VertexSpace;
    use crate::test_graphs;

    fn check_matches_dft(g: &CsrGraph) {
        let vs = VertexSpace::new(g);
        let p = peel(&vs);
        let h_lcps = lcps(g, &p);
        h_lcps.validate().expect("valid LCPS hierarchy");
        let (h_dft, _) = dft(&vs, &p);
        assert_eq!(h_lcps, h_dft);
    }

    #[test]
    fn matches_dft_on_structured_graphs() {
        check_matches_dft(&test_graphs::nested_cores());
        check_matches_dft(&nucleus_gen::paper::fig2_two_three_cores());
        check_matches_dft(&nucleus_gen::paper::fig4_chained_towers().0);
        check_matches_dft(&nucleus_gen::karate::karate_club());
        check_matches_dft(&nucleus_gen::classic::star(5));
        check_matches_dft(&nucleus_gen::classic::barbell(5, 3));
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = CsrGraph::from_edges(9, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        // two triangles + isolated vertices 6,7,8
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let h = lcps(&g, &p);
        h.validate().expect("valid");
        assert_eq!(h.nuclei_at(2).len(), 2);
        assert_eq!(h.node(Hierarchy::ROOT).cells.len(), 3);
        check_matches_dft(&g);
    }

    #[test]
    fn level_jumps_insert_intermediate_nodes() {
        // K5 hanging off a path: popping starts in the K5 (λ=4), then the
        // path (λ=1) forces a climb past a level never seen before.
        let g = nucleus_gen::classic::lollipop(5, 4);
        check_matches_dft(&g);
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let h = lcps(&g, &p);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.nuclei_at(1).len(), 1);
        assert_eq!(h.nuclei_at(4).len(), 1);
    }
}
