//! DF-Traversal (Algorithms 5 and 6 of the paper): find every
//! sub-(r,s) nucleus in decreasing λ order with one traversal, stitching
//! the hierarchy-skeleton with the root-augmented disjoint-set forest.
//!
//! The only property DFT needs from [`Peeling::order`] is
//! **λ-monotonicity** (walking it in reverse must enumerate cells in
//! non-increasing λ, so every deeper sub-nucleus is already wired when
//! a shallower one reaches it). Both peeling engines guarantee exactly
//! that — the serial bucket queue by construction, the frontier engine
//! by emitting whole λ-level rounds ([`crate::peel::peel_parallel`]) —
//! so DFT runs unchanged on either, and the equal-λ permutation
//! differences between them cannot change the canonical hierarchy (the
//! engine-equivalence proptests pin this).

use crate::hierarchy::{Hierarchy, NO_NODE};
use crate::peel::Peeling;
use crate::skeleton::Skeleton;
use crate::space::{PeelBackend, PeelSpace};

/// Counters reported alongside the DFT hierarchy (Table 3 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct DftStats {
    /// Number of sub-nuclei discovered (= |T_{r,s}|: DFT finds each
    /// maximal sub-nucleus exactly once).
    pub subnuclei: usize,
}

/// Runs DF-Traversal over an already-peeled space and returns the
/// canonical hierarchy.
///
/// ```
/// use nucleus_core::algo::dft::dft;
/// use nucleus_core::peel::peel;
/// use nucleus_core::space::VertexSpace;
///
/// // the paper's Figure 2: two K4s joined by a degree-2 path — one
/// // 2-core containing two distinct 3-cores
/// let g = nucleus_gen::paper::fig2_two_three_cores();
/// let vs = VertexSpace::new(&g);
/// let p = peel(&vs);
/// let (h, stats) = dft(&vs, &p);
/// assert_eq!(h.nuclei_at(2).len(), 1);
/// assert_eq!(h.nuclei_at(3).len(), 2);
/// assert_eq!(stats.subnuclei, 3); // two λ=3 towers + the λ=2 bridge
/// ```
pub fn dft<S: PeelSpace>(space: &S, peeling: &Peeling) -> (Hierarchy, DftStats) {
    let (mut sk, stats) = dft_skeleton(space, peeling);
    let raw = sk.into_raw();
    let hierarchy = raw.into_hierarchy(
        space.r(),
        space.s(),
        peeling.lambda.clone(),
        peeling.max_lambda,
    );
    (hierarchy, stats)
}

/// The traversal proper: discovers every maximal sub-nucleus in
/// decreasing-λ order and wires the hierarchy-skeleton, without the
/// final contraction. Exposed for skeleton analytics
/// ([`crate::analytics`]); most callers want [`dft`].
pub fn dft_skeleton<B: PeelBackend>(space: &B, peeling: &Peeling) -> (Skeleton, DftStats) {
    let n = space.cell_count();
    let mut sk = Skeleton::new(n);
    let mut visited = vec![false; n];
    // `marked` from Alg. 6, implemented as a stamp per sub-nucleus so no
    // per-call clearing is needed.
    let mut marked: Vec<u32> = Vec::new();
    let mut stamp = 0u32;
    let mut queue: Vec<u32> = Vec::new();
    let mut merge: Vec<u32> = Vec::new();

    // Decreasing-λ sweep: the peeling order is non-decreasing in λ, so
    // its reverse enumerates cells exactly as Alg. 5 lines 4-7 require.
    for idx in (0..peeling.order.len()).rev() {
        let u = peeling.order[idx];
        let k = peeling.lambda_of(u);
        if k == 0 {
            // λ = 0 cells lie in no container: they belong to the root.
            break;
        }
        if visited[u as usize] {
            continue;
        }
        // ---- SubNucleus(u) — Alg. 6 ----
        stamp += 1;
        let sn = sk.new_subnucleus(k);
        marked.push(0);
        merge.clear();
        queue.clear();
        queue.push(u);
        visited[u as usize] = true;
        let mut head = 0usize;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            sk.comp[x as usize] = sn;
            space.for_each_container(x, |others| {
                // Only containers with λ_{r,s}(C) = k qualify (every cell
                // of C must have λ ≥ k; x itself has λ = k).
                if others.iter().any(|&v| peeling.lambda_of(v) < k) {
                    return;
                }
                for &v in others {
                    if peeling.lambda_of(v) == k {
                        if !visited[v as usize] {
                            visited[v as usize] = true;
                            queue.push(v);
                        }
                    } else {
                        // λ(v) > k: v was traversed in an earlier (deeper)
                        // sweep; hook its structure into the skeleton.
                        let s0 = sk.comp[v as usize];
                        debug_assert_ne!(s0, NO_NODE, "deeper cell without comp");
                        if marked[s0 as usize] == stamp {
                            continue;
                        }
                        let s1 = sk.forest.find_r(s0);
                        marked[s0 as usize] = stamp;
                        if s1 == sn || (s1 != s0 && marked[s1 as usize] == stamp) {
                            continue;
                        }
                        marked[s1 as usize] = stamp;
                        if sk.lambda[s1 as usize] > k {
                            sk.forest.attach(s1, sn);
                        } else {
                            debug_assert_eq!(sk.lambda[s1 as usize], k);
                            merge.push(s1);
                        }
                    }
                }
            });
        }
        for &m in &merge {
            sk.forest.union_r(sn, m);
        }
    }

    let stats = DftStats {
        subnuclei: sk.len(),
    };
    (sk, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::{EdgeSpace, VertexSpace};
    use crate::test_graphs;

    #[test]
    fn two_three_cores_are_separated() {
        let g = nucleus_gen::paper::fig2_two_three_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, stats) = dft(&vs, &p);
        h.validate().expect("valid hierarchy");
        // one 2-core containing everything, two 3-cores inside it
        let two_cores = h.nuclei_at(2);
        assert_eq!(two_cores.len(), 1);
        let three_cores = h.nuclei_at(3);
        assert_eq!(three_cores.len(), 2);
        for id in three_cores {
            assert_eq!(h.node(id).subtree_cells, 4);
        }
        assert!(stats.subnuclei >= 3);
    }

    #[test]
    fn fig4_distant_equal_lambda_regions_share_a_core() {
        let (g, reps) = nucleus_gen::paper::fig4_chained_towers();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        h.validate().expect("valid");
        // the two bridges (λ=2) live in the same 2-core node even though
        // they are separated by λ=3 towers
        let a_node = h.node_of_cell(reps[3]);
        let e_node = h.node_of_cell(reps[4]);
        assert_eq!(a_node, e_node);
        assert_eq!(h.node(a_node).lambda, 2);
        // three distinct 3-cores under it
        assert_eq!(h.nuclei_at(3).len(), 3);
    }

    #[test]
    fn bowtie_truss_has_two_nuclei() {
        let g = nucleus_gen::paper::fig3_bowtie();
        let es = EdgeSpace::new(&g);
        let p = peel(&es);
        let (h, _) = dft(&es, &p);
        h.validate().expect("valid");
        // each triangle is its own 1-(2,3) nucleus: triangle connectivity
        // does not pass through the shared vertex
        assert_eq!(h.nuclei_at(1).len(), 2);
    }

    #[test]
    fn three_level_hierarchy_shape() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = dft(&vs, &p);
        h.validate().expect("valid");
        assert_eq!(h.depth(), 3);
    }
}
