//! TCP index (Huang et al., SIGMOD 2014) — the comparison point for the
//! (2,3) decomposition in Table 5.
//!
//! For every vertex `x`, the *Triangle Connectivity Preserving* index
//! `T_x` is the maximum spanning forest of `x`'s ego network, where ego
//! edge `(y, z)` exists iff `{x, y, z}` is a triangle and weighs
//! `min(λ₃(xy), λ₃(xz), λ₃(yz))`. The index answers "k-truss community
//! of an edge" queries via forest-guided traversal without rescanning
//! all triangles. The paper benchmarks *peeling + index construction*
//! (the index must still be traversed to list all communities).

use std::collections::HashMap;

use nucleus_dsf::DisjointSets;
use nucleus_graph::CsrGraph;

use crate::peel::Peeling;

/// The per-vertex maximum-spanning-forest index.
#[derive(Debug)]
pub struct TcpIndex {
    /// Forest edges per vertex: `(y, z, weight)` with `{x,y,z}` a triangle.
    forests: Vec<Vec<(u32, u32, u32)>>,
}

impl TcpIndex {
    /// Builds the TCP index from the (2,3) peeling (`λ₃` per edge).
    pub fn build(g: &CsrGraph, truss: &Peeling) -> Self {
        let n = g.n();
        let mut forests: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); n];
        let mut ego: Vec<(u32, u32, u32)> = Vec::new(); // (weight, y, z)
        for x in 0..n as u32 {
            ego.clear();
            let nbrs = g.neighbors(x);
            let eids = g.neighbor_edge_ids(x);
            // Ego edges: pairs (y, z) of neighbors that are adjacent.
            for (i, (&y, &e_xy)) in nbrs.iter().zip(eids).enumerate() {
                // intersect nbrs[i+1..] with neighbors(y): both sorted
                let (a, ae) = (&nbrs[i + 1..], &eids[i + 1..]);
                let (b, be) = (g.neighbors(y), g.neighbor_edge_ids(y));
                let (mut p, mut q) = (0usize, 0usize);
                while p < a.len() && q < b.len() {
                    match a[p].cmp(&b[q]) {
                        std::cmp::Ordering::Less => p += 1,
                        std::cmp::Ordering::Greater => q += 1,
                        std::cmp::Ordering::Equal => {
                            let z = a[p];
                            let e_xz = ae[p];
                            let e_yz = be[q];
                            let w = truss
                                .lambda_of(e_xy)
                                .min(truss.lambda_of(e_xz))
                                .min(truss.lambda_of(e_yz));
                            ego.push((w, y, z));
                            p += 1;
                            q += 1;
                        }
                    }
                }
            }
            if ego.is_empty() {
                continue;
            }
            // Kruskal, maximum weight first, over ego vertices indexed by
            // their position in x's adjacency list.
            ego.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
            let mut dsu = DisjointSets::new(nbrs.len());
            let pos = |v: u32| nbrs.binary_search(&v).expect("ego vertex adjacent") as u32;
            let forest = &mut forests[x as usize];
            for &(w, y, z) in &ego {
                if dsu.union(pos(y), pos(z)).is_some() {
                    forest.push((y, z, w));
                }
            }
        }
        TcpIndex { forests }
    }

    /// Forest edges stored for vertex `x`.
    pub fn forest(&self, x: u32) -> &[(u32, u32, u32)] {
        &self.forests[x as usize]
    }

    /// Total number of forest edges (index size).
    pub fn size(&self) -> usize {
        self.forests.iter().map(|f| f.len()).sum()
    }

    /// Neighbors of `from` reachable in `T_x` using only forest edges of
    /// weight ≥ k (the `V_k(x, from)` set of Huang et al.).
    fn reachable(&self, x: u32, from: u32, k: u32) -> Vec<u32> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(y, z, w) in &self.forests[x as usize] {
            if w >= k {
                adj.entry(y).or_default().push(z);
                adj.entry(z).or_default().push(y);
            }
        }
        let mut out = vec![];
        if !adj.contains_key(&from) {
            // `from` may still be a valid singleton (no qualifying edges)
            return vec![from];
        }
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(v) = stack.pop() {
            out.push(v);
            if let Some(ns) = adj.get(&v) {
                for &w in ns {
                    if seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
        }
        out
    }
}

/// Answers a k-truss-community query: all edges of the k-(2,3) nucleus
/// containing the edge `{u, v}`, or `None` if `λ₃(uv) < k`.
///
/// This is the TCP-guided BFS of Huang et al.: processing an edge
/// `(x, y)` pulls in every edge `(x, z)` with `z` triangle-connected to
/// `y` within `T_x` at weight ≥ k, and symmetrically for `y`.
pub fn tcp_query(
    g: &CsrGraph,
    truss: &Peeling,
    index: &TcpIndex,
    u: u32,
    v: u32,
    k: u32,
) -> Option<Vec<u32>> {
    let start = g.edge_id(u.min(v), u.max(v))?;
    if truss.lambda_of(start) < k {
        return None;
    }
    let mut in_queue = vec![false; g.m()];
    let mut result = Vec::new();
    let mut queue = vec![start];
    in_queue[start as usize] = true;
    let mut head = 0usize;
    while head < queue.len() {
        let e = queue[head];
        head += 1;
        result.push(e);
        let (x, y) = g.endpoints(e);
        for (a, b) in [(x, y), (y, x)] {
            for z in index.reachable(a, b, k) {
                if let Some(e2) = g.edge_id(a.min(z), a.max(z)) {
                    if !in_queue[e2 as usize] {
                        debug_assert!(truss.lambda_of(e2) >= k);
                        in_queue[e2 as usize] = true;
                        queue.push(e2);
                    }
                }
            }
        }
    }
    result.sort_unstable();
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::EdgeSpace;

    fn truss_of(g: &CsrGraph) -> Peeling {
        peel(&EdgeSpace::new(g))
    }

    #[test]
    fn k5_community_is_everything() {
        let g = nucleus_gen::classic::complete(5);
        let truss = truss_of(&g);
        let idx = TcpIndex::build(&g, &truss);
        let community = tcp_query(&g, &truss, &idx, 0, 1, 3).unwrap();
        assert_eq!(community.len(), 10);
    }

    #[test]
    fn bowtie_communities_split_at_shared_vertex() {
        let g = nucleus_gen::paper::fig3_bowtie();
        let truss = truss_of(&g);
        let idx = TcpIndex::build(&g, &truss);
        let left = tcp_query(&g, &truss, &idx, 0, 1, 1).unwrap();
        assert_eq!(left.len(), 3, "only the left triangle");
        let right = tcp_query(&g, &truss, &idx, 3, 4, 1).unwrap();
        assert_eq!(right.len(), 3);
        assert!(left.iter().all(|e| !right.contains(e)));
    }

    #[test]
    fn query_rejects_low_trussness() {
        let g = nucleus_gen::paper::fig3_bowtie();
        let truss = truss_of(&g);
        let idx = TcpIndex::build(&g, &truss);
        assert!(tcp_query(&g, &truss, &idx, 0, 1, 2).is_none());
        assert!(tcp_query(&g, &truss, &idx, 0, 3, 1).is_none()); // no edge
    }

    #[test]
    fn matches_hierarchy_nuclei() {
        // TCP communities must equal the (2,3) nuclei from the hierarchy.
        let g = nucleus_gen::karate::karate_club();
        let es = EdgeSpace::new(&g);
        let truss = peel(&es);
        let idx = TcpIndex::build(&g, &truss);
        let (h, _) = crate::algo::dft::dft(&es, &truss);
        for k in 1..=h.max_lambda() {
            for node in h.nuclei_at(k) {
                let mut cells = h.nucleus_cells(node);
                cells.sort_unstable();
                let (u, v) = g.endpoints(cells[0]);
                let community = tcp_query(&g, &truss, &idx, u, v, k).unwrap();
                assert_eq!(community, cells, "k={k} node={node}");
            }
        }
    }

    #[test]
    fn index_size_is_bounded_by_triangle_incidences() {
        let g = nucleus_gen::classic::complete(6);
        let truss = truss_of(&g);
        let idx = TcpIndex::build(&g, &truss);
        // forest at each vertex has ≤ deg - 1 edges
        for x in g.vertices() {
            assert!(idx.forest(x).len() <= g.degree(x).saturating_sub(1));
        }
        assert!(idx.size() > 0);
    }
}
