//! The canonical hierarchy of (r, s) nuclei.
//!
//! Every algorithm in this crate (Naive, DFT, FND, LCPS) reduces its raw
//! output to the same canonical tree:
//!
//! * node 0 is the **root** (λ = 0, the whole graph); cells lying in no
//!   container (λ = 0) belong directly to it;
//! * every other node is **one k-(r,s) nucleus** with `k = node.lambda`,
//!   holding as `cells` the *delta*: the member cells whose λ equals `k`
//!   (members with larger λ live in descendant nodes);
//! * a child's λ is strictly greater than its parent's, and the full
//!   member set of a nucleus is its subtree's cell union;
//! * non-root nodes are sorted by `(λ, smallest delta cell)`, making
//!   equal decompositions structurally identical (`==`) regardless of
//!   which algorithm produced them.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// Sentinel for "no node" (the root's parent).
pub const NO_NODE: u32 = u32::MAX;

/// One nucleus in the canonical hierarchy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyNode {
    /// The k of this k-(r,s) nucleus (0 only for the root).
    pub lambda: u32,
    /// Parent node id; [`NO_NODE`] for the root.
    pub parent: u32,
    /// Child node ids (sorted ascending).
    pub children: Vec<u32>,
    /// Delta cells: members with λ exactly equal to `lambda`, sorted.
    pub cells: Vec<u32>,
    /// Total member count of the nucleus (delta + all descendants).
    pub subtree_cells: u64,
}

/// Canonical hierarchy of all k-(r,s) nuclei of a graph.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// r of the decomposition.
    pub r: u32,
    /// s of the decomposition.
    pub s: u32,
    nodes: Vec<HierarchyNode>,
    /// Owning node per cell (the node whose delta contains it).
    cell_node: Vec<u32>,
    /// λ per cell (copied from the peeling).
    lambda: Vec<u32>,
    max_lambda: u32,
    /// Lazily-built point-lookup index (see [`HierarchyIndex`]): built
    /// at most once, on the first [`Hierarchy::nucleus_cells`] /
    /// [`Hierarchy::nuclei_at`] style query, then shared by every later
    /// call — including concurrent callers, which is what makes the
    /// read path of a served hierarchy lock-free after warm-up.
    index: OnceLock<HierarchyIndex>,
}

/// Memoized constant-time lookup structures over a finished hierarchy.
///
/// Before this index existed, [`Hierarchy::nucleus_cells`] re-walked
/// the subtree (allocating a stack) per call and
/// [`Hierarchy::nuclei_at`] re-scanned *every* node per call — fine for
/// one-shot reports, pathological for a query service answering
/// millions of point lookups. The index is built once, lazily, behind a
/// [`OnceLock`] (the same pattern the peeling spaces use for their lazy
/// ω counts) and turns both into slice lookups:
///
/// * `subtree_cells[subtree_start[id] ..]` — all member cells of node
///   `id`, laid out so every subtree is one contiguous run. The order
///   reproduces the historical stack-walk order exactly (node delta
///   first, then child subtrees in descending child order), so callers
///   observe bit-identical output, just without the walk.
/// * `level_nodes[level_start[k] .. level_start[k+1]]` — the k-(r,s)
///   nuclei for each `k`, ascending node id, same as the old full scan.
#[derive(Clone, Debug)]
struct HierarchyIndex {
    /// Per node: offset of its subtree's cell run in `subtree_cells`.
    subtree_start: Vec<u32>,
    /// All cells, concatenated in pre-order (children descending).
    subtree_cells: Vec<u32>,
    /// CSR offsets into `level_nodes`, indexed by k (len max_λ + 2).
    level_start: Vec<usize>,
    /// Concatenated `nuclei_at(k)` answers for k = 0..=max_λ.
    level_nodes: Vec<u32>,
}

impl Hierarchy {
    /// Id of the root node (always 0).
    pub const ROOT: u32 = 0;

    /// All nodes, root first.
    pub fn nodes(&self) -> &[HierarchyNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: u32) -> &HierarchyNode {
        &self.nodes[id as usize]
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of *nuclei* (non-root nodes).
    pub fn nucleus_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Maximum λ over all cells.
    pub fn max_lambda(&self) -> u32 {
        self.max_lambda
    }

    /// λ of a cell.
    pub fn lambda_of(&self, cell: u32) -> u32 {
        self.lambda[cell as usize]
    }

    /// λ of every cell.
    pub fn lambdas(&self) -> &[u32] {
        &self.lambda
    }

    /// The node whose delta owns `cell`. For a cell with λ = k this node
    /// is the **maximum k-(r,s) nucleus** of the cell (Definition 3).
    pub fn node_of_cell(&self, cell: u32) -> u32 {
        self.cell_node[cell as usize]
    }

    /// The memoized lookup index, built on first use. Interior state is
    /// immutable after canonicalization, so the build is race-free and
    /// every later call — from any thread — is a plain read.
    fn index(&self) -> &HierarchyIndex {
        self.index.get_or_init(|| {
            // Subtree CSR: one stack walk from the root. Children are
            // pushed ascending and popped descending, and a popped
            // node's children land *above* its unvisited siblings, so
            // this is a genuine pre-order DFS: every subtree's cells
            // come out contiguous, and the run for any node reproduces
            // the historical per-call stack order byte for byte.
            let mut subtree_start = vec![0u32; self.nodes.len()];
            let mut subtree_cells = Vec::with_capacity(self.lambda.len());
            let mut stack = vec![Self::ROOT];
            while let Some(x) = stack.pop() {
                let node = &self.nodes[x as usize];
                subtree_start[x as usize] = subtree_cells.len() as u32;
                subtree_cells.extend_from_slice(&node.cells);
                stack.extend_from_slice(&node.children);
            }
            debug_assert_eq!(subtree_cells.len(), self.lambda.len());
            // Level CSR: counting sort over the k-spans (parent.λ, λ]
            // of every non-root node, filled in ascending node id so
            // each per-k list matches the old full-scan order.
            let levels = self.max_lambda as usize + 1;
            let mut level_start = vec![0usize; levels + 1];
            for node in self.nodes.iter().skip(1) {
                let lo = self.nodes[node.parent as usize].lambda as usize + 1;
                for k in lo..=node.lambda as usize {
                    level_start[k + 1] += 1;
                }
            }
            for k in 0..levels {
                level_start[k + 1] += level_start[k];
            }
            let mut fill = level_start.clone();
            let mut level_nodes = vec![0u32; level_start[levels]];
            for (id, node) in self.nodes.iter().enumerate().skip(1) {
                let lo = self.nodes[node.parent as usize].lambda as usize + 1;
                for k in lo..=node.lambda as usize {
                    level_nodes[fill[k]] = id as u32;
                    fill[k] += 1;
                }
            }
            HierarchyIndex {
                subtree_start,
                subtree_cells,
                level_start,
                level_nodes,
            }
        })
    }

    /// All member cells of the nucleus rooted at `id` (its subtree).
    ///
    /// Served from the memoized index: the first call over a hierarchy
    /// builds it (O(cells)), every later call is a slice copy.
    pub fn nucleus_cells(&self, id: u32) -> Vec<u32> {
        self.nucleus_cells_slice(id).to_vec()
    }

    /// Borrowed, allocation-free view of [`Hierarchy::nucleus_cells`] —
    /// the point-lookup primitive a query service serves from.
    pub fn nucleus_cells_slice(&self, id: u32) -> &[u32] {
        let idx = self.index();
        let start = idx.subtree_start[id as usize] as usize;
        &idx.subtree_cells[start..start + self.nodes[id as usize].subtree_cells as usize]
    }

    /// Ids of all k-(r,s) nuclei for a fixed `k`: nodes with λ ≥ k whose
    /// parent has λ < k. (A node with λ = 5 over a λ = 2 parent *is* the
    /// 3-, 4- and 5-nucleus of its cells — the sets coincide.)
    ///
    /// Served from the memoized index; see
    /// [`Hierarchy::nuclei_at_slice`] for the allocation-free form.
    pub fn nuclei_at(&self, k: u32) -> Vec<u32> {
        self.nuclei_at_slice(k).to_vec()
    }

    /// Borrowed form of [`Hierarchy::nuclei_at`] (empty for
    /// `k > max_lambda`).
    pub fn nuclei_at_slice(&self, k: u32) -> &[u32] {
        assert!(k >= 1, "k = 0 is the whole graph (the root)");
        if k > self.max_lambda {
            return &[];
        }
        let idx = self.index();
        &idx.level_nodes[idx.level_start[k as usize]..idx.level_start[k as usize + 1]]
    }

    /// Leaf nuclei (no children): the locally densest subgraphs.
    pub fn leaves(&self) -> Vec<u32> {
        (1..self.nodes.len() as u32)
            .filter(|&id| self.nodes[id as usize].children.is_empty())
            .collect()
    }

    /// The node whose subtree is the k-(r,s) nucleus containing `cell`,
    /// or `None` when `λ(cell) < k` (the cell is in no such nucleus).
    ///
    /// This is the "community search" primitive: *the* k-core /
    /// k-truss-community of a query vertex or edge, in O(depth).
    pub fn nucleus_of_cell_at(&self, cell: u32, k: u32) -> Option<u32> {
        if k == 0 || self.lambda[cell as usize] < k {
            return None;
        }
        // Walk up from the owning node to the shallowest node with λ ≥ k.
        let mut cur = self.cell_node[cell as usize];
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == NO_NODE || self.nodes[p as usize].lambda < k {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// Per-level nucleus counts: `profile()[k]` = number of k-(r,s)
    /// nuclei (index 0 is unused; the root is not a nucleus).
    pub fn level_profile(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.max_lambda as usize + 1];
        for (id, node) in self.nodes.iter().enumerate().skip(1) {
            // node represents the k-nuclei for k in (parent.λ, node.λ]
            let lo = self.nodes[node.parent as usize].lambda + 1;
            let _ = id;
            for k in lo..=node.lambda {
                out[k as usize] += 1;
            }
        }
        out
    }

    /// Walks from `id` to the root, yielding the chain of enclosing
    /// nuclei (excluding the root).
    pub fn ancestors(&self, id: u32) -> Vec<u32> {
        let mut out = vec![];
        let mut cur = self.nodes[id as usize].parent;
        while cur != NO_NODE && cur != Self::ROOT {
            out.push(cur);
            cur = self.nodes[cur as usize].parent;
        }
        out
    }

    /// Depth of the hierarchy (root = 0).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        // children always follow parents? Not guaranteed by id order for
        // the root's children — but parent ids are smaller than child ids
        // only for λ ordering... compute defensively via BFS.
        let mut stack = vec![Self::ROOT];
        while let Some(x) = stack.pop() {
            for &c in &self.nodes[x as usize].children {
                depth[c as usize] = depth[x as usize] + 1;
                max = max.max(depth[c as usize]);
                stack.push(c);
            }
        }
        max
    }

    /// Structural invariant check; returns a description of the first
    /// violation. Cheap enough to run in tests on every result.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        if n == 0 {
            return Err("no root".into());
        }
        if self.nodes[0].parent != NO_NODE || self.nodes[0].lambda != 0 {
            return Err("node 0 is not a λ=0 root".into());
        }
        let mut seen_cells = vec![false; self.lambda.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            if id > 0 {
                let p = node.parent as usize;
                if p >= n {
                    return Err(format!("node {id}: bad parent"));
                }
                if self.nodes[p].lambda >= node.lambda {
                    return Err(format!(
                        "node {id}: parent λ {} not smaller than λ {}",
                        self.nodes[p].lambda, node.lambda
                    ));
                }
                if !self.nodes[p].children.contains(&(id as u32)) {
                    return Err(format!("node {id} missing from parent's children"));
                }
                if node.cells.is_empty() {
                    return Err(format!("node {id}: empty delta"));
                }
            }
            if node.cells.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("node {id}: cells not sorted/unique"));
            }
            for &c in &node.cells {
                if seen_cells[c as usize] {
                    return Err(format!("cell {c} in two nodes"));
                }
                seen_cells[c as usize] = true;
                if self.lambda[c as usize] != node.lambda {
                    return Err(format!(
                        "cell {c}: λ {} but owner node λ {}",
                        self.lambda[c as usize], node.lambda
                    ));
                }
                if self.cell_node[c as usize] != id as u32 {
                    return Err(format!("cell {c}: cell_node mismatch"));
                }
            }
            for &c in &node.children {
                if self.nodes[c as usize].parent != id as u32 {
                    return Err(format!("child {c} of {id}: parent mismatch"));
                }
            }
        }
        if let Some(missing) = seen_cells.iter().position(|&s| !s) {
            return Err(format!("cell {missing} not assigned to any node"));
        }
        // subtree counts — via an explicit walk, NOT the memoized
        // index: the index is built from these very fields, so checking
        // against it would be vacuous (and a corrupt tree could make
        // the build itself misbehave).
        for id in 0..n as u32 {
            let mut expect = 0u64;
            let mut stack = vec![id];
            while let Some(x) = stack.pop() {
                let node = &self.nodes[x as usize];
                expect += node.cells.len() as u64;
                stack.extend_from_slice(&node.children);
            }
            if self.nodes[id as usize].subtree_cells != expect {
                return Err(format!("node {id}: subtree count mismatch"));
            }
        }
        Ok(())
    }
}

impl PartialEq for Hierarchy {
    /// Canonical equality: same (r, s), same λ per cell, and structurally
    /// identical node lists (canonical ordering makes this well-defined
    /// across algorithms). The memoized index is derived state and never
    /// participates.
    fn eq(&self, other: &Self) -> bool {
        self.r == other.r
            && self.s == other.s
            && self.lambda == other.lambda
            && self.nodes == other.nodes
    }
}

impl Eq for Hierarchy {}

// Hand-written (not derived) so the lazy index stays out of the wire
// format: the JSON shape — field names and order — is exactly what the
// pre-index derive produced, so exported hierarchies are byte-stable
// across the change.
impl Serialize for Hierarchy {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("r".to_string(), self.r.to_value()),
            ("s".to_string(), self.s.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("cell_node".to_string(), self.cell_node.to_value()),
            ("lambda".to_string(), self.lambda.to_value()),
            ("max_lambda".to_string(), self.max_lambda.to_value()),
        ])
    }
}

impl Deserialize for Hierarchy {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Hierarchy {
            r: Deserialize::from_value(v.field("r")?)?,
            s: Deserialize::from_value(v.field("s")?)?,
            nodes: Deserialize::from_value(v.field("nodes")?)?,
            cell_node: Deserialize::from_value(v.field("cell_node")?)?,
            lambda: Deserialize::from_value(v.field("lambda")?)?,
            max_lambda: Deserialize::from_value(v.field("max_lambda")?)?,
            index: OnceLock::new(),
        })
    }
}

/// Pre-canonical hierarchy: what algorithms hand over. Nodes may appear
/// in any order with any id scheme; `parent == NO_NODE` means "child of
/// the root". Empty raw nodes are allowed and get contracted away.
#[derive(Debug, Default)]
pub struct RawHierarchy {
    /// (λ, parent raw-id or NO_NODE, delta cells)
    pub nodes: Vec<RawNode>,
}

/// One pre-canonical node.
#[derive(Debug)]
pub struct RawNode {
    /// λ of the nucleus.
    pub lambda: u32,
    /// Raw id of the parent node, or [`NO_NODE`] for "under the root".
    pub parent: u32,
    /// Delta cells (need not be sorted).
    pub cells: Vec<u32>,
}

impl RawHierarchy {
    /// Adds a node, returning its raw id.
    pub fn push(&mut self, lambda: u32, parent: u32, cells: Vec<u32>) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(RawNode {
            lambda,
            parent,
            cells,
        });
        id
    }

    /// Canonicalizes into a [`Hierarchy`].
    ///
    /// `lambda` is the per-cell λ array from the peeling; cells not owned
    /// by any raw node must have λ = 0 and are attached to the root.
    pub fn into_hierarchy(
        mut self,
        r: u32,
        s: u32,
        lambda: Vec<u32>,
        max_lambda: u32,
    ) -> Hierarchy {
        let raw_n = self.nodes.len();
        // 1. Contract empty raw nodes: splice them out by reparenting
        //    their children transitively past them. Emptiness is
        //    snapshotted up front because cells are moved out below.
        let is_empty: Vec<bool> = self.nodes.iter().map(|n| n.cells.is_empty()).collect();
        let resolve = move |nodes: &Vec<RawNode>, mut p: u32| -> u32 {
            while p != NO_NODE && is_empty[p as usize] {
                p = nodes[p as usize].parent;
            }
            p
        };
        // 2. Canonical order for surviving nodes: (λ, min cell).
        let mut keyed: Vec<(u32, u32, u32)> = Vec::new(); // (λ, min_cell, raw id)
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.cells.is_empty() {
                let min_cell = *node.cells.iter().min().expect("non-empty");
                keyed.push((node.lambda, min_cell, i as u32));
            }
        }
        keyed.sort_unstable();
        let mut canon_id = vec![NO_NODE; raw_n];
        for (pos, &(_, _, raw)) in keyed.iter().enumerate() {
            canon_id[raw as usize] = pos as u32 + 1; // 0 is the root
        }

        let n_cells = lambda.len();
        let mut nodes: Vec<HierarchyNode> = Vec::with_capacity(keyed.len() + 1);
        nodes.push(HierarchyNode {
            lambda: 0,
            parent: NO_NODE,
            children: vec![],
            cells: vec![],
            subtree_cells: 0,
        });
        let mut cell_node = vec![Hierarchy::ROOT; n_cells];
        for &(lam, _, raw) in &keyed {
            let raw_node = &mut self.nodes[raw as usize];
            let mut cells = std::mem::take(&mut raw_node.cells);
            cells.sort_unstable();
            let id = nodes.len() as u32;
            for &c in &cells {
                cell_node[c as usize] = id;
            }
            nodes.push(HierarchyNode {
                lambda: lam,
                parent: NO_NODE, // fixed below
                children: vec![],
                cells,
                subtree_cells: 0,
            });
        }
        // Root delta: unassigned cells (must be λ = 0).
        let root_cells: Vec<u32> = (0..n_cells as u32)
            .filter(|&c| cell_node[c as usize] == Hierarchy::ROOT)
            .collect();
        debug_assert!(root_cells.iter().all(|&c| lambda[c as usize] == 0));
        nodes[0].cells = root_cells;
        // 3. Parents in canonical ids.
        for (pos, &(_, _, raw)) in keyed.iter().enumerate() {
            let p_raw = resolve(&self.nodes, self.nodes[raw as usize].parent);
            let p = if p_raw == NO_NODE {
                Hierarchy::ROOT
            } else {
                canon_id[p_raw as usize]
            };
            nodes[pos + 1].parent = p;
        }
        // 4. Children lists.
        for id in 1..nodes.len() {
            let p = nodes[id].parent as usize;
            nodes[p].children.push(id as u32);
        }
        for node in &mut nodes {
            node.children.sort_unstable();
        }
        // 5. Subtree counts: a child's λ is strictly larger than its
        //    parent's, so its canonical id is larger too — one reverse
        //    sweep accumulates bottom-up.
        for id in (1..nodes.len()).rev() {
            nodes[id].subtree_cells += nodes[id].cells.len() as u64;
            let sub = nodes[id].subtree_cells;
            let p = nodes[id].parent as usize;
            nodes[p].subtree_cells += sub;
        }
        nodes[0].subtree_cells += nodes[0].cells.len() as u64;

        Hierarchy {
            r,
            s,
            nodes,
            cell_node,
            lambda,
            max_lambda,
            index: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built: cells 0..6; node A λ=1 {0,1}, node B λ=3 {2,3} under A,
    /// node C λ=2 {4,5} under A... (invalid: B(3) under A(1), C(2) under A)
    /// cell 6 has λ=0 → root.
    fn sample_raw() -> (RawHierarchy, Vec<u32>) {
        let mut raw = RawHierarchy::default();
        let a = raw.push(1, NO_NODE, vec![1, 0]);
        let _b = raw.push(3, a, vec![3, 2]);
        let _c = raw.push(2, a, vec![5, 4]);
        let lambda = vec![1, 1, 3, 3, 2, 2, 0];
        (raw, lambda)
    }

    #[test]
    fn canonicalization_orders_and_links() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        h.validate().expect("valid");
        assert_eq!(h.len(), 4);
        // canonical order: root, then λ=1{0,1}, λ=2{4,5}, λ=3{2,3}
        assert_eq!(h.node(1).lambda, 1);
        assert_eq!(h.node(2).lambda, 2);
        assert_eq!(h.node(3).lambda, 3);
        assert_eq!(h.node(1).cells, vec![0, 1]);
        assert_eq!(h.node(2).parent, 1);
        assert_eq!(h.node(3).parent, 1);
        assert_eq!(h.node(0).cells, vec![6]);
        assert_eq!(h.node(1).subtree_cells, 6);
        assert_eq!(h.node(0).subtree_cells, 7);
    }

    #[test]
    fn node_and_cell_queries() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        assert_eq!(h.node_of_cell(2), 3);
        assert_eq!(h.node_of_cell(6), Hierarchy::ROOT);
        let mut cells = h.nucleus_cells(1);
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(h.nuclei_at(1), vec![1]);
        assert_eq!(h.nuclei_at(2), vec![2, 3]);
        assert_eq!(h.nuclei_at(3), vec![3]);
        assert_eq!(h.leaves(), vec![2, 3]);
        assert_eq!(h.ancestors(3), vec![1]);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.max_lambda(), 3);
        assert_eq!(h.nucleus_count(), 3);
    }

    #[test]
    fn per_cell_level_queries() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        // cell 2 has λ=3: its 3-nucleus is node 3, its 1-nucleus is node 1
        assert_eq!(h.nucleus_of_cell_at(2, 3), Some(3));
        assert_eq!(h.nucleus_of_cell_at(2, 2), Some(3)); // same set at k=2
        assert_eq!(h.nucleus_of_cell_at(2, 1), Some(1));
        assert_eq!(h.nucleus_of_cell_at(2, 4), None);
        // cell 0 has λ=1
        assert_eq!(h.nucleus_of_cell_at(0, 1), Some(1));
        assert_eq!(h.nucleus_of_cell_at(0, 2), None);
        // λ=0 cell is in no nucleus
        assert_eq!(h.nucleus_of_cell_at(6, 1), None);
        // consistency with nuclei_at
        for k in 1..=3 {
            for id in h.nuclei_at(k) {
                for c in h.nucleus_cells(id) {
                    assert_eq!(h.nucleus_of_cell_at(c, k), Some(id), "k={k}");
                }
            }
        }
    }

    #[test]
    fn level_profile_counts_implicit_levels() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        // k=1: node1; k=2: node2 + node3 (which spans k=2..3); k=3: node3
        assert_eq!(h.level_profile(), vec![0, 1, 2, 1]);
        for k in 1..=3 {
            assert_eq!(h.level_profile()[k as usize], h.nuclei_at(k).len());
        }
    }

    #[test]
    fn empty_nodes_are_contracted() {
        let mut raw = RawHierarchy::default();
        let ghost = raw.push(1, NO_NODE, vec![]);
        let _real = raw.push(2, ghost, vec![0, 1]);
        let lambda = vec![2, 2];
        let h = raw.into_hierarchy(1, 2, lambda, 2);
        h.validate().expect("valid");
        assert_eq!(h.len(), 2);
        assert_eq!(h.node(1).parent, Hierarchy::ROOT);
    }

    #[test]
    fn equality_is_canonical() {
        let (raw1, lambda1) = sample_raw();
        let h1 = raw1.into_hierarchy(1, 2, lambda1, 3);
        // same content, different raw ordering / parent wiring order
        let mut raw2 = RawHierarchy::default();
        let a = raw2.push(1, NO_NODE, vec![0, 1]);
        let _c = raw2.push(2, a, vec![4, 5]);
        let _b = raw2.push(3, a, vec![2, 3]);
        let h2 = raw2.into_hierarchy(1, 2, vec![1, 1, 3, 3, 2, 2, 0], 3);
        assert_eq!(h1, h2);
    }

    #[test]
    fn validate_catches_breakage() {
        let (raw, lambda) = sample_raw();
        let mut h = raw.into_hierarchy(1, 2, lambda, 3);
        h.nodes[2].lambda = 1; // parent λ no longer smaller? (parent is 1, λ=1)
        assert!(h.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        let json = serde_json::to_string(&h).unwrap();
        let back: Hierarchy = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // The manual impls keep the pre-index field layout: the lazy
        // lookup index must never leak into the wire format, even after
        // it has been built.
        let _ = h.nucleus_cells(0);
        assert_eq!(serde_json::to_string(&h).unwrap(), json);
        for field in ["\"r\"", "\"s\"", "\"nodes\"", "\"cell_node\"", "\"lambda\""] {
            assert!(json.contains(field), "{json}");
        }
        assert!(!json.contains("index"), "{json}");
    }

    /// The pre-index implementations, kept verbatim as oracles: the
    /// memoized CSR lookups must reproduce their output — order
    /// included — on every node and level.
    fn walk_nucleus_cells(h: &Hierarchy, id: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(x) = stack.pop() {
            let node = h.node(x);
            out.extend_from_slice(&node.cells);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    fn scan_nuclei_at(h: &Hierarchy, k: u32) -> Vec<u32> {
        let mut out = vec![];
        for (id, node) in h.nodes().iter().enumerate().skip(1) {
            if node.lambda >= k && h.node(node.parent).lambda < k {
                out.push(id as u32);
            }
        }
        out
    }

    #[test]
    fn memoized_index_matches_the_walking_oracles() {
        // A deeper, bushier tree than sample_raw: two branches under a
        // λ=1 node, one of them nested twice, plus a second top-level
        // nucleus and λ=0 strays.
        let mut raw = RawHierarchy::default();
        let a = raw.push(1, NO_NODE, vec![0, 1, 2]);
        let b = raw.push(2, a, vec![3, 4]);
        let _c = raw.push(4, b, vec![5]);
        let _d = raw.push(3, b, vec![6, 7]);
        let _e = raw.push(2, a, vec![8]);
        let f = raw.push(1, NO_NODE, vec![9]);
        let _g = raw.push(5, f, vec![10, 11]);
        let lambda = vec![1, 1, 1, 2, 2, 4, 3, 3, 2, 1, 5, 5, 0, 0];
        let h = raw.into_hierarchy(2, 3, lambda, 5);
        h.validate().expect("valid");
        for id in 0..h.len() as u32 {
            assert_eq!(
                h.nucleus_cells(id),
                walk_nucleus_cells(&h, id),
                "node {id}: memoized cells diverge from the walk"
            );
            assert_eq!(h.nucleus_cells_slice(id), &walk_nucleus_cells(&h, id)[..]);
        }
        for k in 1..=h.max_lambda() {
            assert_eq!(h.nuclei_at(k), scan_nuclei_at(&h, k), "k={k}");
            assert_eq!(h.nuclei_at_slice(k), &scan_nuclei_at(&h, k)[..], "k={k}");
            assert_eq!(h.level_profile()[k as usize], h.nuclei_at_slice(k).len());
        }
        // Past the deepest level: empty, no panic.
        assert!(h.nuclei_at_slice(h.max_lambda() + 1).is_empty());
        assert!(h.nuclei_at(h.max_lambda() + 7).is_empty());
    }

    #[test]
    fn memoized_index_handles_degenerate_hierarchies() {
        // Root-only: every cell has λ = 0.
        let h = RawHierarchy::default().into_hierarchy(1, 2, vec![0, 0, 0], 0);
        assert_eq!(h.nucleus_cells(Hierarchy::ROOT), vec![0, 1, 2]);
        assert!(h.nuclei_at_slice(1).is_empty());
        // Zero cells entirely.
        let h = RawHierarchy::default().into_hierarchy(1, 2, vec![], 0);
        assert!(h.nucleus_cells(Hierarchy::ROOT).is_empty());
        assert!(h.nucleus_cells_slice(Hierarchy::ROOT).is_empty());
    }

    #[test]
    fn memoized_index_is_shared_across_threads() {
        let (raw, lambda) = sample_raw();
        let h = raw.into_hierarchy(1, 2, lambda, 3);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..h.len() as u32 {
                        assert_eq!(h.nucleus_cells(id), walk_nucleus_cells(&h, id));
                    }
                    for k in 1..=h.max_lambda() {
                        assert_eq!(h.nuclei_at(k), scan_nuclei_at(&h, k));
                    }
                });
            }
        });
    }
}
