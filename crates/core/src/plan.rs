//! Up-front resolution of a decomposition run: which backend and engine
//! will actually execute, whether the requested combination is legal at
//! all, and a human-readable explanation of both decisions.
//!
//! Historically the cross-constraint checks (frontier × lazy, frontier ×
//! LCPS, LCPS × non-core) were scattered through `decompose_with`'s
//! dispatch; this module is their single home. [`validate`] rejects
//! contradictory combinations with structured [`CoreError`]s, and
//! [`Plan`] records the *resolved* choices ([`Backend::Auto`] and
//! [`PeelEngine::Auto`] pinned to what will really run) together with
//! the size facts that drove them, so a caller — or the `nucleus
//! decompose --explain` CLI flag — can see what a run will do before
//! paying for it.
//!
//! Plans are produced by [`crate::session::Prepared::plan`]; the
//! [`crate::decompose::decompose_with`] wrapper funnels through the same
//! [`validate`] so the one-shot and prepared APIs reject exactly the
//! same combinations.

use std::fmt;

use crate::decompose::{Algorithm, Backend, Kind, PeelEngine};
use crate::error::CoreError;

/// Checks every cross-constraint between a family, an algorithm, a
/// backend policy and an engine policy — the single home of the rules:
///
/// 1. [`PeelEngine::Frontier`] drives every algorithm that runs
///    `Set-λ` ([`Algorithm::Naive`], [`Algorithm::Dft`], and — since
///    the sink-based parallel FND — [`Algorithm::Fnd`]); only
///    [`Algorithm::Lcps`], which walks the graph directly and never
///    peels, rejects it ([`CoreError::InvalidOptions`]).
/// 2. [`PeelEngine::Frontier`] needs O(1) repeated container access, so
///    an explicit [`Backend::Lazy`] contradicts it
///    ([`CoreError::InvalidOptions`]; `Auto` is fine — the frontier
///    request forces materialization past the size cap).
/// 3. [`Algorithm::Lcps`] is defined for [`Kind::Core`] only
///    ([`CoreError::UnsupportedAlgorithm`]).
///
/// The check order is observable (a request can violate several rules
/// at once) and is kept exactly as the pre-session `decompose_with`
/// reported it: engine × algorithm first, then engine × backend, then
/// algorithm × kind.
pub fn validate(
    kind: Kind,
    algorithm: Algorithm,
    backend: Backend,
    engine: PeelEngine,
) -> Result<(), CoreError> {
    if !engine.supports(algorithm) {
        return Err(CoreError::InvalidOptions {
            reason: format!(
                "the frontier peeling engine cannot drive {algorithm}: it never runs Set-λ \
                 (every peeling algorithm — Naive, DFT, FND — accepts the frontier engine)"
            ),
        });
    }
    if engine == PeelEngine::Frontier && backend == Backend::Lazy {
        return Err(frontier_lazy_conflict());
    }
    if algorithm == Algorithm::Lcps && kind != Kind::Core {
        return Err(CoreError::UnsupportedAlgorithm {
            algorithm: "LCPS",
            kind: format!("{kind}"),
        });
    }
    Ok(())
}

/// The frontier × explicit-lazy rejection, shared between [`validate`]
/// and the prepare-time fast-fail in
/// [`crate::session::NucleusBuilder::prepare`] so the wording cannot
/// drift between the two call sites.
pub(crate) fn frontier_lazy_conflict() -> CoreError {
    CoreError::InvalidOptions {
        reason: "the frontier peeling engine needs O(1) repeated container access; \
                 use the materialized (or auto) backend"
            .to_string(),
    }
}

/// The fully resolved description of one decomposition run: every
/// `Auto` pinned to the concrete choice, plus the space facts the
/// decisions were based on. Built by
/// [`crate::session::Prepared::plan`]; rendered by [`Plan::explain`]
/// (also the [`fmt::Display`] impl).
#[derive(Clone, Debug)]
pub struct Plan {
    /// The family that will be decomposed.
    pub kind: Kind,
    /// The algorithm that will run.
    pub algorithm: Algorithm,
    /// Resolved backend: [`Backend::Lazy`] or [`Backend::Materialized`],
    /// never `Auto`.
    pub backend: Backend,
    /// Resolved engine: [`PeelEngine::Serial`] or
    /// [`PeelEngine::Frontier`], never `Auto`.
    pub engine: PeelEngine,
    /// Effective worker threads (`0` already resolved to the CPU count).
    pub threads: usize,
    /// Number of cells (K_r's) in the prepared space.
    pub cells: usize,
    /// Total containers (Σ ω over all cells).
    pub containers: u64,
    /// Estimated [`crate::space::ContainerIndex`] footprint in bytes
    /// (what the `Auto` backend decision compared against its cap; the
    /// index is only actually allocated on materialized runs).
    pub index_bytes: usize,
    /// Why the backend came out as it did (e.g. "auto: estimated index
    /// 1.2 MiB ≤ 1 GiB cap").
    pub backend_reason: String,
    /// Why the engine came out as it did.
    pub engine_reason: String,
    /// How the prepare phase ran (or will run) its cell enumeration —
    /// e.g. `"parallel (t=4)"`, `"serial"`, or
    /// `"skipped (persisted index)"`.
    pub enumeration: String,
}

impl Plan {
    /// Multi-line human-readable rendering: what will run, and why each
    /// `Auto` resolved the way it did.
    pub fn explain(&self) -> String {
        format!(
            "plan: {} {} via {}\n  backend: {} — {}\n  engine:  {} — {}\n  threads: {}\n  \
             enumeration: {}\n  \
             space:   {} cells, {} containers, estimated index {}",
            self.kind.name(),
            self.kind,
            self.algorithm,
            self.backend,
            self.backend_reason,
            self.engine,
            self.engine_reason,
            self.threads,
            self.enumeration,
            self.cells,
            self.containers,
            format_bytes(self.index_bytes),
        )
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// `1536` → `"1.5 KiB"`; keeps `explain` readable across 6 orders of
/// magnitude.
pub(crate) fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_each_conflict() {
        // engine × algorithm: only LCPS (never peels) rejects frontier;
        // FND rides it since the parallel path landed
        let err = validate(
            Kind::Core,
            Algorithm::Lcps,
            Backend::Auto,
            PeelEngine::Frontier,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        assert!(format!("{err}").contains("LCPS"));
        validate(
            Kind::Core,
            Algorithm::Fnd,
            Backend::Auto,
            PeelEngine::Frontier,
        )
        .expect("frontier FND is legal");
        // engine × backend
        let err = validate(
            Kind::Truss,
            Algorithm::Dft,
            Backend::Lazy,
            PeelEngine::Frontier,
        )
        .unwrap_err();
        assert!(format!("{err}").contains("materialized"), "{err}");
        // algorithm × kind
        let err = validate(
            Kind::Truss,
            Algorithm::Lcps,
            Backend::Auto,
            PeelEngine::Auto,
        )
        .unwrap_err();
        assert!(
            matches!(err, CoreError::UnsupportedAlgorithm { .. }),
            "{err}"
        );
        // check order: frontier × LCPS outranks LCPS × kind
        let err = validate(
            Kind::Truss,
            Algorithm::Lcps,
            Backend::Auto,
            PeelEngine::Frontier,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        // every legal combination passes
        for kind in Kind::all() {
            for &algo in Algorithm::for_kind(kind) {
                validate(kind, algo, Backend::Auto, PeelEngine::Auto).unwrap();
            }
        }
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(1536), "1.5 KiB");
        assert_eq!(format_bytes(3 << 20), "3.0 MiB");
        assert_eq!(format_bytes(5 << 30), "5.0 GiB");
    }
}
