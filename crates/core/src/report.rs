//! Human-readable views of a hierarchy: text trees and per-nucleus
//! summaries (sizes, vertex sets, densities).

use nucleus_graph::CsrGraph;

use crate::decompose::Decomposition;
use crate::hierarchy::Hierarchy;
use crate::space::PeelSpace;

/// Summary of one nucleus for reporting.
#[derive(Clone, Debug)]
pub struct NucleusSummary {
    /// Hierarchy node id.
    pub node: u32,
    /// k of the nucleus.
    pub lambda: u32,
    /// Number of member cells (subtree).
    pub cells: u64,
    /// Number of distinct vertices spanned by the member cells.
    pub vertices: usize,
    /// Edge density of the induced subgraph (only computed when the
    /// vertex set is small enough; `None` otherwise).
    pub density: Option<f64>,
}

/// Distinct vertices spanned by the member cells of `node`.
pub fn nucleus_vertices<S: PeelSpace>(space: &S, h: &Hierarchy, node: u32) -> Vec<u32> {
    let mut out = Vec::new();
    for cell in h.nucleus_cells(node) {
        space.cell_vertices(cell, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds a [`NucleusSummary`] for `node`. Density is computed only when
/// the nucleus spans at most `density_limit` vertices (it costs
/// O(|V|² log deg)).
pub fn summarize_nucleus<S: PeelSpace>(
    g: &CsrGraph,
    space: &S,
    h: &Hierarchy,
    node: u32,
    density_limit: usize,
) -> NucleusSummary {
    let verts = nucleus_vertices(space, h, node);
    let density =
        (verts.len() <= density_limit && verts.len() >= 2).then(|| g.induced_density(&verts));
    NucleusSummary {
        node,
        lambda: h.node(node).lambda,
        cells: h.node(node).subtree_cells,
        vertices: verts.len(),
        density,
    }
}

/// Renders the hierarchy as an indented text tree (children in canonical
/// order), up to `max_depth` levels and `max_children` children per node.
pub fn render_tree(h: &Hierarchy, max_depth: usize, max_children: usize) -> String {
    let mut out = String::new();
    fn rec(
        h: &Hierarchy,
        id: u32,
        depth: usize,
        max_depth: usize,
        max_children: usize,
        out: &mut String,
    ) {
        let node = h.node(id);
        let indent = "  ".repeat(depth);
        if id == Hierarchy::ROOT {
            out.push_str(&format!(
                "root: {} cells, {} nuclei, max λ = {}\n",
                node.subtree_cells,
                h.nucleus_count(),
                h.max_lambda()
            ));
        } else {
            out.push_str(&format!(
                "{indent}λ={} | {} cells ({} delta)\n",
                node.lambda,
                node.subtree_cells,
                node.cells.len()
            ));
        }
        if depth >= max_depth {
            if !node.children.is_empty() {
                out.push_str(&format!("{indent}  … {} children\n", node.children.len()));
            }
            return;
        }
        for (i, &c) in node.children.iter().enumerate() {
            if i >= max_children {
                out.push_str(&format!(
                    "{indent}  … {} more children\n",
                    node.children.len() - max_children
                ));
                break;
            }
            rec(h, c, depth + 1, max_depth, max_children, out);
        }
    }
    rec(h, Hierarchy::ROOT, 0, max_depth, max_children, &mut out);
    out
}

/// One-line description of a finished decomposition (for examples/CLI).
/// The two bracketed tags are the *resolved* backend and peeling
/// engine, e.g. `[materialized][frontier]`.
pub fn describe(d: &Decomposition) -> String {
    format!(
        "{} {} [{}][{}] | {} cells, {} nuclei, max λ = {}, depth {} | peel {:?} + post {:?}",
        d.kind,
        d.algorithm,
        d.backend,
        d.engine,
        d.peeling.cell_count(),
        d.hierarchy.nucleus_count(),
        d.hierarchy.max_lambda(),
        d.hierarchy.depth(),
        d.times.peel,
        d.times.post,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{decompose, Algorithm, Kind};
    use crate::peel::peel;
    use crate::space::VertexSpace;
    use crate::test_graphs;

    #[test]
    fn vertices_and_density_of_clique_nucleus() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let (h, _) = crate::algo::dft::dft(&vs, &p);
        // deepest nucleus is the K5
        let deep = h.nuclei_at(4)[0];
        let verts = nucleus_vertices(&vs, &h, deep);
        assert_eq!(verts.len(), 5);
        let s = summarize_nucleus(&g, &vs, &h, deep, 100);
        assert_eq!(s.vertices, 5);
        assert!((s.density.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_rendering_contains_levels() {
        let g = test_graphs::nested_cores();
        let d = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
        let tree = render_tree(&d.hierarchy, 10, 10);
        assert!(tree.contains("root:"));
        assert!(tree.contains("λ=4"));
        let line = describe(&d);
        assert!(line.contains("DFT"));
    }

    #[test]
    fn describe_tags_all_five_kinds() {
        // the one-line description leads with the (r,s) tag for every
        // family, including the session-era (1,3) and (2,4) ones
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let d = decompose(&g, kind, Algorithm::Fnd).unwrap();
            let (r, s) = kind.rs();
            let line = describe(&d);
            assert!(line.starts_with(&format!("({r},{s})")), "{kind}: {line}");
            assert!(line.contains("FND"), "{kind}: {line}");
        }
    }

    #[test]
    fn tree_rendering_truncates() {
        let g = test_graphs::nested_cores();
        let d = decompose(&g, Kind::Core, Algorithm::Dft).unwrap();
        let tree = render_tree(&d.hierarchy, 0, 0);
        assert!(tree.contains("children"));
    }
}
