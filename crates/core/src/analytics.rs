//! Hierarchy-skeleton analytics — the paper's first open question (§6):
//! *"looking at the T_{r,s}s, which are many more than the k-(r,s)
//! nuclei, might reveal more insight about networks."*
//!
//! This module exposes the sub-nucleus structure (the skeleton before
//! contraction): per-sub-nucleus sizes and λ, the λ-level profile, and
//! summary statistics used in Table 3 and for exploratory analysis.

use crate::hierarchy::NO_NODE;
use crate::peel::Peeling;
use crate::skeleton::Skeleton;
use crate::space::PeelBackend;

/// One sub-(r,s) nucleus (T_{r,s}) of the skeleton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubNucleusInfo {
    /// λ of its cells.
    pub lambda: u32,
    /// Number of cells it holds.
    pub size: u32,
}

/// Skeleton-level view of a decomposition.
#[derive(Clone, Debug, Default)]
pub struct SkeletonProfile {
    /// Every sub-nucleus, in discovery order.
    pub sub_nuclei: Vec<SubNucleusInfo>,
    /// Number of cells with λ = 0 (outside every sub-nucleus).
    pub unassigned_cells: usize,
}

impl SkeletonProfile {
    /// Number of sub-nuclei (|T_{r,s}| when built via DFT).
    pub fn count(&self) -> usize {
        self.sub_nuclei.len()
    }

    /// Largest sub-nucleus size.
    pub fn max_size(&self) -> u32 {
        self.sub_nuclei.iter().map(|s| s.size).max().unwrap_or(0)
    }

    /// Mean sub-nucleus size.
    pub fn mean_size(&self) -> f64 {
        if self.sub_nuclei.is_empty() {
            return 0.0;
        }
        let total: u64 = self.sub_nuclei.iter().map(|s| s.size as u64).sum();
        total as f64 / self.sub_nuclei.len() as f64
    }

    /// Number of sub-nuclei per λ level (index = λ).
    pub fn per_level(&self) -> Vec<usize> {
        let max = self.sub_nuclei.iter().map(|s| s.lambda).max().unwrap_or(0);
        let mut out = vec![0usize; max as usize + 1];
        for s in &self.sub_nuclei {
            out[s.lambda as usize] += 1;
        }
        out
    }

    /// Fraction of singleton sub-nuclei — a skew indicator: near 1.0
    /// means the skeleton is as fine as the cell set (the adversarial
    /// upper bound of §4.2), near 0 means large coherent regions.
    pub fn singleton_fraction(&self) -> f64 {
        if self.sub_nuclei.is_empty() {
            return 0.0;
        }
        let singles = self.sub_nuclei.iter().filter(|s| s.size == 1).count();
        singles as f64 / self.sub_nuclei.len() as f64
    }
}

/// Builds the sub-nucleus profile of a peeled space by running the DFT
/// traversal and reading the skeleton *before* contraction.
pub fn skeleton_profile<B: PeelBackend>(space: &B, peeling: &Peeling) -> SkeletonProfile {
    // Re-run the DFT sub-nucleus discovery, but capture sizes.
    // (dft() consumes its skeleton into the hierarchy, so analytics
    // re-derives it; cost is one extra traversal, analysis-time only.)
    let (skeleton, _) = crate::algo::dft::dft_skeleton(space, peeling);
    profile_from_skeleton(&skeleton)
}

/// Profile from a raw skeleton (used by tests and by FND analytics).
pub fn profile_from_skeleton(sk: &Skeleton) -> SkeletonProfile {
    let mut sizes = vec![0u32; sk.lambda.len()];
    let mut unassigned = 0usize;
    for &c in &sk.comp {
        if c == NO_NODE {
            unassigned += 1;
        } else {
            sizes[c as usize] += 1;
        }
    }
    SkeletonProfile {
        sub_nuclei: sk
            .lambda
            .iter()
            .zip(&sizes)
            .map(|(&lambda, &size)| SubNucleusInfo { lambda, size })
            .collect(),
        unassigned_cells: unassigned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::VertexSpace;

    #[test]
    fn fig4_has_five_sub_nuclei() {
        // three λ=3 towers + two λ=2 bridges = 5 T₁,₂s, but only 4 nuclei
        let (g, _) = nucleus_gen::paper::fig4_chained_towers();
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let prof = skeleton_profile(&vs, &p);
        assert_eq!(prof.count(), 5);
        let per = prof.per_level();
        assert_eq!(per[2], 2);
        assert_eq!(per[3], 3);
        assert_eq!(prof.unassigned_cells, 0);
        assert_eq!(prof.max_size(), 4);
        assert!((prof.mean_size() - 16.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_vertices_are_unassigned() {
        let g = nucleus_graph::CsrGraph::from_edges(5, &[(0, 1)]);
        let vs = VertexSpace::new(&g);
        let p = peel(&vs);
        let prof = skeleton_profile(&vs, &p);
        assert_eq!(prof.unassigned_cells, 3);
        assert_eq!(prof.count(), 1);
        assert_eq!(prof.singleton_fraction(), 0.0);
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = SkeletonProfile::default();
        assert_eq!(p.count(), 0);
        assert_eq!(p.max_size(), 0);
        assert_eq!(p.mean_size(), 0.0);
        assert_eq!(p.singleton_fraction(), 0.0);
    }
}
