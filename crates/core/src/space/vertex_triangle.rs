//! (1,3) space: cells are vertices, containers are triangles.
//!
//! A k-(1,3) nucleus is a maximal triangle-connected set of vertices
//! each lying in at least k triangles — the "triangle core" of vertices
//! rather than edges. Like [`super::EdgeK4Space`], this instance exists
//! to exercise the algorithms' genericity (here containers hold **two**
//! other cells), and it is a useful decomposition in its own right for
//! social-network seeding.

use std::sync::OnceLock;

use nucleus_graph::CsrGraph;

use super::{PeelBackend, PeelSpace};

/// The (1,3) peeling space: `ω₃(v)` = number of triangles containing `v`.
pub struct VertexTriangleSpace<'g> {
    g: &'g CsrGraph,
    degrees: OnceLock<Vec<u32>>,
    threads: usize,
}

impl<'g> VertexTriangleSpace<'g> {
    /// Wraps `g`; the triangle enumeration for the ω values runs on the
    /// first [`PeelBackend::degrees`] call (never, for sessions fed
    /// counts by a persisted index).
    pub fn new(g: &'g CsrGraph) -> Self {
        Self::with_threads(g, 1)
    }

    /// Like [`VertexTriangleSpace::new`], but the deferred triangle
    /// enumeration runs on `threads` worker threads (per-worker partial
    /// counts summed in order — identical output to the serial pass).
    pub fn with_threads(g: &'g CsrGraph, threads: usize) -> Self {
        VertexTriangleSpace {
            g,
            degrees: OnceLock::new(),
            threads,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }
}

impl PeelBackend for VertexTriangleSpace<'_> {
    fn cell_count(&self) -> usize {
        self.g.n()
    }

    fn degrees(&self) -> Vec<u32> {
        self.degrees
            .get_or_init(|| {
                if self.threads <= 1 {
                    nucleus_cliques::vertex_triangle_counts(self.g)
                } else {
                    nucleus_cliques::vertex_triangle_counts_parallel(self.g, self.threads)
                }
            })
            .clone()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        // Triangles through `cell`: pairs (u, w) of its neighbors that
        // are adjacent. Enumerate neighbor pairs u < w and probe (u, w).
        let nbrs = self.g.neighbors(cell);
        for (i, &u) in nbrs.iter().enumerate() {
            // intersect nbrs[i+1..] with neighbors(u)
            let a = &nbrs[i + 1..];
            let b = self.g.neighbors(u);
            let (mut p, mut q) = (0usize, 0usize);
            while p < a.len() && q < b.len() {
                match a[p].cmp(&b[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        f(&[u, a[p]]);
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
    }
}

impl PeelSpace for VertexTriangleSpace<'_> {
    fn r(&self) -> u32 {
        1
    }

    fn s(&self) -> u32 {
        3
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        out.push(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::algo::fnd::fnd;
    use crate::algo::naive::naive;
    use crate::peel::{peel, peel_reference};
    use crate::validate::check_semantics;

    #[test]
    fn k5_vertices_have_six_triangles() {
        let g = nucleus_gen::classic::complete(5);
        let s = VertexTriangleSpace::new(&g);
        assert_eq!(s.degrees(), vec![6; 5]); // C(4,2)
        assert_eq!(s.name(), "(1,3)");
        let p = peel(&s);
        assert!(p.lambda.iter().all(|&l| l == 6));
    }

    #[test]
    fn container_count_matches_degree() {
        let g = nucleus_gen::karate::karate_club();
        let s = VertexTriangleSpace::new(&g);
        for v in 0..g.n() as u32 {
            let mut c = 0u32;
            s.for_each_container(v, |_| c += 1);
            assert_eq!(c, s.degrees()[v as usize], "vertex {v}");
        }
    }

    #[test]
    fn bowtie_center_counts_both_triangles() {
        let g = nucleus_gen::paper::fig3_bowtie();
        let s = VertexTriangleSpace::new(&g);
        assert_eq!(s.degrees()[2], 2); // shared vertex
                                       // ... but the two wings are one (1,3) nucleus at k=1? The center
                                       // belongs to both triangles, making them triangle-connected
                                       // through the *vertex* (cells here are vertices, and vertex 2 is
                                       // in both containers) — contrast with the (2,3) split.
        let p = peel(&s);
        let (h, _) = dft(&s, &p);
        assert_eq!(h.nuclei_at(1).len(), 1);
    }

    #[test]
    fn matches_reference_and_algorithms_agree() {
        for g in [
            nucleus_gen::paper::fig1_nucleus_contrast(),
            nucleus_gen::karate::karate_club(),
            nucleus_gen::classic::barbell(5, 2),
        ] {
            let s = VertexTriangleSpace::new(&g);
            let p = peel(&s);
            assert_eq!(p.lambda, peel_reference(&s));
            let h_naive = naive(&s, &p);
            let (h_dft, _) = dft(&s, &p);
            let out = fnd(&s);
            assert_eq!(h_naive, h_dft);
            assert_eq!(h_dft, out.hierarchy);
            check_semantics(&s, &h_dft).expect("(1,3) semantics");
        }
    }
}
