//! (2,4) space: cells are edges, containers are four-cliques.
//!
//! This is the decomposition behind the paper's Figure 1 (the 2-(2,4)
//! nucleus) and a witness that the algorithms are generic in (r, s)
//! beyond the three headline instances: nothing in Naive/DFT/FND/Hypo
//! knows that containers here hold **five** other cells.

use std::sync::OnceLock;

use nucleus_cliques::{k4_edge_degrees, k4_edge_degrees_parallel, TriangleIndex, TriangleList};
use nucleus_graph::CsrGraph;

use super::{PeelBackend, PeelSpace};

/// The (2,4) peeling space: `ω₄(e)` = number of K4s containing edge `e`.
///
/// Containers of `e = {u, v}` are K4s `{u, v, w, x}`: `w, x` are common
/// neighbors of `u, v` (read off the per-edge triangle index) that are
/// themselves adjacent; the other cells are the remaining five edges.
pub struct EdgeK4Space<'g> {
    g: &'g CsrGraph,
    index: OnceLock<TriangleIndex>,
    degrees: OnceLock<Vec<u32>>,
    threads: usize,
}

impl<'g> EdgeK4Space<'g> {
    /// Wraps `g`. Both the triangle index (consulted per container
    /// enumeration) and the per-edge K4 counts are built on first use,
    /// so sessions driven by a persisted index skip them entirely.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self::with_threads(g, 1)
    }

    /// Like [`EdgeK4Space::new`], but the deferred triangle-list +
    /// index builds and the per-edge K4 count run on `threads` worker
    /// threads (all bit-identical to their serial twins).
    pub fn with_threads(g: &'g CsrGraph, threads: usize) -> Self {
        EdgeK4Space {
            g,
            index: OnceLock::new(),
            degrees: OnceLock::new(),
            threads,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }

    fn index(&self) -> &TriangleIndex {
        self.index.get_or_init(|| {
            let tris = TriangleList::build_with_threads(self.g, self.threads);
            TriangleIndex::build_with_threads(self.g, &tris, self.threads)
        })
    }
}

/// Enumerates the K4s containing `e`, passing the five other edge ids.
#[inline]
fn for_each_k4_of_edge<F: FnMut([u32; 5])>(g: &CsrGraph, index: &TriangleIndex, e: u32, mut f: F) {
    let (u, v) = g.endpoints(e);
    let thirds = index.thirds(e); // (w, tid) for triangles {u, v, w}
    for (i, &(w, _)) in thirds.iter().enumerate() {
        // edges to w exist by construction
        let e_uw = g.edge_id(u.min(w), u.max(w)).expect("triangle edge");
        let e_vw = g.edge_id(v.min(w), v.max(w)).expect("triangle edge");
        for &(x, _) in &thirds[i + 1..] {
            // K4 requires the wx edge; w < x in the sorted thirds list
            if let Some(e_wx) = g.edge_id(w, x) {
                let e_ux = g.edge_id(u.min(x), u.max(x)).expect("triangle edge");
                let e_vx = g.edge_id(v.min(x), v.max(x)).expect("triangle edge");
                f([e_uw, e_vw, e_ux, e_vx, e_wx]);
            }
        }
    }
}

impl PeelBackend for EdgeK4Space<'_> {
    fn cell_count(&self) -> usize {
        self.g.m()
    }

    fn degrees(&self) -> Vec<u32> {
        self.degrees
            .get_or_init(|| {
                // counts exactly what `for_each_k4_of_edge` enumerates:
                // adjacent pairs in each edge's third-vertex list
                let index = self.index();
                if self.threads <= 1 {
                    k4_edge_degrees(self.g, index)
                } else {
                    k4_edge_degrees_parallel(self.g, index, self.threads)
                }
            })
            .clone()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        for_each_k4_of_edge(self.g, self.index(), cell, |others| f(&others));
    }
}

impl PeelSpace for EdgeK4Space<'_> {
    fn r(&self) -> u32 {
        2
    }

    fn s(&self) -> u32 {
        4
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        let (u, v) = self.g.endpoints(cell);
        out.push(u);
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dft::dft;
    use crate::algo::fnd::fnd;
    use crate::algo::naive::naive;
    use crate::peel::{peel, peel_reference};
    use crate::validate::check_semantics;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn k5_edges_have_three_k4s() {
        // each edge of K5 is in C(3,2) = 3 K4s
        let g = complete(5);
        let s = EdgeK4Space::new(&g);
        assert_eq!(s.cell_count(), 10);
        assert!(s.degrees().iter().all(|&d| d == 3));
        assert_eq!(s.name(), "(2,4)");
        let p = peel(&s);
        assert!(p.lambda.iter().all(|&l| l == 3));
    }

    #[test]
    fn container_holds_five_other_edges() {
        let g = complete(4);
        let s = EdgeK4Space::new(&g);
        for e in 0..6u32 {
            let mut containers = vec![];
            s.for_each_container(e, |o| containers.push(o.to_vec()));
            assert_eq!(containers.len(), 1);
            let mut all = containers[0].clone();
            all.push(e);
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn degrees_count_containers_at_any_thread_count() {
        for g in [complete(6), nucleus_gen::paper::fig1_nucleus_contrast()] {
            let serial = EdgeK4Space::new(&g).degrees();
            // ω₄(e) must equal the number of containers enumerated for e
            let s = EdgeK4Space::new(&g);
            for e in 0..g.m() as u32 {
                let mut c = 0u32;
                s.for_each_container(e, |_| c += 1);
                assert_eq!(c, serial[e as usize], "edge {e}");
            }
            for threads in [2, 4, 7] {
                assert_eq!(EdgeK4Space::with_threads(&g, threads).degrees(), serial);
            }
        }
    }

    #[test]
    fn matches_reference_peeling() {
        let g = nucleus_gen::paper::fig1_nucleus_contrast();
        let s = EdgeK4Space::new(&g);
        assert_eq!(peel(&s).lambda, peel_reference(&s));
    }

    #[test]
    fn figure1_contrast_2_2_4_vs_2_2_3() {
        // On the octahedron ∪ K5 graph: the 2-(2,3) nucleus covers both
        // halves' dense parts, but the 2-(2,4) nucleus is the K5 alone.
        let g = nucleus_gen::paper::fig1_nucleus_contrast();
        let s24 = EdgeK4Space::new(&g);
        let p24 = peel(&s24);
        let (h24, _) = dft(&s24, &p24);
        h24.validate().expect("valid (2,4)");
        let deep = h24.nuclei_at(2);
        assert_eq!(deep.len(), 1, "one 2-(2,4) nucleus");
        let mut verts = crate::report::nucleus_vertices(&s24, &h24, deep[0]);
        verts.sort_unstable();
        assert_eq!(verts, vec![0, 1, 6, 7, 8], "the K5");

        let s23 = crate::space::EdgeSpace::new(&g);
        let p23 = peel(&s23);
        let (h23, _) = dft(&s23, &p23);
        let two23 = h23.nuclei_at(2);
        let cells: usize = two23
            .iter()
            .map(|&id| h23.node(id).subtree_cells as usize)
            .sum();
        assert!(
            cells > 10,
            "2-(2,3) nuclei must cover more than the K5's edges"
        );
    }

    #[test]
    fn all_algorithms_agree_on_2_4() {
        for g in [
            complete(6),
            nucleus_gen::paper::fig1_nucleus_contrast(),
            nucleus_gen::karate::karate_club(),
        ] {
            let s = EdgeK4Space::new(&g);
            let p = peel(&s);
            let h_naive = naive(&s, &p);
            let (h_dft, _) = dft(&s, &p);
            let out = fnd(&s);
            assert_eq!(h_naive, h_dft);
            assert_eq!(h_dft, out.hierarchy);
            check_semantics(&s, &h_dft).expect("(2,4) semantics");
        }
    }
}
