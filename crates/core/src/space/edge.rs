//! (2,3) space: cells are edges, containers are triangles → k-truss
//! community / k-(2,3) nucleus.

use std::sync::OnceLock;

use nucleus_cliques::parallel::edge_supports_parallel;
use nucleus_cliques::triangles::edge_supports;
use nucleus_graph::CsrGraph;

use super::{PeelBackend, PeelSpace};

/// The triangle peeling space over a graph: `ω₃(e)` = number of
/// triangles through edge `e`. Containers of `e = {u, v}` are found by
/// intersecting the sorted adjacency lists of `u` and `v`, yielding the
/// two companion edge ids per triangle without hashing.
pub struct EdgeSpace<'g> {
    g: &'g CsrGraph,
    supports: OnceLock<Vec<u32>>,
    threads: usize,
}

impl<'g> EdgeSpace<'g> {
    /// Wraps `g`. The triangle enumeration computing edge supports (the
    /// "enumerate all K_r's / find their ω" step of Alg. 1) is deferred
    /// to the first [`PeelBackend::degrees`] call, so sessions whose ω
    /// counts come from a persisted index never pay for it.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self::with_threads(g, 1)
    }

    /// Like [`EdgeSpace::new`], but the deferred support enumeration
    /// runs on `threads` worker threads (per-worker partial counts
    /// summed in order — identical output to the serial pass).
    pub fn with_threads(g: &'g CsrGraph, threads: usize) -> Self {
        EdgeSpace {
            g,
            supports: OnceLock::new(),
            threads,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }
}

impl PeelBackend for EdgeSpace<'_> {
    fn cell_count(&self) -> usize {
        self.g.m()
    }

    fn degrees(&self) -> Vec<u32> {
        self.supports
            .get_or_init(|| {
                if self.threads <= 1 {
                    edge_supports(self.g)
                } else {
                    edge_supports_parallel(self.g, self.threads)
                }
            })
            .clone()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        let (u, v) = self.g.endpoints(cell);
        let (nu, eu) = (self.g.neighbors(u), self.g.neighbor_edge_ids(u));
        let (nv, ev) = (self.g.neighbors(v), self.g.neighbor_edge_ids(v));
        let (mut i, mut j) = (0usize, 0usize);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // nu[i] == nv[j] == w forms triangle {u, v, w}; the
                    // other cells are edges {u, w} and {v, w}.
                    f(&[eu[i], ev[j]]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

impl PeelSpace for EdgeSpace<'_> {
    fn r(&self) -> u32 {
        2
    }

    fn s(&self) -> u32 {
        3
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        let (u, v) = self.g.endpoints(cell);
        out.push(u);
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_are_supports() {
        let g = diamond();
        let s = EdgeSpace::new(&g);
        assert_eq!(s.cell_count(), 5);
        let shared = g.edge_id(1, 2).unwrap();
        assert_eq!(s.degrees()[shared as usize], 2);
    }

    #[test]
    fn containers_yield_companion_edges() {
        let g = diamond();
        let s = EdgeSpace::new(&g);
        let shared = g.edge_id(1, 2).unwrap();
        let mut tris: Vec<[u32; 2]> = vec![];
        s.for_each_container(shared, |o| tris.push([o[0], o[1]]));
        assert_eq!(tris.len(), 2);
        let e01 = g.edge_id(0, 1).unwrap();
        let e02 = g.edge_id(0, 2).unwrap();
        let e13 = g.edge_id(1, 3).unwrap();
        let e23 = g.edge_id(2, 3).unwrap();
        let mut norm: Vec<[u32; 2]> = tris
            .iter()
            .map(|t| {
                let mut t = *t;
                t.sort_unstable();
                t
            })
            .collect();
        norm.sort_unstable();
        let mut expect = vec![
            {
                let mut t = [e01, e02];
                t.sort_unstable();
                t
            },
            {
                let mut t = [e13, e23];
                t.sort_unstable();
                t
            },
        ];
        expect.sort_unstable();
        assert_eq!(norm, expect);
    }

    #[test]
    fn triangle_free_edges_have_no_containers() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = EdgeSpace::new(&g);
        for e in 0..g.m() as u32 {
            let mut count = 0;
            s.for_each_container(e, |_| count += 1);
            assert_eq!(count, 0);
        }
    }

    #[test]
    fn cell_vertices_are_endpoints() {
        let g = diamond();
        let s = EdgeSpace::new(&g);
        let mut out = vec![];
        s.cell_vertices(g.edge_id(1, 3).unwrap(), &mut out);
        assert_eq!(out, vec![1, 3]);
    }
}
