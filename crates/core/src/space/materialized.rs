//! The materialized peeling backend: container incidence flattened into
//! one CSR, built once per space, in parallel.
//!
//! Every lazy space answers [`PeelBackend::for_each_container`] by
//! re-running a sorted-list intersection — work that peeling repeats for
//! a cell each time one of its containers dies. [`ContainerIndex`]
//! performs that enumeration exactly once per cell, storing each
//! container as a fixed-width record of co-cell ids in a
//! [`FlatRecords`] buffer; [`MaterializedSpace`] then serves the whole
//! [`PeelSpace`] interface from the flat index, so `peel`, `dft`,
//! `fnd`, `naive`, `hypo_sweep` and `check_semantics` monomorphize over
//! it unchanged.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use nucleus_cliques::{balanced_ranges, fill_ranges_scoped};
use nucleus_graph::flat::{offsets_from_counts, FlatRecords};
use nucleus_graph::persist_io::{self, GraphFingerprint, IndexImage};
use nucleus_graph::GraphError;

use super::{PeelBackend, PeelSpace};

/// Per-cell peeling state for the frontier engine: a *processed flag*
/// (the round the cell was peeled in, [`PeelCells::ALIVE`] while it has
/// not been) packed into one atomic word with the cell's live ω, shared
/// across worker threads with relaxed atomics.
///
/// The processed flags are how the engine decides container liveness in
/// O(1) per co-cell: a container is **dead** as soon as any member
/// carries a stamp from an earlier round (it was accounted for when
/// that member was peeled), and among members peeled in the *same*
/// round the one with the smallest cell id owns the container's
/// decrements — so every dead container decrements each surviving
/// co-cell exactly once, the accounting the serial loop performs one
/// cell at a time via `is_popped` rescans.
///
/// Packing the flag and ω into a single `u64` is deliberate: the
/// engine's hot loop asks two questions per co-cell — "is this
/// container dead?" (stamp) and "may this co-cell be decremented?"
/// (ω vs. the level floor) — and one packed word answers both with a
/// single cache-line touch, instead of two random accesses into
/// separate arrays. It also makes the concurrent saturating decrement a
/// plain compare-exchange: any cell whose ω is still above the floor is
/// necessarily un-stamped (peeled cells froze their ω at a value ≤ the
/// floor), so the replacement word always carries the `ALIVE` stamp.
///
/// Rounds are globally increasing across λ levels, so the stamps double
/// as a peeled/alive bitmap ([`PeelCells::is_processed`]).
#[derive(Debug)]
pub struct PeelCells {
    /// `stamp << 32 | omega` per cell.
    words: Vec<AtomicU64>,
}

/// One packed word.
#[inline]
const fn pack(stamp: u32, omega: u32) -> u64 {
    ((stamp as u64) << 32) | omega as u64
}

impl PeelCells {
    /// Stamp of a cell that has not been peeled yet. Real round numbers
    /// are bounded by ~2× the cell count (hybrid drains assign each
    /// drained cell a fresh stamp, frontier rounds share one per
    /// round), and cell counts stay below `u32::MAX / 2`, so the
    /// sentinel cannot collide.
    pub const ALIVE: u32 = u32::MAX;

    /// All-alive state from the initial ω degrees.
    pub fn new(degrees: &[u32]) -> Self {
        PeelCells {
            words: degrees
                .iter()
                .map(|&d| AtomicU64::new(pack(Self::ALIVE, d)))
                .collect(),
        }
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when no cells are covered.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `(stamp, ω)` of one cell in a single load.
    #[inline]
    pub fn load(&self, cell: u32) -> (u32, u32) {
        let w = self.words[cell as usize].load(Ordering::Relaxed);
        ((w >> 32) as u32, w as u32)
    }

    /// The round `cell` was peeled in, or [`PeelCells::ALIVE`].
    #[inline]
    pub fn stamp(&self, cell: u32) -> u32 {
        self.load(cell).0
    }

    /// The live ω of `cell` (frozen at its final value once peeled).
    #[inline]
    pub fn omega(&self, cell: u32) -> u32 {
        self.load(cell).1
    }

    /// Whether `cell` has been peeled in any round.
    #[inline]
    pub fn is_processed(&self, cell: u32) -> bool {
        self.stamp(cell) != Self::ALIVE
    }

    /// Records that `cell` was peeled in `round`, preserving its ω.
    /// Called between rounds (never concurrently with readers of the
    /// same round), so a relaxed load + store pair suffices; the
    /// `std::thread::scope` joins publish the stores to the next
    /// round's workers.
    #[inline]
    pub fn mark(&self, cell: u32, round: u32) {
        let w = self.words[cell as usize].load(Ordering::Relaxed);
        self.mark_with_omega(cell, round, w as u32);
    }

    /// [`PeelCells::mark`] when the caller already holds the cell's
    /// current ω (the level-opening scan does) — a single store.
    #[inline]
    pub fn mark_with_omega(&self, cell: u32, round: u32, omega: u32) {
        debug_assert_ne!(round, Self::ALIVE, "round collides with sentinel");
        debug_assert_eq!(self.omega(cell), omega, "stale ω");
        self.words[cell as usize].store(pack(round, omega), Ordering::Relaxed);
    }

    /// Saturating decrement with the `ω > floor` guard, **single-writer
    /// variant**: plain relaxed load + store (compiles to two moves; no
    /// compare-exchange). Only sound when no other thread decrements
    /// concurrently — the engine's inline rounds. Returns `true` when
    /// the decrement performed the `floor + 1 → floor` transition, i.e.
    /// the cell just joined the level's next frontier.
    #[inline]
    pub fn dec_above(&self, cell: u32, floor: u32) -> bool {
        let w = self.words[cell as usize].load(Ordering::Relaxed);
        let om = w as u32;
        if om > floor {
            debug_assert_eq!((w >> 32) as u32, Self::ALIVE, "ω above floor ⟹ unpeeled");
            self.words[cell as usize].store(pack(Self::ALIVE, om - 1), Ordering::Relaxed);
            om == floor + 1
        } else {
            false
        }
    }

    /// [`PeelCells::dec_above`] for concurrent rounds: a
    /// compare-exchange loop, so racing decrements each take effect
    /// exactly once and exactly one caller observes the
    /// `floor + 1 → floor` transition.
    #[inline]
    pub fn dec_above_atomic(&self, cell: u32, floor: u32) -> bool {
        let slot = &self.words[cell as usize];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let om = cur as u32;
            if om <= floor {
                return false;
            }
            debug_assert_eq!((cur >> 32) as u32, Self::ALIVE, "ω above floor ⟹ unpeeled");
            match slot.compare_exchange_weak(
                cur,
                pack(Self::ALIVE, om - 1),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return om == floor + 1,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// `C(s, r) - 1`: co-cells per container record for an (r, s) space.
///
/// ```
/// use nucleus_core::space::materialized::record_arity;
/// assert_eq!(record_arity(1, 2), 1); // k-core: the neighbor
/// assert_eq!(record_arity(2, 3), 2); // truss: two companion edges
/// assert_eq!(record_arity(3, 4), 3); // (3,4): three companion triangles
/// assert_eq!(record_arity(2, 4), 5); // (2,4): five companion edges
/// ```
pub fn record_arity(r: u32, s: u32) -> usize {
    assert!(r < s, "need r < s, got ({r},{s})");
    // C(s, r) with small operands; overflow-free for the s <= 4 spaces
    // here and anything remotely peelable.
    let mut binom = 1u64;
    for i in 0..r as u64 {
        binom = binom * (s as u64 - i) / (i + 1);
    }
    binom as usize - 1
}

/// Where a [`ContainerIndex`]'s records live: built in memory this
/// process ([`FlatRecords`]), or loaded from a persisted index file and
/// served zero-copy off the validated byte image.
#[derive(Clone, Debug)]
enum FlatStore {
    /// Records built by [`ContainerIndex::build`] in this process.
    Owned(FlatRecords),
    /// Records decoded on the fly from a validated on-disk image.
    Loaded(IndexImage),
}

/// Flat CSR of container records: for each cell, one record per
/// container, each record holding the co-cell ids in the lazy backend's
/// enumeration order.
#[derive(Clone, Debug)]
pub struct ContainerIndex {
    store: FlatStore,
}

impl ContainerIndex {
    /// Builds the index from a lazy space using up to `threads` worker
    /// threads. ω degrees give exact record counts, so the buffer is
    /// allocated once and each worker fills a disjoint slice (ranges
    /// balanced by per-cell container count; no locks, no atomics).
    pub fn build<S: PeelSpace + Sync>(space: &S, threads: usize) -> Self {
        Self::build_with_counts(space, space.degrees(), threads)
    }

    /// [`ContainerIndex::build`] with the ω degrees already in hand
    /// (callers that computed them for the `Auto` size estimate avoid a
    /// second full clone). `counts` must be `space.degrees()`.
    pub fn build_with_counts<S: PeelSpace + Sync>(
        space: &S,
        counts: Vec<u32>,
        threads: usize,
    ) -> Self {
        let n = space.cell_count();
        debug_assert_eq!(counts.len(), n, "counts must cover every cell");
        let arity = record_arity(space.r(), space.s());
        let offsets = offsets_from_counts(&counts);
        let mut data = vec![0u32; offsets[n] * arity];
        let weights: Vec<usize> = counts.iter().map(|&c| c as usize + 1).collect();
        let ranges = balanced_ranges(&weights, threads.max(1));
        fill_ranges_scoped(
            &mut data,
            ranges,
            |range| (offsets[range.end] - offsets[range.start]) * arity,
            |range, chunk| {
                let mut pos = 0usize;
                for cell in range {
                    space.for_each_container(cell as u32, |others| {
                        debug_assert_eq!(others.len(), arity, "record arity");
                        chunk[pos..pos + arity].copy_from_slice(others);
                        pos += arity;
                    });
                }
                // Hard assert: a space whose degrees() overstates its
                // enumeration would otherwise leave zero-filled records
                // (co-cell id 0) and corrupt results silently in
                // release builds. O(1) per worker range.
                assert_eq!(pos, chunk.len(), "degrees must match enumeration");
            },
        );
        ContainerIndex {
            store: FlatStore::Owned(FlatRecords::from_parts(offsets, data, arity)),
        }
    }

    /// Wraps a validated on-disk image as an index, served zero-copy
    /// off the image's byte buffer. The caller
    /// ([`crate::persist::PreparedIndex`]) is responsible for checking
    /// the image belongs to the graph at hand; structural validity was
    /// already proven when the image was constructed.
    pub fn from_image(image: IndexImage) -> Self {
        ContainerIndex {
            store: FlatStore::Loaded(image),
        }
    }

    /// Number of cells indexed.
    pub fn cell_count(&self) -> usize {
        match &self.store {
            FlatStore::Owned(f) => f.cells(),
            FlatStore::Loaded(img) => img.flat().cells(),
        }
    }

    /// Co-cells per record (`C(s,r) - 1`).
    pub fn arity(&self) -> usize {
        match &self.store {
            FlatStore::Owned(f) => f.arity(),
            FlatStore::Loaded(img) => img.header().arity as usize,
        }
    }

    /// Total container records (Σ ω over all cells).
    pub fn container_count(&self) -> usize {
        match &self.store {
            FlatStore::Owned(f) => f.record_count(),
            FlatStore::Loaded(img) => img.flat().record_count(),
        }
    }

    /// ω of one cell, read off the offsets.
    #[inline]
    pub fn degree(&self, cell: u32) -> u32 {
        match &self.store {
            FlatStore::Owned(f) => f.count(cell),
            FlatStore::Loaded(img) => img.flat().count(cell),
        }
    }

    /// ω of every cell (reconstructed from the offsets).
    pub fn counts(&self) -> Vec<u32> {
        match &self.store {
            FlatStore::Owned(f) => f.counts(),
            FlatStore::Loaded(img) => img.flat().counts(),
        }
    }

    /// Memory footprint of the index in bytes (heap buffers for owned
    /// stores, the whole image for loaded ones).
    pub fn bytes(&self) -> usize {
        match &self.store {
            FlatStore::Owned(f) => f.bytes(),
            FlatStore::Loaded(img) => img.len(),
        }
    }

    /// `true` when this index is served from a loaded on-disk image
    /// rather than records built in this process.
    pub fn is_loaded(&self) -> bool {
        matches!(self.store, FlatStore::Loaded(_))
    }

    /// Serializes the index in the persisted format for the `(r, s)`
    /// family of a graph with fingerprint `fp`. Loaded stores re-emit
    /// their validated image bytes verbatim (the header already carries
    /// the identity); owned stores encode fresh.
    pub fn write_to<W: Write>(
        &self,
        w: &mut W,
        r: u32,
        s: u32,
        fp: GraphFingerprint,
    ) -> Result<(), GraphError> {
        match &self.store {
            FlatStore::Owned(f) => persist_io::write_index(w, r, s, fp, f),
            FlatStore::Loaded(img) => {
                w.write_all(img.raw())?;
                Ok(())
            }
        }
    }

    /// Estimated index footprint for a space **without building it**:
    /// record storage plus the offset array. Drives the `Auto` backend
    /// heuristic in [`crate::decompose::Backend`].
    pub fn estimate_bytes<S: PeelSpace>(space: &S) -> usize {
        Self::estimate_bytes_from(space.r(), space.s(), &space.degrees())
    }

    /// [`ContainerIndex::estimate_bytes`] from already-computed ω
    /// degrees, sparing the `degrees()` clone.
    pub fn estimate_bytes_from(r: u32, s: u32, counts: &[u32]) -> usize {
        let arity = record_arity(r, s);
        let records: usize = counts.iter().map(|&d| d as usize).sum();
        records * arity * std::mem::size_of::<u32>()
            + (counts.len() + 1) * std::mem::size_of::<usize>()
    }

    /// Serves one cell's containers from the flat buffer.
    #[inline]
    pub fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        match &self.store {
            FlatStore::Owned(flat) => {
                for rec in flat.records_of(cell) {
                    f(rec);
                }
            }
            FlatStore::Loaded(img) => img.flat().for_each_record(cell, f),
        }
    }
}

/// A [`PeelSpace`] whose container enumeration is served from a
/// [`ContainerIndex`] instead of recomputed — the *materialized*
/// backend. Identity queries (`r`, `s`, `cell_vertices`) delegate to
/// the wrapped lazy space.
pub struct MaterializedSpace<'s, S> {
    inner: &'s S,
    index: ContainerIndex,
}

impl<'s, S: PeelSpace + Sync> MaterializedSpace<'s, S> {
    /// Materializes `inner` using all available CPUs.
    pub fn new(inner: &'s S) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_threads(inner, threads)
    }

    /// Materializes `inner` with an explicit build thread count.
    pub fn with_threads(inner: &'s S, threads: usize) -> Self {
        MaterializedSpace {
            index: ContainerIndex::build(inner, threads),
            inner,
        }
    }

    /// Materializes `inner` reusing already-computed ω degrees
    /// (`counts` must be `inner.degrees()`).
    pub fn with_counts(inner: &'s S, counts: Vec<u32>, threads: usize) -> Self {
        MaterializedSpace {
            index: ContainerIndex::build_with_counts(inner, counts, threads),
            inner,
        }
    }
}

impl<'s, S> MaterializedSpace<'s, S> {
    /// The wrapped lazy space.
    pub fn inner(&self) -> &'s S {
        self.inner
    }

    /// The flat index backing this space.
    pub fn index(&self) -> &ContainerIndex {
        &self.index
    }
}

/// A [`PeelSpace`] served from a **borrowed** [`ContainerIndex`] over a
/// borrowed lazy space. This is the view [`crate::session::Prepared`]
/// peels through: the session owns the space and the index once, and
/// every `run` constructs this two-pointer view for free — no index
/// move, no clone. [`MaterializedSpace`] is the owning analogue for
/// single-shot use.
pub struct IndexedSpace<'a, S> {
    inner: &'a S,
    index: &'a ContainerIndex,
}

impl<'a, S: PeelSpace> IndexedSpace<'a, S> {
    /// Wraps a space and an index that was built from it.
    pub fn new(inner: &'a S, index: &'a ContainerIndex) -> Self {
        debug_assert_eq!(
            index.cell_count(),
            inner.cell_count(),
            "index built from a different space"
        );
        IndexedSpace { inner, index }
    }
}

impl<S: PeelSpace> PeelBackend for IndexedSpace<'_, S> {
    fn cell_count(&self) -> usize {
        self.index.cell_count()
    }

    fn degrees(&self) -> Vec<u32> {
        self.index.counts()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, f: F) {
        self.index.for_each_container(cell, f);
    }
}

impl<S: PeelSpace> PeelSpace for IndexedSpace<'_, S> {
    fn r(&self) -> u32 {
        self.inner.r()
    }

    fn s(&self) -> u32 {
        self.inner.s()
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        self.inner.cell_vertices(cell, out);
    }
}

impl<S: PeelSpace> PeelBackend for MaterializedSpace<'_, S> {
    fn cell_count(&self) -> usize {
        self.index.cell_count()
    }

    fn degrees(&self) -> Vec<u32> {
        self.index.counts()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, f: F) {
        self.index.for_each_container(cell, f);
    }
}

impl<S: PeelSpace> PeelSpace for MaterializedSpace<'_, S> {
    fn r(&self) -> u32 {
        self.inner.r()
    }

    fn s(&self) -> u32 {
        self.inner.s()
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        self.inner.cell_vertices(cell, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{EdgeK4Space, EdgeSpace, TriangleSpace, VertexSpace, VertexTriangleSpace};
    use nucleus_graph::CsrGraph;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    /// Records served by the index must match the lazy enumeration
    /// exactly — same containers, same order.
    fn check_mirrors_lazy<S: PeelSpace + Sync>(space: &S) {
        for threads in [1, 4] {
            let m = MaterializedSpace::with_threads(space, threads);
            assert_eq!(m.cell_count(), space.cell_count());
            assert_eq!(m.degrees(), space.degrees());
            assert_eq!(m.r(), space.r());
            assert_eq!(m.s(), space.s());
            assert_eq!(m.name(), space.name());
            // the borrowed view must be indistinguishable from the
            // owning wrapper
            let view = IndexedSpace::new(space, m.index());
            assert_eq!(view.cell_count(), m.cell_count());
            assert_eq!(view.degrees(), m.degrees());
            assert_eq!((view.r(), view.s()), (m.r(), m.s()));
            for cell in 0..space.cell_count() as u32 {
                let mut lazy: Vec<Vec<u32>> = vec![];
                space.for_each_container(cell, |o| lazy.push(o.to_vec()));
                let mut mat: Vec<Vec<u32>> = vec![];
                m.for_each_container(cell, |o| mat.push(o.to_vec()));
                assert_eq!(lazy, mat, "cell {cell}");
                let mut viewed: Vec<Vec<u32>> = vec![];
                view.for_each_container(cell, |o| viewed.push(o.to_vec()));
                assert_eq!(lazy, viewed, "cell {cell} via IndexedSpace");
                let mut a = vec![];
                let mut b = vec![];
                let mut c = vec![];
                space.cell_vertices(cell, &mut a);
                m.cell_vertices(cell, &mut b);
                view.cell_vertices(cell, &mut c);
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
        }
    }

    #[test]
    fn mirrors_all_five_spaces() {
        let g = nucleus_gen::karate::karate_club();
        check_mirrors_lazy(&VertexSpace::new(&g));
        check_mirrors_lazy(&EdgeSpace::new(&g));
        check_mirrors_lazy(&TriangleSpace::new(&g));
        check_mirrors_lazy(&VertexTriangleSpace::new(&g));
        check_mirrors_lazy(&EdgeK4Space::new(&g));
    }

    #[test]
    fn index_shape_on_k5() {
        let g = complete(5);
        let es = EdgeSpace::new(&g);
        let idx = ContainerIndex::build(&es, 2);
        assert_eq!(idx.cell_count(), 10);
        assert_eq!(idx.arity(), 2);
        // each of the 10 edges lies in 3 triangles
        assert_eq!(idx.container_count(), 30);
        assert!(idx.bytes() > 0);
        assert_eq!(ContainerIndex::estimate_bytes(&es), idx.bytes());
    }

    #[test]
    fn record_arity_table() {
        assert_eq!(record_arity(1, 2), 1);
        assert_eq!(record_arity(1, 3), 2);
        assert_eq!(record_arity(2, 3), 2);
        assert_eq!(record_arity(3, 4), 3);
        assert_eq!(record_arity(2, 4), 5);
    }

    #[test]
    fn empty_graph_and_containerless_cells() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // the 4-cycle is triangle-free: every edge has zero containers
        let es = EdgeSpace::new(&g);
        let m = MaterializedSpace::new(&es);
        assert_eq!(m.degrees(), vec![0; 4]);
        let mut called = false;
        m.for_each_container(0, |_| called = true);
        assert!(!called);

        let g = CsrGraph::from_edges(0, &[]);
        let vs = VertexSpace::new(&g);
        let m = MaterializedSpace::new(&vs);
        assert_eq!(m.cell_count(), 0);
    }

    #[test]
    fn peel_cells_stamps_and_sentinel() {
        let s = PeelCells::new(&[4, 0, 7]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!((0..3).all(|c| !s.is_processed(c)));
        assert_eq!(s.load(0), (PeelCells::ALIVE, 4));
        s.mark(1, 0);
        s.mark(2, 5);
        assert!(s.is_processed(1));
        assert_eq!(s.stamp(1), 0);
        assert_eq!(s.load(2), (5, 7)); // mark preserves ω
        assert!(!s.is_processed(0));
        assert!(PeelCells::new(&[]).is_empty());
    }

    #[test]
    fn peel_cells_guarded_decrements() {
        for atomic in [false, true] {
            let s = PeelCells::new(&[3, 1, 0]);
            let dec = |c, f| {
                if atomic {
                    s.dec_above_atomic(c, f)
                } else {
                    s.dec_above(c, f)
                }
            };
            assert!(!dec(0, 1), "3 → 2 is not the crossing transition");
            assert_eq!(s.omega(0), 2);
            assert!(dec(0, 1), "2 → 1 crosses to the floor");
            assert!(!dec(0, 1), "saturates at the floor");
            assert_eq!(s.omega(0), 1);
            assert!(!dec(2, 0), "ω = 0 never decremented");
            assert!(dec(1, 0));
            assert_eq!(s.omega(1), 0);
        }
    }

    #[test]
    fn peeling_through_materialized_backend() {
        let g = complete(6);
        let ts = TriangleSpace::new(&g);
        let m = MaterializedSpace::new(&ts);
        let p = crate::peel::peel(&m);
        assert!(p.lambda.iter().all(|&l| l == 3));
        assert_eq!(p.lambda, crate::peel::peel(&ts).lambda);
    }
}
