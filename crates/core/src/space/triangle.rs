//! (3,4) space: cells are triangles, containers are four-cliques →
//! k-(3,4) nucleus, the paper's densest/most-detailed decomposition.

use std::sync::OnceLock;

use nucleus_cliques::four_cliques::k4_degrees;
use nucleus_cliques::{k4_degrees_parallel, TriangleIndex, TriangleList};
use nucleus_graph::CsrGraph;

use super::{PeelBackend, PeelSpace};

/// The four-clique peeling space: `ω₄(t)` = number of K4s containing
/// triangle `t`. Containers of `t = {u, v, w}` are apex vertices `x`
/// adjacent to all three, found by intersecting two per-edge third-vertex
/// lists; companion triangle ids come from the [`TriangleIndex`].
///
/// Only the triangle list itself — the cell identities — is built
/// eagerly. The per-edge index (consulted by container enumeration) and
/// the K4 counts (`ω`) are deferred to first use: a session loading a
/// persisted (3,4) index needs neither and pays for neither.
pub struct TriangleSpace<'g> {
    g: &'g CsrGraph,
    tris: TriangleList,
    index: OnceLock<TriangleIndex>,
    k4deg: OnceLock<Vec<u32>>,
    threads: usize,
}

impl<'g> TriangleSpace<'g> {
    /// Builds the space: enumerates triangles eagerly; the per-edge
    /// index and K4 degrees (the "enumerate K_r's + set ω" part of
    /// Alg. 1) follow lazily on first use.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self::with_threads(g, 1)
    }

    /// Builds the space like [`TriangleSpace::new`], but runs **every**
    /// construction pass — the eager triangle enumeration, the lazy
    /// per-edge index, and the lazy K4 degrees — with `threads` worker
    /// threads (the same knob as
    /// [`nucleus_cliques::parallel::triangle_count_parallel`]). All
    /// three parallel builders are bit-identical to their serial twins,
    /// so the space's observable state never depends on `threads`.
    pub fn with_threads(g: &'g CsrGraph, threads: usize) -> Self {
        TriangleSpace {
            g,
            tris: TriangleList::build_with_threads(g, threads),
            index: OnceLock::new(),
            k4deg: OnceLock::new(),
            threads,
        }
    }

    fn index(&self) -> &TriangleIndex {
        self.index
            .get_or_init(|| TriangleIndex::build_with_threads(self.g, &self.tris, self.threads))
    }

    fn k4deg(&self) -> &[u32] {
        self.k4deg.get_or_init(|| {
            if self.threads <= 1 {
                k4_degrees(self.g, &self.tris)
            } else {
                k4_degrees_parallel(self.g, &self.tris, self.threads)
            }
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }

    /// The materialized triangle list (cells of this space).
    pub fn triangles(&self) -> &TriangleList {
        &self.tris
    }

    /// Total K4 count of the graph.
    pub fn k4_count(&self) -> u64 {
        self.k4deg().iter().map(|&d| d as u64).sum::<u64>() / 4
    }
}

impl PeelBackend for TriangleSpace<'_> {
    fn cell_count(&self) -> usize {
        self.tris.len()
    }

    fn degrees(&self) -> Vec<u32> {
        self.k4deg().to_vec()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        let [_u, v, w] = self.tris.vertices[cell as usize];
        let [e_uv, e_uw, e_vw] = self.tris.edges[cell as usize];
        // Apexes x of K4s over {u,v,w} are exactly the common thirds of
        // edges (u,v) and (u,w); the third companion triangle {v,w,x}
        // is looked up in the (v,w) list.
        let index = self.index();
        let a = index.thirds(e_uv); // (x, tid of {u,v,x})
        let b = index.thirds(e_uw); // (x, tid of {u,w,x})
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let x = a[i].0;
                    debug_assert!(x != v && x != w);
                    if let Some(t_vwx) = index.tid(e_vw, x) {
                        f(&[a[i].1, b[j].1, t_vwx]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

impl PeelSpace for TriangleSpace<'_> {
    fn r(&self) -> u32 {
        3
    }

    fn s(&self) -> u32 {
        4
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        out.extend_from_slice(&self.tris.vertices[cell as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn k5_space_shape() {
        let g = complete(5);
        let s = TriangleSpace::new(&g);
        assert_eq!(s.cell_count(), 10);
        assert_eq!(s.k4_count(), 5);
        assert!(s.degrees().iter().all(|&d| d == 2));
        assert_eq!(s.name(), "(3,4)");
    }

    #[test]
    fn containers_are_k4_companions() {
        let g = complete(4);
        let s = TriangleSpace::new(&g);
        assert_eq!(s.cell_count(), 4);
        // The single K4 means every triangle has exactly one container
        // holding the other three triangles.
        for t in 0..4u32 {
            let mut containers = vec![];
            s.for_each_container(t, |o| containers.push(o.to_vec()));
            assert_eq!(containers.len(), 1);
            let mut ids = containers[0].clone();
            ids.push(t);
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn k4_free_triangles_have_no_containers() {
        // diamond: 2 triangles, no K4
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let s = TriangleSpace::new(&g);
        assert_eq!(s.cell_count(), 2);
        for t in 0..2u32 {
            let mut c = 0;
            s.for_each_container(t, |_| c += 1);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn cell_vertices_sorted_triples() {
        let g = complete(4);
        let s = TriangleSpace::new(&g);
        let mut out = vec![];
        s.cell_vertices(0, &mut out);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn container_count_matches_degree() {
        let g = complete(6);
        let s = TriangleSpace::new(&g);
        for t in 0..s.cell_count() as u32 {
            let mut c = 0u32;
            s.for_each_container(t, |_| c += 1);
            assert_eq!(c, s.degrees()[t as usize], "triangle {t}");
        }
    }
}
