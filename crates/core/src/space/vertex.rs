//! (1,2) space: cells are vertices, containers are edges → k-core.

use nucleus_graph::CsrGraph;

use super::{PeelBackend, PeelSpace};

/// The k-core peeling space over a graph: `ω₂(v) = deg(v)`.
pub struct VertexSpace<'g> {
    g: &'g CsrGraph,
}

impl<'g> VertexSpace<'g> {
    /// Wraps `g`. O(1).
    pub fn new(g: &'g CsrGraph) -> Self {
        VertexSpace { g }
    }

    /// Accepts (and ignores) a thread count, for constructor symmetry
    /// with the other spaces: ω here is a vertex's degree, a single
    /// O(n) read of the CSR offsets with no enumeration to parallelize
    /// — spawning workers could only ever slow it down.
    pub fn with_threads(g: &'g CsrGraph, _threads: usize) -> Self {
        Self::new(g)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }
}

impl PeelBackend for VertexSpace<'_> {
    fn cell_count(&self) -> usize {
        self.g.n()
    }

    fn degrees(&self) -> Vec<u32> {
        (0..self.g.n() as u32)
            .map(|v| self.g.degree(v) as u32)
            .collect()
    }

    #[inline]
    fn for_each_container<F: FnMut(&[u32])>(&self, cell: u32, mut f: F) {
        for &w in self.g.neighbors(cell) {
            f(std::slice::from_ref(&w));
        }
    }
}

impl PeelSpace for VertexSpace<'_> {
    fn r(&self) -> u32 {
        1
    }

    fn s(&self) -> u32 {
        2
    }

    fn cell_vertices(&self, cell: u32, out: &mut Vec<u32>) {
        out.push(cell);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containers_are_neighbors() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let s = VertexSpace::new(&g);
        assert_eq!(s.cell_count(), 4);
        assert_eq!(s.degrees(), vec![2, 1, 2, 1]);
        let mut seen = vec![];
        s.for_each_container(0, |others| seen.push(others[0]));
        assert_eq!(seen, vec![1, 2]);
        assert_eq!(s.name(), "(1,2)");
    }

    #[test]
    fn cell_vertices_identity() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let s = VertexSpace::new(&g);
        let mut out = vec![];
        s.cell_vertices(1, &mut out);
        assert_eq!(out, vec![1]);
    }
}
