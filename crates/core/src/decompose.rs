//! High-level decomposition API: pick a space and an algorithm, get a
//! hierarchy plus phase timings and statistics.

use std::time::{Duration, Instant};

use nucleus_graph::CsrGraph;

use crate::algo::dft::dft;
use crate::algo::fnd::fnd;
use crate::algo::hypo::hypo_sweep;
use crate::algo::lcps::lcps;
use crate::algo::naive::naive;
use crate::error::CoreError;
use crate::hierarchy::Hierarchy;
use crate::peel::{peel, peel_parallel_with, FrontierOptions, Peeling};
use crate::space::{
    ContainerIndex, EdgeSpace, MaterializedSpace, PeelSpace, TriangleSpace, VertexSpace,
};

/// Which decomposition family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// (1,2): k-core.
    Core,
    /// (2,3): k-truss community.
    Truss,
    /// (3,4): four-clique nuclei.
    Nucleus34,
}

impl Kind {
    /// `(r, s)` of the family.
    pub fn rs(self) -> (u32, u32) {
        match self {
            Kind::Core => (1, 2),
            Kind::Truss => (2, 3),
            Kind::Nucleus34 => (3, 4),
        }
    }

    /// All families, in paper order.
    pub fn all() -> [Kind; 3] {
        [Kind::Core, Kind::Truss, Kind::Nucleus34]
    }
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, s) = self.rs();
        write!(f, "({r},{s})")
    }
}

/// Which hierarchy algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-level traversal (Alg. 2/3) — the baseline.
    Naive,
    /// Disjoint-set-forest traversal (Alg. 5/6).
    Dft,
    /// Traversal-free peeling-time construction (Alg. 8/9).
    Fnd,
    /// Matula–Beck priority search (k-core only).
    Lcps,
}

impl Algorithm {
    /// All algorithms applicable to `kind`.
    pub fn for_kind(kind: Kind) -> &'static [Algorithm] {
        match kind {
            Kind::Core => &[
                Algorithm::Naive,
                Algorithm::Dft,
                Algorithm::Fnd,
                Algorithm::Lcps,
            ],
            _ => &[Algorithm::Naive, Algorithm::Dft, Algorithm::Fnd],
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::Naive => "Naive",
            Algorithm::Dft => "DFT",
            Algorithm::Fnd => "FND",
            Algorithm::Lcps => "LCPS",
        };
        write!(f, "{name}")
    }
}

/// Which peeling backend drives the container enumeration
/// (see [`crate::space`] for the full trade-off discussion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Re-enumerate containers on every visit (no extra memory).
    Lazy,
    /// Build a [`ContainerIndex`] once, then peel/traverse flat arrays.
    Materialized,
    /// Materialize when the estimated index fits
    /// [`Backend::AUTO_BYTE_CAP`]; fall back to lazy otherwise.
    #[default]
    Auto,
}

impl Backend {
    /// `Auto` materializes while the estimated index stays under this
    /// cap (1 GiB): past it the index's build cost and memory traffic
    /// start competing with the peeling it is meant to accelerate.
    pub const AUTO_BYTE_CAP: usize = 1 << 30;

    /// Resolves the choice for a concrete space: should it materialize?
    pub fn materialize<S: PeelSpace>(self, space: &S) -> bool {
        self.wants_index(|| ContainerIndex::estimate_bytes(space))
    }

    /// The single home of the policy: `Lazy` never materializes,
    /// `Materialized` always does, `Auto` iff the estimated index fits
    /// [`Backend::AUTO_BYTE_CAP`]. `estimate` is only invoked for `Auto`.
    fn wants_index(self, estimate: impl FnOnce() -> usize) -> bool {
        match self {
            Backend::Lazy => false,
            Backend::Materialized => true,
            Backend::Auto => estimate() <= Self::AUTO_BYTE_CAP,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Backend::Lazy => "lazy",
            Backend::Materialized => "materialized",
            Backend::Auto => "auto",
        };
        write!(f, "{name}")
    }
}

/// Which peeling engine runs `Set-λ` (see [`mod@crate::peel`] for the
/// frontier-round scheme and its invariants).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PeelEngine {
    /// The classic sequential bucket-queue loop ([`crate::peel::peel`]).
    Serial,
    /// Frontier-parallel `Set-λ` ([`crate::peel::peel_parallel`]):
    /// whole λ-level rounds, decrements applied concurrently. Requires
    /// the materialized backend (selecting it with [`Backend::Auto`]
    /// forces materialization regardless of the size cap; combining it
    /// with an explicit [`Backend::Lazy`] is an error) and only applies
    /// to algorithms that consume a finished peeling
    /// ([`Algorithm::Naive`], [`Algorithm::Dft`]) — FND interleaves
    /// hierarchy construction with the pops and LCPS walks the graph
    /// directly, so both reject it.
    Frontier,
    /// Pick automatically: `Frontier` when the run is materialized,
    /// more than one worker thread is available and the algorithm can
    /// consume an externally produced peeling; `Serial` otherwise.
    #[default]
    Auto,
}

impl PeelEngine {
    /// Whether the engine/algorithm pair is expressible at all.
    fn supports(self, algorithm: Algorithm) -> bool {
        self != PeelEngine::Frontier || matches!(algorithm, Algorithm::Naive | Algorithm::Dft)
    }

    /// Resolves `Auto` for a concrete run. `materialized` is the
    /// already-resolved backend decision.
    fn resolve(self, algorithm: Algorithm, materialized: bool, threads: usize) -> PeelEngine {
        match self {
            PeelEngine::Auto => {
                if materialized
                    && threads > 1
                    && matches!(algorithm, Algorithm::Naive | Algorithm::Dft)
                {
                    PeelEngine::Frontier
                } else {
                    PeelEngine::Serial
                }
            }
            explicit => explicit,
        }
    }
}

impl std::fmt::Display for PeelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PeelEngine::Serial => "serial",
            PeelEngine::Frontier => "frontier",
            PeelEngine::Auto => "auto",
        };
        write!(f, "{name}")
    }
}

/// Tuning for [`decompose_with`]. [`Default`] selects the backend
/// automatically and uses every available CPU for index construction;
/// [`decompose`] runs with these defaults.
#[derive(Clone, Copy, Debug)]
pub struct DecomposeOptions {
    /// Backend selection policy.
    pub backend: Backend,
    /// Peeling engine selection policy. [`PeelEngine::Frontier`]
    /// requires a materialized run; see the variant docs for the exact
    /// interaction with `backend`.
    pub engine: PeelEngine,
    /// Worker threads for index construction, frontier peeling rounds,
    /// and parallel ω counting where a space supports it. `0` means
    /// "all available CPUs".
    pub threads: usize,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            backend: Backend::Auto,
            engine: PeelEngine::Auto,
            threads: 0,
        }
    }
}

impl DecomposeOptions {
    /// The thread count with `0` resolved to the CPU count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Wall-clock phase split, matching Figure 6's peeling/post-processing
/// decomposition. For FND "peeling" is the extended loop of Alg. 8; for
/// the others it is space construction + `Set-λ`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Peeling (including K_r enumeration / ω computation).
    pub peel: Duration,
    /// Hierarchy construction after (or interleaved with) peeling.
    pub post: Duration,
}

impl PhaseTimes {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.peel + self.post
    }
}

/// Structure counters (Table 3 columns), populated by DFT/FND runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SkeletonStats {
    /// Sub-nuclei created: |T| for DFT, |T*| for FND, nodes for others.
    pub subnuclei: usize,
    /// |c↓(T*)| (FND only; zero otherwise).
    pub adj_connections: usize,
}

/// Result of a full decomposition.
#[derive(Debug)]
pub struct Decomposition {
    /// Which family was decomposed.
    pub kind: Kind,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// The backend that actually ran ([`Backend::Auto`] resolved to
    /// [`Backend::Lazy`] or [`Backend::Materialized`]).
    pub backend: Backend,
    /// The peeling engine that actually ran ([`PeelEngine::Auto`]
    /// resolved to [`PeelEngine::Serial`] or [`PeelEngine::Frontier`]).
    pub engine: PeelEngine,
    /// λ per cell + peeling order.
    pub peeling: Peeling,
    /// The canonical hierarchy of nuclei.
    pub hierarchy: Hierarchy,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Structure counters.
    pub stats: SkeletonStats,
}

/// Runs the chosen `algorithm` for `kind` on `g` with
/// [`DecomposeOptions::default`] (automatic backend selection).
///
/// # Errors
/// [`CoreError::UnsupportedAlgorithm`] when `algorithm` is
/// [`Algorithm::Lcps`] and `kind` is not [`Kind::Core`].
pub fn decompose(
    g: &CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
) -> Result<Decomposition, CoreError> {
    decompose_with(g, kind, algorithm, DecomposeOptions::default())
}

/// Runs the chosen `algorithm` for `kind` on `g` with explicit
/// [`DecomposeOptions`] — in particular the peeling [`Backend`] and
/// [`PeelEngine`]. Index construction (materialized backend) is
/// accounted to the peeling phase, like clique enumeration. LCPS walks
/// the graph directly and ignores the backend choice.
///
/// # Errors
/// * [`CoreError::UnsupportedAlgorithm`] when `algorithm` is
///   [`Algorithm::Lcps`] and `kind` is not [`Kind::Core`];
/// * [`CoreError::InvalidOptions`] when [`PeelEngine::Frontier`] is
///   requested together with an algorithm that cannot consume an
///   externally produced peeling (FND, LCPS) or with an explicit
///   [`Backend::Lazy`].
pub fn decompose_with(
    g: &CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
    options: DecomposeOptions,
) -> Result<Decomposition, CoreError> {
    if !options.engine.supports(algorithm) {
        return Err(CoreError::InvalidOptions {
            reason: format!(
                "the frontier peeling engine cannot drive {algorithm}: it only applies to \
                 algorithms that consume a finished peeling (Naive, DFT)"
            ),
        });
    }
    if options.engine == PeelEngine::Frontier && options.backend == Backend::Lazy {
        return Err(CoreError::InvalidOptions {
            reason: "the frontier peeling engine needs O(1) repeated container access; \
                     use the materialized (or auto) backend"
                .to_string(),
        });
    }
    match kind {
        Kind::Core => {
            if algorithm == Algorithm::Lcps {
                let t0 = Instant::now();
                let space = VertexSpace::new(g);
                let peeling = peel(&space);
                let peel_t = t0.elapsed();
                let t1 = Instant::now();
                let hierarchy = lcps(g, &peeling);
                let post_t = t1.elapsed();
                return Ok(Decomposition {
                    kind,
                    algorithm,
                    backend: Backend::Lazy,
                    engine: PeelEngine::Serial,
                    stats: SkeletonStats {
                        subnuclei: hierarchy.nucleus_count(),
                        adj_connections: 0,
                    },
                    peeling,
                    hierarchy,
                    times: PhaseTimes {
                        peel: peel_t,
                        post: post_t,
                    },
                });
            }
            run_generic(g, kind, algorithm, options, VertexSpace::new)
        }
        Kind::Truss => run_generic(g, kind, algorithm, options, EdgeSpace::new),
        Kind::Nucleus34 => run_generic(g, kind, algorithm, options, |g| {
            TriangleSpace::with_threads(g, options.effective_threads())
        }),
    }
}

fn run_generic<'g, S, F>(
    g: &'g CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
    options: DecomposeOptions,
    make_space: F,
) -> Result<Decomposition, CoreError>
where
    S: PeelSpace + Sync,
    F: FnOnce(&'g CsrGraph) -> S,
{
    if algorithm == Algorithm::Lcps {
        return Err(CoreError::UnsupportedAlgorithm {
            algorithm: "LCPS",
            kind: format!("{kind}"),
        });
    }
    let t0 = Instant::now();
    let space = make_space(g);
    let threads = options.effective_threads();
    if let Some(counts) = resolve_counts(options.backend, options.engine, &space) {
        let mspace = MaterializedSpace::with_counts(&space, counts, threads);
        let engine = options
            .engine
            .resolve(algorithm, /* materialized */ true, threads);
        run_on_backend(
            &mspace,
            t0.elapsed(),
            kind,
            algorithm,
            Backend::Materialized,
            engine,
            threads,
        )
    } else {
        let engine = options
            .engine
            .resolve(algorithm, /* materialized */ false, threads);
        debug_assert_eq!(engine, PeelEngine::Serial, "frontier needs the index");
        run_on_backend(
            &space,
            t0.elapsed(),
            kind,
            algorithm,
            Backend::Lazy,
            engine,
            threads,
        )
    }
}

/// Resolves a backend choice with at most one ω clone: `Some(counts)`
/// means materialize (the counts feed straight into the index build),
/// `None` means stay lazy. An explicit frontier-engine request forces
/// materialization (the engine is defined over the flat index), even
/// past the `Auto` size cap.
fn resolve_counts<S: PeelSpace>(
    backend: Backend,
    engine: PeelEngine,
    space: &S,
) -> Option<Vec<u32>> {
    if engine == PeelEngine::Frontier {
        // backend == Lazy was rejected up front in decompose_with
        return Some(space.degrees());
    }
    if backend == Backend::Lazy {
        return None;
    }
    let counts = space.degrees();
    backend
        .wants_index(|| ContainerIndex::estimate_bytes_from(space.r(), space.s(), &counts))
        .then_some(counts)
}

/// The algorithm dispatch, monomorphized once per space *and* backend
/// (`build_t` covers space construction plus, when materialized, the
/// index build). `engine` must already be resolved (never `Auto`).
fn run_on_backend<S: PeelSpace + Sync>(
    space: &S,
    build_t: Duration,
    kind: Kind,
    algorithm: Algorithm,
    backend: Backend,
    engine: PeelEngine,
    threads: usize,
) -> Result<Decomposition, CoreError> {
    match algorithm {
        // run_generic rejects LCPS before dispatching to a backend.
        Algorithm::Lcps => unreachable!("LCPS never reaches backend dispatch"),
        Algorithm::Fnd => {
            debug_assert_eq!(engine, PeelEngine::Serial, "FND is order-sequential");
            let out = fnd(space);
            Ok(Decomposition {
                kind,
                algorithm,
                backend,
                engine: PeelEngine::Serial,
                peeling: out.peeling,
                hierarchy: out.hierarchy,
                times: PhaseTimes {
                    peel: build_t + out.peel_time,
                    post: out.post_time,
                },
                stats: SkeletonStats {
                    subnuclei: out.stats.subnuclei,
                    adj_connections: out.stats.adj_connections,
                },
            })
        }
        Algorithm::Naive | Algorithm::Dft => {
            let t0 = Instant::now();
            let peeling = match engine {
                PeelEngine::Frontier => peel_parallel_with(
                    space,
                    FrontierOptions {
                        threads,
                        ..FrontierOptions::default()
                    },
                ),
                _ => peel(space),
            };
            let peel_t = build_t + t0.elapsed();
            let t1 = Instant::now();
            let (hierarchy, subnuclei) = match algorithm {
                Algorithm::Naive => {
                    let h = naive(space, &peeling);
                    let c = h.nucleus_count();
                    (h, c)
                }
                _ => {
                    let (h, st) = dft(space, &peeling);
                    (h, st.subnuclei)
                }
            };
            let post_t = t1.elapsed();
            Ok(Decomposition {
                kind,
                algorithm,
                backend,
                engine,
                peeling,
                hierarchy,
                times: PhaseTimes {
                    peel: peel_t,
                    post: post_t,
                },
                stats: SkeletonStats {
                    subnuclei,
                    adj_connections: 0,
                },
            })
        }
    }
}

/// Runs the *Hypo* baseline for `kind` with default options: peeling
/// plus one full sweep. Returns the phase times and the number of
/// s-connectivity components; no hierarchy is produced (that is the
/// point of the baseline).
pub fn hypo_baseline(g: &CsrGraph, kind: Kind) -> (PhaseTimes, usize) {
    hypo_baseline_with(g, kind, DecomposeOptions::default())
}

/// [`hypo_baseline`] with an explicit backend choice, so the baseline
/// stays comparable when the other algorithms run materialized. The
/// [`DecomposeOptions::engine`] field is ignored: the baseline always
/// peels serially (it exists to reproduce the paper's sequential cost
/// model, not to be fast).
pub fn hypo_baseline_with(
    g: &CsrGraph,
    kind: Kind,
    options: DecomposeOptions,
) -> (PhaseTimes, usize) {
    fn run<B: crate::space::PeelBackend>(space: &B, build_t: Duration) -> (PhaseTimes, usize) {
        let t0 = Instant::now();
        let _ = peel(space);
        let peel_t = build_t + t0.elapsed();
        let t1 = Instant::now();
        let comps = hypo_sweep(space);
        (
            PhaseTimes {
                peel: peel_t,
                post: t1.elapsed(),
            },
            comps,
        )
    }
    fn dispatch<S: PeelSpace + Sync>(
        space: &S,
        t0: Instant,
        options: DecomposeOptions,
    ) -> (PhaseTimes, usize) {
        if let Some(counts) = resolve_counts(options.backend, PeelEngine::Serial, space) {
            let m = MaterializedSpace::with_counts(space, counts, options.effective_threads());
            run(&m, t0.elapsed())
        } else {
            run(space, t0.elapsed())
        }
    }
    let t = Instant::now();
    match kind {
        Kind::Core => dispatch(&VertexSpace::new(g), t, options),
        Kind::Truss => dispatch(&EdgeSpace::new(g), t, options),
        Kind::Nucleus34 => dispatch(
            &TriangleSpace::with_threads(g, options.effective_threads()),
            t,
            options,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_graphs;

    #[test]
    fn all_algorithms_agree_on_all_kinds() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let mut results = vec![];
            for &algo in Algorithm::for_kind(kind) {
                let d = decompose(&g, kind, algo).expect("runs");
                d.hierarchy.validate().expect("valid");
                results.push((algo, d.hierarchy));
            }
            for pair in results.windows(2) {
                assert_eq!(
                    pair[0].1, pair[1].1,
                    "{kind}: {} vs {} disagree",
                    pair[0].0, pair[1].0
                );
            }
        }
    }

    #[test]
    fn lcps_rejected_for_truss() {
        let g = test_graphs::nested_cores();
        let err = decompose(&g, Kind::Truss, Algorithm::Lcps).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedAlgorithm { .. }));
        assert!(format!("{err}").contains("LCPS"));
    }

    #[test]
    fn hypo_baseline_runs_everywhere() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let (times, comps) = hypo_baseline(&g, kind);
            assert!(comps >= 1);
            assert!(times.total().as_nanos() > 0);
        }
    }

    #[test]
    fn backends_produce_identical_decompositions() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            for &algo in Algorithm::for_kind(kind) {
                if algo == Algorithm::Lcps {
                    continue;
                }
                let lazy = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        backend: Backend::Lazy,
                        // pinned: this test isolates backend equivalence
                        // (strict order equality needs one engine)
                        engine: PeelEngine::Serial,
                        threads: 2,
                    },
                )
                .expect("lazy");
                let mat = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        backend: Backend::Materialized,
                        engine: PeelEngine::Serial,
                        threads: 2,
                    },
                )
                .expect("materialized");
                assert_eq!(lazy.peeling.lambda, mat.peeling.lambda, "{kind}/{algo} λ");
                assert_eq!(lazy.peeling.order, mat.peeling.order, "{kind}/{algo} order");
                assert_eq!(lazy.hierarchy, mat.hierarchy, "{kind}/{algo} hierarchy");
            }
        }
    }

    #[test]
    fn auto_backend_materializes_small_spaces() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        assert!(Backend::Auto.materialize(&vs));
        assert!(!Backend::Lazy.materialize(&vs));
        assert!(Backend::Materialized.materialize(&vs));
        assert_eq!(format!("{}", Backend::Auto), "auto");
        assert_eq!(Backend::default(), Backend::Auto);
    }

    #[test]
    fn hypo_baseline_backends_agree_on_components() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let (_, lazy) = hypo_baseline_with(
                &g,
                kind,
                DecomposeOptions {
                    backend: Backend::Lazy,
                    threads: 1,
                    ..DecomposeOptions::default()
                },
            );
            let (_, mat) = hypo_baseline_with(
                &g,
                kind,
                DecomposeOptions {
                    backend: Backend::Materialized,
                    threads: 3,
                    ..DecomposeOptions::default()
                },
            );
            assert_eq!(lazy, mat, "{kind}");
        }
    }

    #[test]
    fn engines_produce_identical_decompositions() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            for &algo in &[Algorithm::Naive, Algorithm::Dft] {
                let serial = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        engine: PeelEngine::Serial,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("serial");
                let frontier = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        engine: PeelEngine::Frontier,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("frontier");
                assert_eq!(frontier.engine, PeelEngine::Frontier);
                assert_eq!(
                    frontier.backend,
                    Backend::Materialized,
                    "engine forces index"
                );
                assert_eq!(
                    serial.peeling.lambda, frontier.peeling.lambda,
                    "{kind}/{algo}"
                );
                assert_eq!(serial.hierarchy, frontier.hierarchy, "{kind}/{algo}");
            }
        }
    }

    #[test]
    fn frontier_engine_rejects_incompatible_options() {
        let g = test_graphs::nested_cores();
        let frontier = |backend| DecomposeOptions {
            backend,
            engine: PeelEngine::Frontier,
            threads: 2,
        };
        let err =
            decompose_with(&g, Kind::Core, Algorithm::Fnd, frontier(Backend::Auto)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        assert!(format!("{err}").contains("frontier"));
        let err =
            decompose_with(&g, Kind::Core, Algorithm::Lcps, frontier(Backend::Auto)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        let err =
            decompose_with(&g, Kind::Truss, Algorithm::Dft, frontier(Backend::Lazy)).unwrap_err();
        assert!(format!("{err}").contains("materialized"), "{err}");
    }

    #[test]
    fn auto_engine_resolution_policy() {
        // Auto picks Frontier only for materialized multi-thread
        // Naive/DFT runs, Serial everywhere else.
        let auto = PeelEngine::Auto;
        assert_eq!(auto.resolve(Algorithm::Dft, true, 4), PeelEngine::Frontier);
        assert_eq!(
            auto.resolve(Algorithm::Naive, true, 2),
            PeelEngine::Frontier
        );
        assert_eq!(auto.resolve(Algorithm::Dft, true, 1), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Dft, false, 4), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Fnd, true, 4), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Lcps, true, 4), PeelEngine::Serial);
        // explicit choices resolve to themselves
        assert_eq!(
            PeelEngine::Frontier.resolve(Algorithm::Dft, true, 1),
            PeelEngine::Frontier
        );
        assert_eq!(
            PeelEngine::Serial.resolve(Algorithm::Dft, true, 8),
            PeelEngine::Serial
        );
        // the decomposition reports the resolved engine
        let g = test_graphs::nested_cores();
        let d = decompose_with(
            &g,
            Kind::Core,
            Algorithm::Dft,
            DecomposeOptions {
                engine: PeelEngine::Auto,
                threads: 2,
                ..DecomposeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(d.engine, PeelEngine::Frontier);
        let d = decompose(&g, Kind::Core, Algorithm::Fnd).unwrap();
        assert_eq!(d.engine, PeelEngine::Serial);
        assert_eq!(format!("{}", PeelEngine::Auto), "auto");
        assert_eq!(format!("{}", PeelEngine::Frontier), "frontier");
        assert_eq!(PeelEngine::default(), PeelEngine::Auto);
    }

    #[test]
    fn kind_display_and_rs() {
        assert_eq!(Kind::Core.rs(), (1, 2));
        assert_eq!(format!("{}", Kind::Truss), "(2,3)");
        assert_eq!(format!("{}", Algorithm::Fnd), "FND");
        assert_eq!(Algorithm::for_kind(Kind::Core).len(), 4);
        assert_eq!(Algorithm::for_kind(Kind::Nucleus34).len(), 3);
    }
}
