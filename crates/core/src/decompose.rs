//! The one-shot decomposition API: pick a family and an algorithm, get
//! a hierarchy plus phase timings and statistics.
//!
//! Since the prepared-pipeline redesign, [`decompose`] and
//! [`decompose_with`] are thin wrappers over
//! [`crate::session::Nucleus`]: they prepare a space, run once, and
//! drop it. Callers that run *several* algorithms (or repeated queries)
//! over one graph should hold a [`crate::session::Prepared`] instead —
//! same results, bit for bit, without re-enumerating cliques and
//! rebuilding the container index per call.

use std::time::Duration;

use nucleus_graph::CsrGraph;

use crate::error::CoreError;
use crate::hierarchy::Hierarchy;
use crate::peel::Peeling;
use crate::plan;
use crate::session::Nucleus;
use crate::space::{ContainerIndex, PeelSpace};

/// Which decomposition family to run — all five (r, s) instances of the
/// paper's generic framework, in (r, s)-lexicographic order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// (1,2): k-core.
    Core,
    /// (1,3): vertex-triangle cores (vertices peeled by triangle count).
    VertexTriangle,
    /// (2,3): k-truss community.
    Truss,
    /// (2,4): edges peeled by four-clique count (the paper's Figure 1
    /// contrast instance).
    EdgeK4,
    /// (3,4): four-clique nuclei.
    Nucleus34,
}

impl Kind {
    /// `(r, s)` of the family.
    pub fn rs(self) -> (u32, u32) {
        match self {
            Kind::Core => (1, 2),
            Kind::VertexTriangle => (1, 3),
            Kind::Truss => (2, 3),
            Kind::EdgeK4 => (2, 4),
            Kind::Nucleus34 => (3, 4),
        }
    }

    /// All five families, in (r, s)-lexicographic order.
    pub fn all() -> [Kind; 5] {
        [
            Kind::Core,
            Kind::VertexTriangle,
            Kind::Truss,
            Kind::EdgeK4,
            Kind::Nucleus34,
        ]
    }

    /// Stable lowercase name, also the CLI spelling (`--kind core`).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Core => "core",
            Kind::VertexTriangle => "vertex-triangle",
            Kind::Truss => "truss",
            Kind::EdgeK4 => "edge-k4",
            Kind::Nucleus34 => "nucleus34",
        }
    }

    /// Parses a [`Kind::name`] spelling or a bare `"r,s"` pair
    /// (`"vertex-triangle"` and `"1,3"` are equivalent). The error
    /// enumerates every accepted spelling.
    pub fn parse(token: &str) -> Result<Kind, CoreError> {
        Kind::all()
            .into_iter()
            .find(|k| {
                let (r, s) = k.rs();
                token == k.name() || token == format!("{r},{s}")
            })
            .ok_or_else(|| CoreError::UnknownName {
                what: "kind",
                token: token.to_string(),
                expected: Kind::all()
                    .map(|k| {
                        let (r, s) = k.rs();
                        format!("{}|{r},{s}", k.name())
                    })
                    .join(", "),
            })
    }
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, s) = self.rs();
        write!(f, "({r},{s})")
    }
}

/// Which hierarchy algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-level traversal (Alg. 2/3) — the baseline.
    Naive,
    /// Disjoint-set-forest traversal (Alg. 5/6).
    Dft,
    /// Traversal-free peeling-time construction (Alg. 8/9).
    Fnd,
    /// Matula–Beck priority search (k-core only).
    Lcps,
}

impl Algorithm {
    /// Every algorithm, in presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Naive,
        Algorithm::Dft,
        Algorithm::Fnd,
        Algorithm::Lcps,
    ];

    /// All algorithms applicable to `kind` (LCPS is k-core only).
    pub fn for_kind(kind: Kind) -> &'static [Algorithm] {
        match kind {
            Kind::Core => &[
                Algorithm::Naive,
                Algorithm::Dft,
                Algorithm::Fnd,
                Algorithm::Lcps,
            ],
            _ => &[Algorithm::Naive, Algorithm::Dft, Algorithm::Fnd],
        }
    }

    /// Stable lowercase name, also the CLI spelling (`--algo fnd`).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::Dft => "dft",
            Algorithm::Fnd => "fnd",
            Algorithm::Lcps => "lcps",
        }
    }

    /// Parses an [`Algorithm::name`] spelling; the error enumerates
    /// every accepted one.
    pub fn parse(token: &str) -> Result<Algorithm, CoreError> {
        Algorithm::ALL
            .into_iter()
            .find(|a| token == a.name())
            .ok_or_else(|| CoreError::UnknownName {
                what: "algorithm",
                token: token.to_string(),
                expected: Algorithm::ALL.map(|a| a.name()).join("|"),
            })
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::Naive => "Naive",
            Algorithm::Dft => "DFT",
            Algorithm::Fnd => "FND",
            Algorithm::Lcps => "LCPS",
        };
        write!(f, "{name}")
    }
}

/// Which peeling backend drives the container enumeration
/// (see [`crate::space`] for the full trade-off discussion).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Re-enumerate containers on every visit (no extra memory).
    Lazy,
    /// Build a [`ContainerIndex`] once, then peel/traverse flat arrays.
    Materialized,
    /// Materialize when the estimated index fits
    /// [`Backend::AUTO_BYTE_CAP`]; fall back to lazy otherwise.
    #[default]
    Auto,
}

impl Backend {
    /// `Auto` materializes while the estimated index stays under this
    /// cap (1 GiB): past it the index's build cost and memory traffic
    /// start competing with the peeling it is meant to accelerate.
    pub const AUTO_BYTE_CAP: usize = 1 << 30;

    /// Resolves the choice for a concrete space: should it materialize?
    pub fn materialize<S: PeelSpace>(self, space: &S) -> bool {
        self.wants_index(|| ContainerIndex::estimate_bytes(space))
    }

    /// The single home of the policy: `Lazy` never materializes,
    /// `Materialized` always does, `Auto` iff the estimated index fits
    /// [`Backend::AUTO_BYTE_CAP`]. `estimate` is only invoked for `Auto`.
    pub(crate) fn wants_index(self, estimate: impl FnOnce() -> usize) -> bool {
        match self {
            Backend::Lazy => false,
            Backend::Materialized => true,
            Backend::Auto => estimate() <= Self::AUTO_BYTE_CAP,
        }
    }

    /// Parses a CLI spelling (`auto|lazy|materialized`).
    pub fn parse(token: &str) -> Result<Backend, CoreError> {
        match token {
            "auto" => Ok(Backend::Auto),
            "lazy" => Ok(Backend::Lazy),
            "materialized" => Ok(Backend::Materialized),
            other => Err(CoreError::UnknownName {
                what: "backend",
                token: other.to_string(),
                expected: "auto|lazy|materialized".to_string(),
            }),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Backend::Lazy => "lazy",
            Backend::Materialized => "materialized",
            Backend::Auto => "auto",
        };
        write!(f, "{name}")
    }
}

/// Which peeling engine runs `Set-λ` (see [`mod@crate::peel`] for the
/// frontier-round scheme and its invariants).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PeelEngine {
    /// The classic sequential bucket-queue loop ([`crate::peel::peel`]).
    Serial,
    /// Frontier-parallel `Set-λ` ([`crate::peel::peel_parallel`]) with
    /// hybrid serial drains for sub-threshold levels: whole λ-level
    /// rounds, decrements applied concurrently. Requires the
    /// materialized backend (selecting it with [`Backend::Auto`]
    /// forces materialization regardless of the size cap; combining it
    /// with an explicit [`Backend::Lazy`] is an error). Drives every
    /// peeling-based algorithm — [`Algorithm::Naive`] and
    /// [`Algorithm::Dft`] consume the finished peeling, and
    /// [`Algorithm::Fnd`] classifies containers inside the rounds
    /// ([`crate::algo::fnd::fnd_parallel_with`]) — only
    /// [`Algorithm::Lcps`] rejects it (it walks the graph directly and
    /// never runs `Set-λ`).
    Frontier,
    /// Pick automatically: `Frontier` when the run is materialized,
    /// more than one worker thread is available and the algorithm runs
    /// `Set-λ` at all (Naive, DFT, FND); `Serial` otherwise.
    #[default]
    Auto,
}

impl PeelEngine {
    /// Whether the engine/algorithm pair is expressible at all — the
    /// frontier engine drives everything that peels; only LCPS (which
    /// never runs `Set-λ`) is out.
    pub(crate) fn supports(self, algorithm: Algorithm) -> bool {
        self != PeelEngine::Frontier || algorithm != Algorithm::Lcps
    }

    /// Resolves `Auto` for a concrete run. `materialized` is the
    /// already-resolved backend decision.
    pub(crate) fn resolve(
        self,
        algorithm: Algorithm,
        materialized: bool,
        threads: usize,
    ) -> PeelEngine {
        match self {
            PeelEngine::Auto => {
                if materialized
                    && threads > 1
                    && matches!(
                        algorithm,
                        Algorithm::Naive | Algorithm::Dft | Algorithm::Fnd
                    )
                {
                    PeelEngine::Frontier
                } else {
                    PeelEngine::Serial
                }
            }
            explicit => explicit,
        }
    }

    /// Parses a CLI spelling (`auto|serial|frontier`).
    pub fn parse(token: &str) -> Result<PeelEngine, CoreError> {
        match token {
            "auto" => Ok(PeelEngine::Auto),
            "serial" => Ok(PeelEngine::Serial),
            "frontier" => Ok(PeelEngine::Frontier),
            other => Err(CoreError::UnknownName {
                what: "engine",
                token: other.to_string(),
                expected: "auto|serial|frontier".to_string(),
            }),
        }
    }
}

impl std::fmt::Display for PeelEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PeelEngine::Serial => "serial",
            PeelEngine::Frontier => "frontier",
            PeelEngine::Auto => "auto",
        };
        write!(f, "{name}")
    }
}

/// Tuning for [`decompose_with`]. [`Default`] selects the backend
/// automatically and uses every available CPU for index construction;
/// [`decompose`] runs with these defaults.
#[derive(Clone, Copy, Debug)]
pub struct DecomposeOptions {
    /// Backend selection policy.
    pub backend: Backend,
    /// Peeling engine selection policy. [`PeelEngine::Frontier`]
    /// requires a materialized run; see the variant docs for the exact
    /// interaction with `backend`.
    pub engine: PeelEngine,
    /// Worker threads for index construction, frontier peeling rounds,
    /// and parallel ω counting where a space supports it. `0` means
    /// "all available CPUs".
    pub threads: usize,
    /// Hybrid-round threshold for the frontier engine: frontiers
    /// smaller than this drain the rest of their λ-level serially
    /// ([`crate::peel::FrontierOptions::serial_round_threshold`]).
    /// `0` disables the fallback; ignored by the serial engine.
    pub frontier_serial_below: usize,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            backend: Backend::Auto,
            engine: PeelEngine::Auto,
            threads: 0,
            frontier_serial_below: crate::peel::FrontierOptions::DEFAULT_SERIAL_ROUND_THRESHOLD,
        }
    }
}

impl DecomposeOptions {
    /// The thread count with `0` resolved to the CPU count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }
}

/// Wall-clock phase split, matching Figure 6's peeling/post-processing
/// decomposition. For FND "peeling" is the extended loop of Alg. 8; for
/// the others it is space construction + `Set-λ`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Peeling (including K_r enumeration / ω computation).
    pub peel: Duration,
    /// Hierarchy construction after (or interleaved with) peeling.
    pub post: Duration,
}

impl PhaseTimes {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.peel + self.post
    }
}

/// Structure counters (Table 3 columns), populated by DFT/FND runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SkeletonStats {
    /// Sub-nuclei created: |T| for DFT, |T*| for FND, nodes for others.
    pub subnuclei: usize,
    /// |c↓(T*)| (FND only; zero otherwise).
    pub adj_connections: usize,
}

/// Result of a full decomposition.
#[derive(Debug)]
pub struct Decomposition {
    /// Which family was decomposed.
    pub kind: Kind,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// The backend that actually ran ([`Backend::Auto`] resolved to
    /// [`Backend::Lazy`] or [`Backend::Materialized`]).
    pub backend: Backend,
    /// The peeling engine that actually ran ([`PeelEngine::Auto`]
    /// resolved to [`PeelEngine::Serial`] or [`PeelEngine::Frontier`]).
    pub engine: PeelEngine,
    /// λ per cell + peeling order.
    pub peeling: Peeling,
    /// The canonical hierarchy of nuclei.
    pub hierarchy: Hierarchy,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Structure counters.
    pub stats: SkeletonStats,
}

/// Runs the chosen `algorithm` for `kind` on `g` with
/// [`DecomposeOptions::default`] (automatic backend selection).
///
/// # Errors
/// [`CoreError::UnsupportedAlgorithm`] when `algorithm` is
/// [`Algorithm::Lcps`] and `kind` is not [`Kind::Core`].
pub fn decompose(
    g: &CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
) -> Result<Decomposition, CoreError> {
    decompose_with(g, kind, algorithm, DecomposeOptions::default())
}

/// Runs the chosen `algorithm` for `kind` on `g` with explicit
/// [`DecomposeOptions`] — in particular the peeling [`Backend`] and
/// [`PeelEngine`]. Index construction (materialized backend) is
/// accounted to the peeling phase, like clique enumeration. LCPS walks
/// the graph directly and ignores the backend choice.
///
/// This is a thin wrapper: it prepares a [`crate::session::Prepared`]
/// for `g` and runs it exactly once, producing bit-identical results to
/// the prepared pipeline (and to the pre-session implementation).
///
/// # Errors
/// * [`CoreError::UnsupportedAlgorithm`] when `algorithm` is
///   [`Algorithm::Lcps`] and `kind` is not [`Kind::Core`];
/// * [`CoreError::InvalidOptions`] when [`PeelEngine::Frontier`] is
///   requested together with [`Algorithm::Lcps`] (which never runs
///   `Set-λ`) or with an explicit [`Backend::Lazy`].
pub fn decompose_with(
    g: &CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
    options: DecomposeOptions,
) -> Result<Decomposition, CoreError> {
    // Validate up front (not at `run`) so the constraint-check order —
    // and therefore which error a doubly-invalid request reports — is
    // exactly the pre-session one.
    plan::validate(kind, algorithm, options.backend, options.engine)?;
    // LCPS ignores the backend (it walks the graph directly): prepare
    // lazily, as the single-shot path always has, so no index is built
    // only to be bypassed.
    let backend = if algorithm == Algorithm::Lcps {
        Backend::Lazy
    } else {
        options.backend
    };
    Nucleus::builder(g)
        .kind(kind)
        .backend(backend)
        .engine(options.engine)
        .threads(options.threads)
        .frontier_serial_below(options.frontier_serial_below)
        .prepare()?
        .run(algorithm)
}

/// Runs the *Hypo* baseline for `kind` with default options: peeling
/// plus one full sweep. Returns the phase times and the number of
/// s-connectivity components; no hierarchy is produced (that is the
/// point of the baseline).
pub fn hypo_baseline(g: &CsrGraph, kind: Kind) -> (PhaseTimes, usize) {
    hypo_baseline_with(g, kind, DecomposeOptions::default())
}

/// [`hypo_baseline`] with an explicit backend choice, so the baseline
/// stays comparable when the other algorithms run materialized. The
/// [`DecomposeOptions::engine`] field is ignored: the baseline always
/// peels serially (it exists to reproduce the paper's sequential cost
/// model, not to be fast).
pub fn hypo_baseline_with(
    g: &CsrGraph,
    kind: Kind,
    options: DecomposeOptions,
) -> (PhaseTimes, usize) {
    Nucleus::builder(g)
        .kind(kind)
        .backend(options.backend)
        // the baseline never uses the frontier engine, and `Serial`
        // composes with every backend, so `prepare` cannot fail
        .engine(PeelEngine::Serial)
        .threads(options.threads)
        .prepare()
        .expect("serial engine composes with every backend")
        .hypo_baseline()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::VertexSpace;
    use crate::test_graphs;

    #[test]
    fn all_algorithms_agree_on_all_kinds() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let mut results = vec![];
            for &algo in Algorithm::for_kind(kind) {
                let d = decompose(&g, kind, algo).expect("runs");
                d.hierarchy.validate().expect("valid");
                results.push((algo, d.hierarchy));
            }
            for pair in results.windows(2) {
                assert_eq!(
                    pair[0].1, pair[1].1,
                    "{kind}: {} vs {} disagree",
                    pair[0].0, pair[1].0
                );
            }
        }
    }

    #[test]
    fn lcps_rejected_for_truss() {
        let g = test_graphs::nested_cores();
        let err = decompose(&g, Kind::Truss, Algorithm::Lcps).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedAlgorithm { .. }));
        assert!(format!("{err}").contains("LCPS"));
    }

    #[test]
    fn hypo_baseline_runs_everywhere() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let (times, comps) = hypo_baseline(&g, kind);
            assert!(comps >= 1);
            assert!(times.total().as_nanos() > 0);
        }
    }

    #[test]
    fn backends_produce_identical_decompositions() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            for &algo in Algorithm::for_kind(kind) {
                if algo == Algorithm::Lcps {
                    continue;
                }
                let lazy = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        backend: Backend::Lazy,
                        // pinned: this test isolates backend equivalence
                        // (strict order equality needs one engine)
                        engine: PeelEngine::Serial,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("lazy");
                let mat = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        backend: Backend::Materialized,
                        engine: PeelEngine::Serial,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("materialized");
                assert_eq!(lazy.peeling.lambda, mat.peeling.lambda, "{kind}/{algo} λ");
                assert_eq!(lazy.peeling.order, mat.peeling.order, "{kind}/{algo} order");
                assert_eq!(lazy.hierarchy, mat.hierarchy, "{kind}/{algo} hierarchy");
            }
        }
    }

    #[test]
    fn auto_backend_materializes_small_spaces() {
        let g = test_graphs::nested_cores();
        let vs = VertexSpace::new(&g);
        assert!(Backend::Auto.materialize(&vs));
        assert!(!Backend::Lazy.materialize(&vs));
        assert!(Backend::Materialized.materialize(&vs));
        assert_eq!(format!("{}", Backend::Auto), "auto");
        assert_eq!(Backend::default(), Backend::Auto);
    }

    #[test]
    fn hypo_baseline_backends_agree_on_components() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let (_, lazy) = hypo_baseline_with(
                &g,
                kind,
                DecomposeOptions {
                    backend: Backend::Lazy,
                    threads: 1,
                    ..DecomposeOptions::default()
                },
            );
            let (_, mat) = hypo_baseline_with(
                &g,
                kind,
                DecomposeOptions {
                    backend: Backend::Materialized,
                    threads: 3,
                    ..DecomposeOptions::default()
                },
            );
            assert_eq!(lazy, mat, "{kind}");
        }
    }

    #[test]
    fn engines_produce_identical_decompositions() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            for &algo in &[Algorithm::Naive, Algorithm::Dft, Algorithm::Fnd] {
                let serial = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        engine: PeelEngine::Serial,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("serial");
                let frontier = decompose_with(
                    &g,
                    kind,
                    algo,
                    DecomposeOptions {
                        engine: PeelEngine::Frontier,
                        threads: 2,
                        ..DecomposeOptions::default()
                    },
                )
                .expect("frontier");
                assert_eq!(frontier.engine, PeelEngine::Frontier);
                assert_eq!(
                    frontier.backend,
                    Backend::Materialized,
                    "engine forces index"
                );
                assert_eq!(
                    serial.peeling.lambda, frontier.peeling.lambda,
                    "{kind}/{algo}"
                );
                assert_eq!(serial.hierarchy, frontier.hierarchy, "{kind}/{algo}");
            }
        }
    }

    #[test]
    fn frontier_engine_rejects_incompatible_options() {
        let g = test_graphs::nested_cores();
        let frontier = |backend| DecomposeOptions {
            backend,
            engine: PeelEngine::Frontier,
            threads: 2,
            ..DecomposeOptions::default()
        };
        // FND now rides the frontier engine; only LCPS and the lazy
        // backend remain genuinely incompatible.
        decompose_with(&g, Kind::Core, Algorithm::Fnd, frontier(Backend::Auto))
            .expect("frontier FND is a supported combination");
        let err =
            decompose_with(&g, Kind::Core, Algorithm::Lcps, frontier(Backend::Auto)).unwrap_err();
        assert!(matches!(err, CoreError::InvalidOptions { .. }), "{err}");
        assert!(format!("{err}").contains("LCPS"), "{err}");
        let err =
            decompose_with(&g, Kind::Truss, Algorithm::Dft, frontier(Backend::Lazy)).unwrap_err();
        assert!(format!("{err}").contains("materialized"), "{err}");
    }

    /// Pins Auto's full resolution matrix (algorithm × backend ×
    /// threads) so a future engine can't silently change defaults.
    #[test]
    fn auto_engine_resolution_matrix() {
        use PeelEngine::{Frontier, Serial};
        for algo in Algorithm::ALL {
            for materialized in [false, true] {
                for threads in [1, 2, 8] {
                    let expected = if materialized && threads > 1 && algo != Algorithm::Lcps {
                        Frontier
                    } else {
                        Serial
                    };
                    assert_eq!(
                        PeelEngine::Auto.resolve(algo, materialized, threads),
                        expected,
                        "auto({algo}, materialized={materialized}, threads={threads})"
                    );
                    // explicit choices always resolve to themselves
                    assert_eq!(Serial.resolve(algo, materialized, threads), Serial);
                    assert_eq!(Frontier.resolve(algo, materialized, threads), Frontier);
                }
            }
        }
    }

    #[test]
    fn auto_engine_resolution_policy() {
        // Auto picks Frontier only for materialized multi-thread
        // Set-λ runs (Naive/DFT/FND), Serial everywhere else.
        let auto = PeelEngine::Auto;
        assert_eq!(auto.resolve(Algorithm::Dft, true, 4), PeelEngine::Frontier);
        assert_eq!(
            auto.resolve(Algorithm::Naive, true, 2),
            PeelEngine::Frontier
        );
        assert_eq!(auto.resolve(Algorithm::Dft, true, 1), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Dft, false, 4), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Fnd, true, 4), PeelEngine::Frontier);
        assert_eq!(auto.resolve(Algorithm::Fnd, true, 1), PeelEngine::Serial);
        assert_eq!(auto.resolve(Algorithm::Lcps, true, 4), PeelEngine::Serial);
        // explicit choices resolve to themselves
        assert_eq!(
            PeelEngine::Frontier.resolve(Algorithm::Dft, true, 1),
            PeelEngine::Frontier
        );
        assert_eq!(
            PeelEngine::Serial.resolve(Algorithm::Dft, true, 8),
            PeelEngine::Serial
        );
        // the decomposition reports the resolved engine
        let g = test_graphs::nested_cores();
        for algo in [Algorithm::Dft, Algorithm::Fnd] {
            let d = decompose_with(
                &g,
                Kind::Core,
                algo,
                DecomposeOptions {
                    engine: PeelEngine::Auto,
                    threads: 2,
                    ..DecomposeOptions::default()
                },
            )
            .unwrap();
            assert_eq!(d.engine, PeelEngine::Frontier, "{algo}");
        }
        let d = decompose_with(
            &g,
            Kind::Core,
            Algorithm::Fnd,
            DecomposeOptions {
                threads: 1,
                ..DecomposeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(d.engine, PeelEngine::Serial);
        assert_eq!(format!("{}", PeelEngine::Auto), "auto");
        assert_eq!(format!("{}", PeelEngine::Frontier), "frontier");
        assert_eq!(PeelEngine::default(), PeelEngine::Auto);
    }

    #[test]
    fn kind_display_and_rs() {
        assert_eq!(Kind::Core.rs(), (1, 2));
        assert_eq!(Kind::VertexTriangle.rs(), (1, 3));
        assert_eq!(Kind::EdgeK4.rs(), (2, 4));
        assert_eq!(format!("{}", Kind::Truss), "(2,3)");
        assert_eq!(format!("{}", Kind::VertexTriangle), "(1,3)");
        assert_eq!(format!("{}", Kind::EdgeK4), "(2,4)");
        assert_eq!(format!("{}", Algorithm::Fnd), "FND");
        assert_eq!(Algorithm::for_kind(Kind::Core).len(), 4);
        assert_eq!(Algorithm::for_kind(Kind::Nucleus34).len(), 3);
        assert_eq!(Algorithm::for_kind(Kind::VertexTriangle).len(), 3);
        assert_eq!(Algorithm::for_kind(Kind::EdgeK4).len(), 3);
        assert_eq!(Kind::all().len(), 5);
    }

    #[test]
    fn kind_and_algorithm_parsing() {
        // every kind round-trips through both spellings
        for kind in Kind::all() {
            assert_eq!(Kind::parse(kind.name()).unwrap(), kind);
            let (r, s) = kind.rs();
            assert_eq!(Kind::parse(&format!("{r},{s}")).unwrap(), kind);
        }
        assert_eq!(
            Kind::parse("vertex-triangle").unwrap(),
            Kind::VertexTriangle
        );
        assert_eq!(Kind::parse("2,4").unwrap(), Kind::EdgeK4);
        // the error lists the full, current set of spellings
        let err = Kind::parse("bogus").unwrap_err();
        let msg = format!("{err}");
        for kind in Kind::all() {
            assert!(msg.contains(kind.name()), "{msg}");
        }
        assert!(msg.contains("1,3") && msg.contains("2,4"), "{msg}");
        // algorithms
        for algo in Algorithm::ALL {
            assert_eq!(Algorithm::parse(algo.name()).unwrap(), algo);
        }
        let err = Algorithm::parse("bogus").unwrap_err();
        let msg = format!("{err}");
        for algo in Algorithm::ALL {
            assert!(msg.contains(algo.name()), "{msg}");
        }
        // backend / engine spellings
        assert_eq!(
            Backend::parse("materialized").unwrap(),
            Backend::Materialized
        );
        assert!(Backend::parse("bogus").is_err());
        assert_eq!(PeelEngine::parse("frontier").unwrap(), PeelEngine::Frontier);
        assert!(PeelEngine::parse("bogus").is_err());
    }
}
