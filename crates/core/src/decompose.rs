//! High-level decomposition API: pick a space and an algorithm, get a
//! hierarchy plus phase timings and statistics.

use std::time::{Duration, Instant};

use nucleus_graph::CsrGraph;

use crate::algo::dft::dft;
use crate::algo::fnd::fnd;
use crate::algo::hypo::hypo_sweep;
use crate::algo::lcps::lcps;
use crate::algo::naive::naive;
use crate::error::CoreError;
use crate::hierarchy::Hierarchy;
use crate::peel::{peel, Peeling};
use crate::space::{EdgeSpace, PeelSpace, TriangleSpace, VertexSpace};

/// Which decomposition family to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// (1,2): k-core.
    Core,
    /// (2,3): k-truss community.
    Truss,
    /// (3,4): four-clique nuclei.
    Nucleus34,
}

impl Kind {
    /// `(r, s)` of the family.
    pub fn rs(self) -> (u32, u32) {
        match self {
            Kind::Core => (1, 2),
            Kind::Truss => (2, 3),
            Kind::Nucleus34 => (3, 4),
        }
    }

    /// All families, in paper order.
    pub fn all() -> [Kind; 3] {
        [Kind::Core, Kind::Truss, Kind::Nucleus34]
    }
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, s) = self.rs();
        write!(f, "({r},{s})")
    }
}

/// Which hierarchy algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Per-level traversal (Alg. 2/3) — the baseline.
    Naive,
    /// Disjoint-set-forest traversal (Alg. 5/6).
    Dft,
    /// Traversal-free peeling-time construction (Alg. 8/9).
    Fnd,
    /// Matula–Beck priority search (k-core only).
    Lcps,
}

impl Algorithm {
    /// All algorithms applicable to `kind`.
    pub fn for_kind(kind: Kind) -> &'static [Algorithm] {
        match kind {
            Kind::Core => &[
                Algorithm::Naive,
                Algorithm::Dft,
                Algorithm::Fnd,
                Algorithm::Lcps,
            ],
            _ => &[Algorithm::Naive, Algorithm::Dft, Algorithm::Fnd],
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Algorithm::Naive => "Naive",
            Algorithm::Dft => "DFT",
            Algorithm::Fnd => "FND",
            Algorithm::Lcps => "LCPS",
        };
        write!(f, "{name}")
    }
}

/// Wall-clock phase split, matching Figure 6's peeling/post-processing
/// decomposition. For FND "peeling" is the extended loop of Alg. 8; for
/// the others it is space construction + `Set-λ`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Peeling (including K_r enumeration / ω computation).
    pub peel: Duration,
    /// Hierarchy construction after (or interleaved with) peeling.
    pub post: Duration,
}

impl PhaseTimes {
    /// Total wall time.
    pub fn total(&self) -> Duration {
        self.peel + self.post
    }
}

/// Structure counters (Table 3 columns), populated by DFT/FND runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SkeletonStats {
    /// Sub-nuclei created: |T| for DFT, |T*| for FND, nodes for others.
    pub subnuclei: usize,
    /// |c↓(T*)| (FND only; zero otherwise).
    pub adj_connections: usize,
}

/// Result of a full decomposition.
#[derive(Debug)]
pub struct Decomposition {
    /// Which family was decomposed.
    pub kind: Kind,
    /// Which algorithm produced it.
    pub algorithm: Algorithm,
    /// λ per cell + peeling order.
    pub peeling: Peeling,
    /// The canonical hierarchy of nuclei.
    pub hierarchy: Hierarchy,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Structure counters.
    pub stats: SkeletonStats,
}

/// Runs the chosen `algorithm` for `kind` on `g`.
///
/// # Errors
/// [`CoreError::UnsupportedAlgorithm`] when `algorithm` is
/// [`Algorithm::Lcps`] and `kind` is not [`Kind::Core`].
pub fn decompose(
    g: &CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
) -> Result<Decomposition, CoreError> {
    match kind {
        Kind::Core => {
            if algorithm == Algorithm::Lcps {
                let t0 = Instant::now();
                let space = VertexSpace::new(g);
                let peeling = peel(&space);
                let peel_t = t0.elapsed();
                let t1 = Instant::now();
                let hierarchy = lcps(g, &peeling);
                let post_t = t1.elapsed();
                return Ok(Decomposition {
                    kind,
                    algorithm,
                    stats: SkeletonStats {
                        subnuclei: hierarchy.nucleus_count(),
                        adj_connections: 0,
                    },
                    peeling,
                    hierarchy,
                    times: PhaseTimes {
                        peel: peel_t,
                        post: post_t,
                    },
                });
            }
            run_generic(g, kind, algorithm, VertexSpace::new)
        }
        Kind::Truss => run_generic(g, kind, algorithm, EdgeSpace::new),
        Kind::Nucleus34 => run_generic(g, kind, algorithm, TriangleSpace::new),
    }
}

fn run_generic<'g, S, F>(
    g: &'g CsrGraph,
    kind: Kind,
    algorithm: Algorithm,
    make_space: F,
) -> Result<Decomposition, CoreError>
where
    S: PeelSpace,
    F: FnOnce(&'g CsrGraph) -> S,
{
    match algorithm {
        Algorithm::Lcps => Err(CoreError::UnsupportedAlgorithm {
            algorithm: "LCPS",
            kind: format!("{kind}"),
        }),
        Algorithm::Fnd => {
            let t0 = Instant::now();
            let space = make_space(g);
            let build_t = t0.elapsed();
            let out = fnd(&space);
            Ok(Decomposition {
                kind,
                algorithm,
                peeling: out.peeling,
                hierarchy: out.hierarchy,
                times: PhaseTimes {
                    peel: build_t + out.peel_time,
                    post: out.post_time,
                },
                stats: SkeletonStats {
                    subnuclei: out.stats.subnuclei,
                    adj_connections: out.stats.adj_connections,
                },
            })
        }
        Algorithm::Naive | Algorithm::Dft => {
            let t0 = Instant::now();
            let space = make_space(g);
            let peeling = peel(&space);
            let peel_t = t0.elapsed();
            let t1 = Instant::now();
            let (hierarchy, subnuclei) = match algorithm {
                Algorithm::Naive => {
                    let h = naive(&space, &peeling);
                    let c = h.nucleus_count();
                    (h, c)
                }
                _ => {
                    let (h, st) = dft(&space, &peeling);
                    (h, st.subnuclei)
                }
            };
            let post_t = t1.elapsed();
            Ok(Decomposition {
                kind,
                algorithm,
                peeling,
                hierarchy,
                times: PhaseTimes {
                    peel: peel_t,
                    post: post_t,
                },
                stats: SkeletonStats {
                    subnuclei,
                    adj_connections: 0,
                },
            })
        }
    }
}

/// Runs the *Hypo* baseline for `kind`: peeling plus one full sweep.
/// Returns the phase times and the number of s-connectivity components;
/// no hierarchy is produced (that is the point of the baseline).
pub fn hypo_baseline(g: &CsrGraph, kind: Kind) -> (PhaseTimes, usize) {
    fn run<S: PeelSpace>(space: &S, build_t: Duration) -> (PhaseTimes, usize) {
        let t0 = Instant::now();
        let _ = peel(space);
        let peel_t = build_t + t0.elapsed();
        let t1 = Instant::now();
        let comps = hypo_sweep(space);
        (
            PhaseTimes {
                peel: peel_t,
                post: t1.elapsed(),
            },
            comps,
        )
    }
    match kind {
        Kind::Core => {
            let t = Instant::now();
            let s = VertexSpace::new(g);
            let b = t.elapsed();
            run(&s, b)
        }
        Kind::Truss => {
            let t = Instant::now();
            let s = EdgeSpace::new(g);
            let b = t.elapsed();
            run(&s, b)
        }
        Kind::Nucleus34 => {
            let t = Instant::now();
            let s = TriangleSpace::new(g);
            let b = t.elapsed();
            run(&s, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_graphs;

    #[test]
    fn all_algorithms_agree_on_all_kinds() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let mut results = vec![];
            for &algo in Algorithm::for_kind(kind) {
                let d = decompose(&g, kind, algo).expect("runs");
                d.hierarchy.validate().expect("valid");
                results.push((algo, d.hierarchy));
            }
            for pair in results.windows(2) {
                assert_eq!(
                    pair[0].1, pair[1].1,
                    "{kind}: {} vs {} disagree",
                    pair[0].0, pair[1].0
                );
            }
        }
    }

    #[test]
    fn lcps_rejected_for_truss() {
        let g = test_graphs::nested_cores();
        let err = decompose(&g, Kind::Truss, Algorithm::Lcps).unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedAlgorithm { .. }));
        assert!(format!("{err}").contains("LCPS"));
    }

    #[test]
    fn hypo_baseline_runs_everywhere() {
        let g = test_graphs::nested_cores();
        for kind in Kind::all() {
            let (times, comps) = hypo_baseline(&g, kind);
            assert!(comps >= 1);
            assert!(times.total().as_nanos() > 0);
        }
    }

    #[test]
    fn kind_display_and_rs() {
        assert_eq!(Kind::Core.rs(), (1, 2));
        assert_eq!(format!("{}", Kind::Truss), "(2,3)");
        assert_eq!(format!("{}", Algorithm::Fnd), "FND");
        assert_eq!(Algorithm::for_kind(Kind::Core).len(), 4);
        assert_eq!(Algorithm::for_kind(Kind::Nucleus34).len(), 3);
    }
}
