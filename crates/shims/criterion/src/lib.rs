//! Offline stand-in for `criterion`.
//!
//! Supports the benchmarking surface this workspace's benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), `bench_function` /
//! `bench_with_input` with [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! warmed up for the configured warm-up time, then run for up to
//! `sample_size` samples or until the measurement time is spent —
//! whichever comes first — and the median, minimum and maximum
//! per-sample times are printed. Harness flags cargo passes to
//! `harness = false` targets (`--bench`, `--test`, filters) are
//! accepted and ignored.

use std::time::{Duration, Instant};

/// Benchmark registry; handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(
            &id.into(),
            self.default_sample_size,
            Duration::from_secs(3),
            Duration::from_millis(300),
            &mut f,
        );
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
    }

    /// Benchmarks `f`, passing it `input` alongside the [`Bencher`].
    pub fn bench_with_input<I, T: ?Sized, F>(&mut self, id: I, input: &T, mut f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b: &mut Bencher| f(b, input),
        );
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label combining a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Anything `bench_function`/`bench_with_input` accepts as an id.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Instant,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up;
        loop {
            black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
        }
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        deadline: Instant::now() + warm_up_time + measurement_time,
        warm_up: warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<48} (no samples: Bencher::iter never called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "  {label:<48} median {} (min {}, max {}, {} samples)",
        fmt(median),
        fmt(lo),
        fmt(hi),
        b.samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// An opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo passes (--bench, --test, ...).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 5, "closure ran {runs} times");
    }
}
