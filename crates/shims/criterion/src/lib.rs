//! Offline stand-in for `criterion`.
//!
//! Supports the benchmarking surface this workspace's benches use:
//! [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `measurement_time`, `warm_up_time`), `bench_function` /
//! `bench_with_input` with [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! warmed up for the configured warm-up time, then run for up to
//! `sample_size` samples or until the measurement time is spent —
//! whichever comes first — and the median, minimum and maximum
//! per-sample times are printed. Harness flags cargo passes to
//! `harness = false` targets (`--bench`, `--test`, filters) are
//! accepted; all but `--bench` are ignored.
//!
//! # Machine-readable results
//!
//! When running as an actual benchmark (cargo passes `--bench` to the
//! target), every finished group additionally writes
//! `results/BENCH_<group>.json` under the workspace root (the nearest
//! ancestor directory containing a `Cargo.lock`; override with the
//! `NUCLEUS_BENCH_RESULTS` env var): one entry per benchmark with
//! median/min/max nanoseconds and the sample count, so the perf
//! trajectory can be tracked across PRs without scraping stdout.

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Benchmark registry; handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
            records: Vec::new(),
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        if let Some(record) = run_one(
            &id,
            self.default_sample_size,
            Duration::from_secs(3),
            Duration::from_millis(300),
            &mut f,
        ) {
            // A groupless benchmark gets a single-entry group file
            // named after itself.
            maybe_write_group_json(&id, &[record]);
        }
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    records: Vec<BenchRecord>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        if let Some(record) = run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        ) {
            self.records.push(record);
        }
    }

    /// Benchmarks `f`, passing it `input` alongside the [`Bencher`].
    pub fn bench_with_input<I, T: ?Sized, F>(&mut self, id: I, input: &T, mut f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        if let Some(record) = run_one(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            &mut |b: &mut Bencher| f(b, input),
        ) {
            self.records.push(record);
        }
    }

    /// Ends the group, flushing `results/BENCH_<group>.json` (kept for
    /// API parity with criterion; dropping the group does the same).
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        // Skip the write while unwinding: a partial record set must not
        // clobber a complete JSON from an earlier successful run.
        if !self.records.is_empty() && !std::thread::panicking() {
            maybe_write_group_json(&self.name, &self.records);
        }
    }
}

/// One measured benchmark, in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Full benchmark label (`group/function/parameter`).
    pub id: String,
    /// Median per-sample time.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of samples taken.
    pub samples: usize,
}

/// `true` when cargo launched this process as a bench target (it passes
/// `--bench`); unit tests and plain runs skip the JSON side effect.
fn running_as_bench() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Directory JSON results land in: `NUCLEUS_BENCH_RESULTS` if set, else
/// `results/` under the nearest ancestor holding a `Cargo.lock` (the
/// workspace root — bench processes may start in the member crate),
/// else `results/` under the current directory.
fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("NUCLEUS_BENCH_RESULTS") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = cwd.clone();
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("results");
        }
        if !probe.pop() {
            return cwd.join("results");
        }
    }
}

/// Group name → safe `BENCH_<name>.json` file stem.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders the group's records as JSON (hand-rolled: the shim has no
/// dependencies, and the payload is flat strings and integers).
fn render_json(group: &str, records: &[BenchRecord]) -> String {
    let esc = |s: &str| {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    };
    let mut json = String::new();
    json.push_str(&format!("{{\n  \"group\": \"{}\",\n", esc(group)));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{}\n",
            esc(&r.id),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.samples,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Writes `BENCH_<group>.json` into `dir`, returning the path on
/// success.
fn write_group_json(
    dir: &std::path::Path,
    group: &str,
    records: &[BenchRecord],
) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("BENCH_{}.json", sanitize(group)));
    std::fs::write(&path, render_json(group, records)).ok()?;
    Some(path)
}

fn maybe_write_group_json(group: &str, records: &[BenchRecord]) {
    if !running_as_bench() {
        return;
    }
    match write_group_json(&results_dir(), group, records) {
        Some(path) => println!("  results → {}", path.display()),
        None => eprintln!("  (could not write JSON results for group {group})"),
    }
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Label combining a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Anything `bench_function`/`bench_with_input` accepts as an id.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    deadline: Instant,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + self.warm_up;
        loop {
            black_box(routine());
            if Instant::now() >= warm_until {
                break;
            }
        }
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut F,
) -> Option<BenchRecord> {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        deadline: Instant::now() + warm_up_time + measurement_time,
        warm_up: warm_up_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<48} (no samples: Bencher::iter never called)");
        return None;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "  {label:<48} median {} (min {}, max {}, {} samples)",
        fmt(median),
        fmt(lo),
        fmt(hi),
        b.samples.len()
    );
    Some(BenchRecord {
        id: label.to_string(),
        median_ns: median.as_nanos(),
        min_ns: lo.as_nanos(),
        max_ns: hi.as_nanos(),
        samples: b.samples.len(),
    })
}

fn fmt(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}µs", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// An opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo passes (--bench, --test, ...).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(50));
        group.warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 5, "closure ran {runs} times");
    }

    #[test]
    fn json_rendering_and_sanitizing() {
        let records = vec![
            BenchRecord {
                id: "g/peel/(2,3)".into(),
                median_ns: 1200,
                min_ns: 1000,
                max_ns: 2000,
                samples: 10,
            },
            BenchRecord {
                id: "g/\"quoted\"".into(),
                median_ns: 5,
                min_ns: 5,
                max_ns: 5,
                samples: 1,
            },
        ];
        let json = render_json("my group", &records);
        assert!(json.contains("\"group\": \"my group\""));
        assert!(json.contains("\"median_ns\": 1200"));
        assert!(json.contains("\\\"quoted\\\""));
        // exactly one comma between the two entries, none trailing
        assert_eq!(json.matches("},\n").count(), 1);
        assert_eq!(sanitize("table5_truss"), "table5_truss");
        assert_eq!(sanitize("backend/(2,3) er"), "backend__2_3__er");
    }

    #[test]
    fn json_file_written_to_explicit_dir() {
        let dir = std::env::temp_dir().join("criterion-shim-json-test");
        let _ = std::fs::remove_dir_all(&dir);
        let records = vec![BenchRecord {
            id: "solo".into(),
            median_ns: 42,
            min_ns: 40,
            max_ns: 44,
            samples: 3,
        }];
        let path = write_group_json(&dir, "solo_group", &records).expect("written");
        assert!(path.ends_with("BENCH_solo_group.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"median_ns\": 42"));
        assert!(body.contains("\"samples\": 3"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_json_side_effect_outside_bench_mode() {
        // Unit tests are not launched with --bench, so groups must not
        // touch the filesystem when dropped.
        assert!(!running_as_bench());
    }
}
