//! Offline stand-in for `serde_json`.
//!
//! Converts between the shim [`serde::Value`] tree and JSON text:
//! [`to_string`], [`to_string_pretty`] and [`from_str`]. The writer
//! escapes control characters, quotes and backslashes; the reader is a
//! strict recursive-descent parser (no trailing garbage, no NaN/Inf
//! literals) sufficient for round-tripping everything the workspace
//! serializes.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes a value as human-indented JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error("cannot serialize non-finite float".into()));
            }
            // `{:?}` keeps a decimal point or exponent, so the value
            // re-parses as a float rather than an integer.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Nesting ceiling matching real serde_json's default recursion limit;
/// keeps adversarial input from overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error(format!(
                "JSON nested deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        let v = self.parse_value_inner();
        self.depth -= 1;
        v
    }

    fn parse_value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of JSON input".into())),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in JSON string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            // `from_str_radix` tolerates a leading sign;
                            // JSON requires exactly four hex digits.
                            if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                                return Err(Error("bad \\u escape".into()));
                            }
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("bad \\u code point".into()))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape in JSON string".into())),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated JSON string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        // JSON grammar: the integer part is `0` or a nonzero-led digit
        // run — never empty, never `0123`.
        if int_len == 0 || (int_len > 1 && self.bytes[int_start] == b'0') {
            return Err(Error(format!("bad number at byte {start}")));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error(format!(
                    "bad number at byte {start}: no fraction digits"
                )));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error(format!(
                    "bad number at byte {start}: no exponent digits"
                )));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            match text.parse::<f64>() {
                // `f64::from_str` saturates overflow to ±inf, which our
                // writer refuses; reject here so accepted == writable.
                Ok(f) if f.is_finite() => Ok(Value::F64(f)),
                _ => Err(Error(format!("bad number `{text}`"))),
            }
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-17", "\"hi\""] {
            let v: Value = from_str_value(json);
            let mut out = String::new();
            write_value(&v, None, 0, &mut out).unwrap();
            assert_eq!(out, json);
        }
        let v: Value = from_str_value("1.5");
        assert_eq!(v, Value::F64(1.5));
    }

    fn from_str_value(s: &str) -> Value {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.parse_value().unwrap();
        p.skip_ws();
        assert_eq!(p.pos, s.len());
        v
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = "{\"a\":[1,2,3],\"b\":{\"c\":\"x\\n\\\"y\\\"\",\"d\":[]},\"e\":null}";
        let v = from_str_value(json);
        let mut out = String::new();
        write_value(&v, None, 0, &mut out).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let json = "{\"nodes\":[{\"lambda\":0,\"cells\":[1,2]},{\"lambda\":3,\"cells\":[]}]}";
        let v = from_str_value(json);
        let mut pretty = String::new();
        write_value(&v, Some(2), 0, &mut pretty).unwrap();
        assert!(pretty.contains("\n  \"nodes\""));
        assert_eq!(from_str_value(&pretty), v);
    }

    #[test]
    fn typed_round_trip_and_errors() {
        let v: Vec<(u32, u32)> = from_str("[[1,2],[3,4]]").unwrap();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
        assert_eq!(to_string(&v).unwrap(), "[[1,2],[3,4]]");
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn hostile_inputs_error_instead_of_crashing() {
        // Deep nesting must return Err, not overflow the stack.
        let deep = "[".repeat(100_000);
        assert!(from_str::<Vec<u32>>(&deep).is_err());
        let just_over = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(from_str::<Value>(&just_over).is_err());
        let at_limit = format!("{}1{}", "[".repeat(127), "]".repeat(127));
        assert!(from_str::<Value>(&at_limit).is_ok());
        // Overflowing float literals must not sneak in as ±inf.
        assert!(from_str::<f64>("1e999").is_err());
        assert!(from_str::<f64>("-1e999").is_err());
        assert_eq!(from_str::<f64>("1e10").unwrap(), 1e10);
    }

    #[test]
    fn invalid_json_forms_are_rejected() {
        // Number grammar violations real serde_json also rejects.
        for bad in ["0123", "-0123", "1.", ".5", "1e", "1e+", "-", "--1"] {
            assert!(from_str::<f64>(bad).is_err(), "accepted `{bad}`");
        }
        assert_eq!(from_str::<u64>("0").unwrap(), 0);
        assert_eq!(from_str::<f64>("-0.5e+2").unwrap(), -50.0);
        // \u escapes must be exactly four hex digits (no sign leniency).
        assert!(from_str::<String>("\"\\u+041\"").is_err());
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn derive_handles_arrow_in_field_types() {
        // The `->` in the phantom fn type must not unbalance the
        // derive's generic-depth tracking: `after` must still be
        // serialized (regression test for the derive's type-skipper).
        #[derive(serde::Serialize, serde::Deserialize)]
        struct WithArrow {
            tag: std::marker::PhantomData<fn(u32) -> Vec<u32>>,
            after: u32,
        }
        let json = to_string(&WithArrow {
            tag: std::marker::PhantomData,
            after: 7,
        })
        .unwrap();
        assert_eq!(json, "{\"tag\":null,\"after\":7}");
        let back: WithArrow = from_str(&json).unwrap();
        assert_eq!(back.after, 7);
    }

    #[test]
    fn u64_values_stay_exact() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }
}
