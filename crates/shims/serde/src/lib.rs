//! Offline stand-in for `serde`.
//!
//! The workspace builds without network access, so the serialization
//! surface the crates rely on — `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{to_string, to_string_pretty, from_str}` — is provided
//! by this trio of shim crates (`serde`, `serde_derive`, `serde_json`).
//!
//! Unlike real serde's zero-copy visitor architecture, this shim uses a
//! plain tree data model: [`Serialize`] renders a value to a [`Value`],
//! [`Deserialize`] rebuilds one from it, and `serde_json` converts
//! between [`Value`] and JSON text. That is entirely sufficient for the
//! hierarchy/graph export paths used here, and keeps the implementation
//! a few hundred dependency-free lines.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the pivot of every conversion in the shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers (kept exact up to `u64::MAX`).
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Error for a field absent from the input object.
    pub fn missing_field(name: &str) -> Error {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!(concat!("{} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i128 = match *v {
                    Value::U64(n) => n as i128,
                    Value::I64(n) => n as i128,
                    ref other => {
                        return Err(Error(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!(concat!("{} out of range for ", stringify!($t)), n))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(Error(format!("expected f64, got {}", other.kind()))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: ?Sized> Serialize for std::marker::PhantomData<T> {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: ?Sized> Deserialize for std::marker::PhantomData<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(std::marker::PhantomData),
            other => Err(Error(format!("expected null, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($len:literal; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error(format!(
                        "expected {}-tuple array, got {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    };
}

impl_serde_tuple!(2; A.0, B.1);
impl_serde_tuple!(3; A.0, B.1, C.2);
impl_serde_tuple!(4; A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(
            Vec::<(u32, u32)>::from_value(&vec![(1u32, 2u32)].to_value()).unwrap(),
            vec![(1, 2)]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.field("a").unwrap(), &Value::U64(1));
        assert!(v.field("b").is_err());
        assert!(Value::Null.field("a").is_err());
    }
}
