//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` 0.8 APIs the generators and tests rely on are
//! reimplemented here: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic per seed, which is all the
//! seeded synthetic graph generators need. It is **not** the same stream
//! as the real `StdRng` (ChaCha12), and it is not cryptographically
//! secure; nothing in this workspace depends on either property.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Creates an rng deterministically from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete rng implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic rng (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly "at large" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // `start + f * span` can round up to `end` when the range sits
        // far from zero; keep the half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every rng.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64).all(|_| a.gen::<u64>() == c.gen::<u64>());
        assert!(!same, "different seeds must give different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn f64_range_never_returns_exclusive_bound() {
        // Regression: far from zero, `start + f * span` rounds up to
        // `end` for ~25% of draws unless clamped.
        let mut rng = StdRng::seed_from_u64(0);
        let (lo, hi) = (1.0e16, 1.0e16 + 4.0);
        for _ in 0..100_000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "got {x}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
