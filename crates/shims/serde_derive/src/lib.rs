//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shim `serde` crate's value-tree data model. Because the container
//! image carries no `syn`/`quote`, the struct definition is parsed
//! directly from the `proc_macro` token tree: attributes are skipped,
//! the struct name is captured, and field names are collected from the
//! brace-delimited body (a field name is an identifier followed by `:`
//! at angle-bracket depth zero).
//!
//! Supported shape: non-generic `struct`s with named fields — exactly
//! what the workspace derives on. Anything else is a compile error with
//! a pointed message rather than silent misbehavior.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct Name { field, ... }` skeleton.
struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream, derive: &str) -> StructDef {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility, then expect `struct Name`.
    let name = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(name)) => break name.to_string(),
                _ => panic!("derive({derive}): expected struct name"),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                panic!("derive({derive}) shim supports only structs with named fields")
            }
            Some(_) => {} // `pub`, `pub(crate)`, ...
            None => panic!("derive({derive}): no struct found"),
        }
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive({derive}) shim does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("derive({derive}) shim supports only structs with named fields")
            }
            Some(_) => {}
            None => panic!("derive({derive}): struct `{name}` has no body"),
        }
    };

    // Within the body: skip attributes and visibility, take the field
    // name before `:`, then skip the type up to a depth-0 comma.
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        match toks.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // optional `(crate)`/`(super)` restriction
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    _ => panic!("derive({derive}): expected `:` after field `{id}` in `{name}`"),
                }
                fields.push(id.to_string());
                // Skip the type: consume until a comma at angle depth 0.
                // The `>` of an `->` arrow (fn-pointer / Fn-trait types)
                // is not a generic closer: `-` arrives as a joint punct
                // immediately before it.
                let mut depth = 0i32;
                let mut prev_joint_minus = false;
                for t in toks.by_ref() {
                    let mut joint_minus = false;
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' && !prev_joint_minus => {
                            depth -= 1;
                            assert!(
                                depth >= 0,
                                "derive({derive}): unbalanced `>` in type of field \
                                 `{id}` in `{name}`"
                            );
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        TokenTree::Punct(p) => {
                            joint_minus = p.as_char() == '-'
                                && matches!(p.spacing(), proc_macro::Spacing::Joint);
                        }
                        _ => {}
                    }
                    prev_joint_minus = joint_minus;
                }
            }
            Some(other) => {
                panic!("derive({derive}): unexpected token `{other}` in `{name}`")
            }
        }
    }
    StructDef { name, fields }
}

/// Derives `serde::Serialize` (value-tree rendering) for a named struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input, "Serialize");
    let entries: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec::Vec::<(\
                     ::std::string::String, ::serde::Value\
                 )>::from([{entries}]))\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Derives `serde::Deserialize` (value-tree rebuild) for a named struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input, "Deserialize");
    let inits: String = def
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("derive(Deserialize): generated impl must parse")
}
