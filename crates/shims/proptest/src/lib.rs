//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! integer-range / tuple / [`collection::vec`] / [`bool::ANY`]
//! strategies, [`ProptestConfig::with_cases`], and the `proptest!`,
//! `prop_assert*!` and `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! inputs are **not shrunk**. Each test case is drawn from a
//! deterministic per-test rng (seeded from the test name, overridable
//! via `PROPTEST_SEED`), so failures are reproducible run-to-run; they
//! are simply reported with the case number instead of a minimized
//! counterexample.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Everything a property-test file needs, plus `prop` as an alias of
/// this crate (for `prop::bool::ANY`-style paths).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Runner configuration; only the case count is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Ceiling on total `prop_assume!` rejections per property before the
/// test errors out (mirrors real proptest's global reject cap).
pub const MAX_GLOBAL_REJECTS: u32 = 1024;

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => f.write_str(msg),
        }
    }
}

/// The deterministic rng handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Rng for one named test: seeded from the test name, or from the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn for_test(name: &str) -> TestRng {
        let seed = match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a decimal u64, got {s:?}")),
            // FNV-1a over the test name: stable across runs and rustc
            // versions, unlike `DefaultHasher`.
            Err(_) => name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }),
        };
        TestRng(StdRng::seed_from_u64(seed))
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Strategy generating `f(value)` for each generated `value`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Strategy delegating to the strategy `f(value)` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0..2u32) == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length ranges for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy type of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `element`-generated values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            // Rejected cases don't consume the case budget, and — as in
            // real proptest — a property whose assumption almost never
            // holds errors out instead of passing vacuously.
            let mut passed: u32 = 0;
            let mut rejects: u32 = 0;
            while passed < cfg.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= $crate::MAX_GLOBAL_REJECTS,
                            "property {}: too many prop_assume! rejects ({} with only {} of {} \
                             cases passed) — the assumption almost never holds",
                            stringify!($name), rejects, passed, cfg.cases
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {passed}/{}: {msg}",
                               stringify!($name), cfg.cases);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} ({})\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs
        );
    }};
}

/// Skips the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 3u32..17,
            (a, b) in (0usize..5, 10usize..=12),
            flip in prop::bool::ANY,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 5 && (10..=12).contains(&b));
            prop_assert_ne!(flip as u32, 2);
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec((0u32..9, 0u32..9), 2..=6),
        ) {
            prop_assert!((2..=6).contains(&v.len()));
            for (x, y) in v {
                prop_assert!(x < 9 && y < 9, "({}, {})", x, y);
            }
        }

        #[test]
        fn maps_and_assume_compose(n in 1usize..40) {
            prop_assume!(n % 2 == 0);
            let doubled = (0..n).collect::<Vec<_>>();
            prop_assert_eq!(doubled.len(), n);
            prop_assert_ne!(n, 41);
        }

        #[test]
        #[should_panic(expected = "too many prop_assume! rejects")]
        fn vacuous_assumption_errors_out(n in 0usize..10) {
            prop_assume!(n > 10);
            prop_assert!(false, "body must never run, n = {}", n);
        }
    }

    #[test]
    fn prop_map_and_flat_map_sample() {
        let strat = (2u32..=5)
            .prop_flat_map(|n| prop::collection::vec(0..n, 1..4).prop_map(move |v| (n, v)));
        let mut rng = super::TestRng::for_test("manual");
        for _ in 0..100 {
            let (n, v) = strat.sample(&mut rng);
            assert!((2..=5).contains(&n));
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn same_test_name_gives_same_stream() {
        let mut a = super::TestRng::for_test("stable");
        let mut b = super::TestRng::for_test("stable");
        for _ in 0..32 {
            assert_eq!(
                (0u64..1 << 40).sample(&mut a),
                (0u64..1 << 40).sample(&mut b)
            );
        }
    }
}
