//! Property tests: oriented triangle enumeration and K4 degrees against
//! the brute-force clique enumerator, on random graphs.

use proptest::prelude::*;

use nucleus_cliques::four_cliques::{k4_count, k4_degrees};
use nucleus_cliques::kclique::{count_cliques, for_each_clique};
use nucleus_cliques::triangles::{edge_supports, triangle_count};
use nucleus_cliques::{TriangleIndex, TriangleList};
use nucleus_graph::CsrGraph;

fn graph_strategy(n: u32, m_max: usize) -> impl Strategy<Value = CsrGraph> {
    proptest::collection::vec((0..n, 0..n), 0..=m_max)
        .prop_map(move |edges| CsrGraph::from_edges(n as usize, &edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn triangle_count_matches_bruteforce(g in graph_strategy(18, 70)) {
        prop_assert_eq!(triangle_count(&g), count_cliques(&g, 3));
    }

    #[test]
    fn triangle_list_is_exact(g in graph_strategy(16, 60)) {
        let tl = TriangleList::build(&g);
        let mut listed = tl.vertices.clone();
        listed.sort_unstable();
        let mut brute: Vec<[u32; 3]> = vec![];
        for_each_clique(&g, 3, |c| brute.push([c[0], c[1], c[2]]));
        brute.sort_unstable();
        prop_assert_eq!(listed, brute);
    }

    #[test]
    fn supports_sum_to_three_triangles(g in graph_strategy(16, 60)) {
        let s = edge_supports(&g);
        let total: u64 = s.iter().map(|&x| x as u64).sum();
        prop_assert_eq!(total, 3 * triangle_count(&g));
        // per-edge cross-check against common-neighbor counting
        for (e, u, v) in g.edges() {
            let mut common = 0u32;
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => { common += 1; i += 1; j += 1; }
                }
            }
            prop_assert_eq!(s[e as usize], common);
        }
    }

    #[test]
    fn k4_count_matches_bruteforce(g in graph_strategy(14, 50)) {
        let tl = TriangleList::build(&g);
        prop_assert_eq!(k4_count(&g, &tl), count_cliques(&g, 4));
        // degrees sum to 4 × K4 count
        let deg_sum: u64 = k4_degrees(&g, &tl).iter().map(|&d| d as u64).sum();
        prop_assert_eq!(deg_sum, 4 * count_cliques(&g, 4));
    }

    #[test]
    fn triangle_index_lookups_are_complete(g in graph_strategy(14, 50)) {
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        prop_assert_eq!(idx.incidence_count(), 3 * tl.len());
        for (tid, (vs, es)) in tl.vertices.iter().zip(&tl.edges).enumerate() {
            let [u, v, w] = *vs;
            prop_assert_eq!(idx.tid(es[0], w), Some(tid as u32));
            prop_assert_eq!(idx.tid(es[1], v), Some(tid as u32));
            prop_assert_eq!(idx.tid(es[2], u), Some(tid as u32));
        }
        // negative lookups: a vertex not adjacent to both endpoints
        for (e, u, v) in g.edges().take(10) {
            for w in 0..g.n() as u32 {
                let is_tri = w != u && w != v && g.has_edge(u.min(w), u.max(w)) && g.has_edge(v.min(w), v.max(w));
                prop_assert_eq!(idx.tid(e, w).is_some(), is_tri);
            }
        }
    }
}
