//! Oriented triangle enumeration and per-edge support counting.

use nucleus_graph::order::degeneracy_order;
use nucleus_graph::CsrGraph;

/// Adjacency oriented by degeneracy rank: for every vertex, the
/// `(neighbor, edge_id)` pairs of neighbors with *higher* rank, sorted by
/// neighbor id. Orienting by a degeneracy order bounds out-degrees by the
/// degeneracy, which caps triangle enumeration at `O(m · degeneracy)`.
pub(crate) struct OrientedAdjacency {
    offsets: Vec<usize>,
    /// (neighbor, undirected edge id), sorted by neighbor within a vertex.
    arcs: Vec<(u32, u32)>,
}

impl OrientedAdjacency {
    pub(crate) fn build(g: &CsrGraph) -> Self {
        let (order, _) = degeneracy_order(g);
        let rank = &order.rank;
        let n = g.n();
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n as u32 {
            let rv = rank[v as usize];
            let out = g
                .neighbors(v)
                .iter()
                .filter(|&&w| rank[w as usize] > rv)
                .count();
            offsets[v as usize + 1] = out;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut arcs = vec![(0u32, 0u32); offsets[n]];
        let mut cursor = offsets.clone();
        for v in 0..n as u32 {
            let rv = rank[v as usize];
            for (w, eid) in g.arcs(v) {
                if rank[w as usize] > rv {
                    arcs[cursor[v as usize]] = (w, eid);
                    cursor[v as usize] += 1;
                }
            }
        }
        // `g.arcs` yields neighbors in sorted order, so each out-list is
        // already sorted by neighbor id.
        OrientedAdjacency { offsets, arcs }
    }

    #[inline]
    pub(crate) fn out(&self, v: u32) -> &[(u32, u32)] {
        &self.arcs[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` for every triangle whose
/// lowest-rank (orientation-wise first) vertex is `u` — the inner loop of
/// the full sweep, exposed so parallel builders can enumerate disjoint
/// vertex ranges in the exact order of the serial sweep.
#[inline]
pub(crate) fn for_each_triangle_from<F: FnMut(u32, u32, u32, u32, u32, u32)>(
    oriented: &OrientedAdjacency,
    u: u32,
    f: &mut F,
) {
    let out_u = oriented.out(u);
    for &(v, e_uv) in out_u {
        let out_v = oriented.out(v);
        // Sorted-list intersection of out(u) and out(v).
        let (mut i, mut j) = (0usize, 0usize);
        while i < out_u.len() && j < out_v.len() {
            let (a, e_uw) = out_u[i];
            let (b, e_vw) = out_v[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(u, v, a, e_uv, e_uw, e_vw);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Calls `f(u, v, w, e_uv, e_uw, e_vw)` once per triangle of `g`.
///
/// The vertex triple is *not* sorted by id (it follows the orientation);
/// the three edge ids always correspond to the pairs named in the
/// signature.
pub fn for_each_triangle<F: FnMut(u32, u32, u32, u32, u32, u32)>(g: &CsrGraph, mut f: F) {
    let oriented = OrientedAdjacency::build(g);
    for u in 0..g.n() as u32 {
        for_each_triangle_from(&oriented, u, &mut f);
    }
}

/// Number of triangles in `g`.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut c = 0u64;
    for_each_triangle(g, |_, _, _, _, _, _| c += 1);
    c
}

/// Per-edge triangle counts (the *support* peeled by the (2,3)
/// decomposition), indexed by edge id.
pub fn edge_supports(g: &CsrGraph) -> Vec<u32> {
    let mut support = vec![0u32; g.m()];
    for_each_triangle(g, |_, _, _, e1, e2, e3| {
        support[e1 as usize] += 1;
        support[e2 as usize] += 1;
        support[e3 as usize] += 1;
    });
    support
}

/// Per-vertex triangle counts (the degrees peeled by the (1,3)
/// decomposition), indexed by vertex id.
pub fn vertex_triangle_counts(g: &CsrGraph) -> Vec<u32> {
    let mut deg = vec![0u32; g.n()];
    for_each_triangle(g, |u, v, w, _, _, _| {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        deg[w as usize] += 1;
    });
    deg
}

/// Canonical record of one triangle `{a, b, c}` with edge ids `e_ab`,
/// `e_ac`, `e_bc`: returns `([u, v, w], [e_uv, e_uw, e_vw])` with the
/// vertices sorted ascending and the edge ids permuted to match.
///
/// Each vertex is paired with its *opposite* edge (the one joining the
/// other two); that pairing survives any permutation, so one 3-element
/// sort by vertex id yields both canonical arrays at once — shared by
/// the serial and parallel [`TriangleList`] builders so both emit
/// identical records from one place.
#[inline]
pub(crate) fn canonical_triangle(
    a: u32,
    b: u32,
    c: u32,
    e_ab: u32,
    e_ac: u32,
    e_bc: u32,
) -> ([u32; 3], [u32; 3]) {
    let mut p = [(a, e_bc), (b, e_ac), (c, e_ab)];
    if p[0].0 > p[1].0 {
        p.swap(0, 1);
    }
    if p[1].0 > p[2].0 {
        p.swap(1, 2);
    }
    if p[0].0 > p[1].0 {
        p.swap(0, 1);
    }
    // edges [e(u,v), e(u,w), e(v,w)] = [opposite(w), opposite(v), opposite(u)]
    ([p[0].0, p[1].0, p[2].0], [p[2].1, p[1].1, p[0].1])
}

/// Materialized triangle list: each triangle's vertices (sorted by id)
/// and edge ids, identified by a dense triangle id in enumeration order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriangleList {
    /// Vertex triples, each sorted ascending.
    pub vertices: Vec<[u32; 3]>,
    /// Edge ids `[e_uv, e_uw, e_vw]` matching the sorted vertex triple
    /// `[u, v, w]` (i.e. `[id(u,v), id(u,w), id(v,w)]`).
    pub edges: Vec<[u32; 3]>,
}

impl TriangleList {
    /// Enumerates and stores all triangles of `g`.
    pub fn build(g: &CsrGraph) -> Self {
        let mut vertices = Vec::new();
        let mut edges = Vec::new();
        for_each_triangle(g, |a, b, c, e_ab, e_ac, e_bc| {
            let (vs, es) = canonical_triangle(a, b, c, e_ab, e_ac, e_bc);
            vertices.push(vs);
            edges.push(es);
        });
        TriangleList { vertices, edges }
    }

    /// Enumerates and stores all triangles of `g` using `threads` worker
    /// threads, producing **exactly** the output of
    /// [`TriangleList::build`] — same triangles, same enumeration order,
    /// same dense ids.
    ///
    /// Two passes over the oriented adjacency: per-range triangle counts
    /// over [`crate::balanced_ranges`] (weighted by out-degree like
    /// [`crate::parallel::triangle_count_parallel`]), an exclusive
    /// prefix sum, then a scoped fill of each range's disjoint chunk in
    /// the serial sweep's vertex-major order.
    pub fn build_with_threads(g: &CsrGraph, threads: usize) -> Self {
        if threads <= 1 {
            return Self::build(g);
        }
        let oriented = OrientedAdjacency::build(g);
        let weights: Vec<usize> = (0..g.n() as u32)
            .map(|u| {
                let d = oriented.out(u).len();
                d * d + d
            })
            .collect();
        let ranges = crate::parallel::balanced_ranges(&weights, threads);
        // Pass 1: triangles per range.
        let counts: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .cloned()
                .map(|range| {
                    let oriented = &oriented;
                    scope.spawn(move || {
                        let mut c = 0usize;
                        for u in range {
                            for_each_triangle_from(oriented, u as u32, &mut |_, _, _, _, _, _| {
                                c += 1
                            });
                        }
                        c
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        // Pass 2: prefix-sum the counts into chunk sizes and fill each
        // range's slice of both arrays in enumeration order.
        let total: usize = counts.iter().sum();
        let mut vertices = vec![[0u32; 3]; total];
        let mut edges = vec![[0u32; 3]; total];
        crate::parallel::fill_ranges_pair_scoped(
            &mut vertices,
            &mut edges,
            ranges,
            &counts,
            |range, vs_chunk, es_chunk| {
                let mut pos = 0usize;
                for u in range {
                    for_each_triangle_from(
                        &oriented,
                        u as u32,
                        &mut |a, b, c, e_ab, e_ac, e_bc| {
                            let (vs, es) = canonical_triangle(a, b, c, e_ab, e_ac, e_bc);
                            vs_chunk[pos] = vs;
                            es_chunk[pos] = es;
                            pos += 1;
                        },
                    );
                }
                assert_eq!(pos, vs_chunk.len(), "count pass must match fill pass");
            },
        );
        TriangleList { vertices, edges }
    }

    /// Number of triangles.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the graph is triangle-free.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclique::count_cliques;

    fn k5() -> CsrGraph {
        let mut edges = vec![];
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(5, &edges)
    }

    #[test]
    fn k5_has_ten_triangles() {
        assert_eq!(triangle_count(&k5()), 10);
        assert_eq!(count_cliques(&k5(), 3), 10);
    }

    #[test]
    fn supports_of_diamond() {
        // 0-1-2 triangle + 1-2-3 triangle; shared edge (1,2) has support 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let s = edge_supports(&g);
        let shared = g.edge_id(1, 2).unwrap();
        assert_eq!(s[shared as usize], 2);
        let outer = g.edge_id(0, 1).unwrap();
        assert_eq!(s[outer as usize], 1);
        assert_eq!(s.iter().sum::<u32>(), 6); // 2 triangles × 3 edges
    }

    #[test]
    fn triangle_free_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(triangle_count(&g), 0);
        assert!(TriangleList::build(&g).is_empty());
        assert!(edge_supports(&g).iter().all(|&s| s == 0));
    }

    #[test]
    fn triangle_list_edges_match_vertices() {
        let g = k5();
        let tl = TriangleList::build(&g);
        assert_eq!(tl.len(), 10);
        for (vs, es) in tl.vertices.iter().zip(&tl.edges) {
            let [u, v, w] = *vs;
            assert!(u < v && v < w);
            assert_eq!(es[0], g.edge_id(u, v).unwrap());
            assert_eq!(es[1], g.edge_id(u, w).unwrap());
            assert_eq!(es[2], g.edge_id(v, w).unwrap());
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let edges: Vec<(u32, u32)> = (0..2500)
            .map(|_| (rng.gen_range(0..250u32), rng.gen_range(0..250u32)))
            .collect();
        for g in [k5(), CsrGraph::from_edges(250, &edges)] {
            let serial = TriangleList::build(&g);
            for threads in [1, 2, 4, 7] {
                assert_eq!(TriangleList::build_with_threads(&g, threads), serial);
            }
        }
        // triangle-free and empty inputs
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(TriangleList::build_with_threads(&g, 4).is_empty());
        let g = CsrGraph::from_edges(0, &[]);
        assert!(TriangleList::build_with_threads(&g, 4).is_empty());
    }

    #[test]
    fn each_triangle_reported_once() {
        let g = k5();
        let tl = TriangleList::build(&g);
        let mut seen = tl.vertices.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
    }
}
