//! Simple recursive k-clique enumeration — the brute-force reference
//! implementation used by tests and dataset statistics. Correct for any
//! `k >= 1`; intended for small/medium graphs (it carries no pivoting
//! optimizations on purpose, to stay obviously correct).

use nucleus_graph::CsrGraph;

/// Calls `f` once per k-clique of `g`; cliques are reported as strictly
/// increasing vertex slices.
pub fn for_each_clique<F: FnMut(&[u32])>(g: &CsrGraph, k: usize, mut f: F) {
    if k == 0 {
        return;
    }
    let mut current: Vec<u32> = Vec::with_capacity(k);
    let mut candidate_stack: Vec<Vec<u32>> = Vec::with_capacity(k);
    for v in 0..g.n() as u32 {
        current.push(v);
        if k == 1 {
            f(&current);
            current.pop();
            continue;
        }
        let cands: Vec<u32> = g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
        candidate_stack.push(cands);
        extend(g, k, &mut current, &mut candidate_stack, &mut f);
        candidate_stack.pop();
        current.pop();
    }
}

fn extend<F: FnMut(&[u32])>(
    g: &CsrGraph,
    k: usize,
    current: &mut Vec<u32>,
    candidate_stack: &mut Vec<Vec<u32>>,
    f: &mut F,
) {
    let cands = candidate_stack.last().expect("candidate frame").clone();
    for &w in &cands {
        current.push(w);
        if current.len() == k {
            f(current);
        } else {
            // Next candidates: current ones that are adjacent to w and larger.
            let next: Vec<u32> = cands
                .iter()
                .copied()
                .filter(|&x| x > w && g.has_edge(w.min(x), w.max(x)))
                .collect();
            if next.len() + current.len() >= k {
                candidate_stack.push(next);
                extend(g, k, current, candidate_stack, f);
                candidate_stack.pop();
            }
        }
        current.pop();
    }
}

/// Number of k-cliques in `g`.
pub fn count_cliques(g: &CsrGraph, k: usize) -> u64 {
    let mut c = 0u64;
    for_each_clique(g, k, |_| c += 1);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(7);
        for k in 1..=7 {
            assert_eq!(count_cliques(&g, k), binom(7, k as u64), "k={k}");
        }
        assert_eq!(count_cliques(&g, 8), 0);
    }

    #[test]
    fn cliques_are_sorted_and_valid() {
        let g = complete(5);
        for_each_clique(&g, 3, |c| {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    assert!(g.has_edge(c[i], c[j]));
                }
            }
        });
    }

    #[test]
    fn path_has_no_triangles() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_cliques(&g, 3), 0);
        assert_eq!(count_cliques(&g, 2), 3);
        assert_eq!(count_cliques(&g, 1), 4);
    }

    #[test]
    fn zero_k_is_empty() {
        let g = complete(3);
        assert_eq!(count_cliques(&g, 0), 0);
    }
}
