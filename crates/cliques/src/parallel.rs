//! Parallel triangle counting with `std::thread::scope` — a first step
//! toward the paper's closing future-work item ("adapting the existing
//! parallel peeling algorithms for the hierarchy computation"). The
//! clique-enumeration half of the peeling phase parallelizes trivially;
//! this module provides it without any extra dependency.

use nucleus_graph::CsrGraph;

use crate::four_cliques::{intersect3_sorted, k4_degree_of_edge};
use crate::triangle_index::TriangleIndex;
use crate::triangles::{for_each_triangle_from, OrientedAdjacency, TriangleList};

/// Splits `0..weights.len()` into at most `parts` contiguous ranges of
/// approximately equal total weight (`weights[i]` per item). The ranges
/// are disjoint, in order, and cover every index; at most one range is
/// returned for an empty input. Used to hand each worker thread a
/// comparable share of enumeration work.
pub fn balanced_ranges(weights: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let total: usize = weights.iter().sum();
    let per_part = total.div_ceil(parts).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, w) in weights.iter().enumerate() {
        // Once parts - 1 ranges are cut, everything left is the last one
        // (zero-weight tails used to overflow the cap here).
        if out.len() + 1 == parts {
            break;
        }
        acc += w;
        if acc >= per_part {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < weights.len() || out.is_empty() {
        out.push(start..weights.len());
    }
    debug_assert!(out.len() <= parts);
    out
}

/// Splits `out` into one disjoint chunk per range and runs
/// `work(range, chunk)` on a scoped worker thread per chunk.
///
/// `ranges` must be the contiguous, in-order cover of `0..n` that
/// [`balanced_ranges`] produces, and `chunk_len(&range)` must give each
/// range's share of `out` (the shares must tile `out` front to back).
/// This keeps the `split_at_mut` cursor arithmetic every parallel fill
/// needs in one audited place.
pub fn fill_ranges_scoped<T, L, W>(
    out: &mut [T],
    ranges: Vec<std::ops::Range<usize>>,
    chunk_len: L,
    work: W,
) where
    T: Send,
    L: Fn(&std::ops::Range<usize>) -> usize,
    W: Fn(std::ops::Range<usize>, &mut [T]) + Sync,
{
    std::thread::scope(|scope| {
        let mut rest: &mut [T] = out;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(chunk_len(&range));
            rest = tail;
            let work = &work;
            scope.spawn(move || work(range, chunk));
        }
    });
}

/// [`fill_ranges_scoped`] over **two** output buffers filled in
/// lockstep: splits `out_a` and `out_b` into one disjoint chunk pair per
/// range (`chunk_lens[i]` elements each, so the chunks must tile both
/// buffers front to back) and runs `work(range, chunk_a, chunk_b)` on a
/// scoped worker thread per pair. Used by builders that emit two
/// parallel arrays per item, like [`TriangleList::build_with_threads`].
pub fn fill_ranges_pair_scoped<A, B, W>(
    out_a: &mut [A],
    out_b: &mut [B],
    ranges: Vec<std::ops::Range<usize>>,
    chunk_lens: &[usize],
    work: W,
) where
    A: Send,
    B: Send,
    W: Fn(std::ops::Range<usize>, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(ranges.len(), chunk_lens.len(), "one chunk size per range");
    std::thread::scope(|scope| {
        let mut rest_a: &mut [A] = out_a;
        let mut rest_b: &mut [B] = out_b;
        for (range, &len) in ranges.into_iter().zip(chunk_lens) {
            let (chunk_a, tail_a) = rest_a.split_at_mut(len);
            let (chunk_b, tail_b) = rest_b.split_at_mut(len);
            rest_a = tail_a;
            rest_b = tail_b;
            let work = &work;
            scope.spawn(move || work(range, chunk_a, chunk_b));
        }
    });
}

/// Counts triangles using `threads` worker threads.
pub fn triangle_count_parallel(g: &CsrGraph, threads: usize) -> u64 {
    let oriented = OrientedAdjacency::build(g);
    let weights: Vec<usize> = (0..g.n() as u32)
        // enumeration cost at u is ~ Σ_{v ∈ out(u)} (|out(u)| + |out(v)|);
        // |out(u)|² is a serviceable proxy
        .map(|u| {
            let d = oriented.out(u).len();
            d * d + d
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let oriented = &oriented;
            handles.push(scope.spawn(move || {
                let mut count = 0u64;
                for u in range {
                    for_each_triangle_from(oriented, u as u32, &mut |_, _, _, _, _, _| count += 1);
                }
                count
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

/// Computes per-edge triangle supports using `threads` worker threads.
/// Each worker accumulates into a private array; partials are summed at
/// the end (no atomics on the hot path).
pub fn edge_supports_parallel(g: &CsrGraph, threads: usize) -> Vec<u32> {
    let oriented = OrientedAdjacency::build(g);
    let weights: Vec<usize> = (0..g.n() as u32)
        .map(|u| {
            let d = oriented.out(u).len();
            d * d + d
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    let m = g.m();
    let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let oriented = &oriented;
            handles.push(scope.spawn(move || {
                let mut support = vec![0u32; m];
                for u in range {
                    let out_u = oriented.out(u as u32);
                    for &(v, e_uv) in out_u {
                        let out_v = oriented.out(v);
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < out_u.len() && j < out_v.len() {
                            match out_u[i].0.cmp(&out_v[j].0) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    support[e_uv as usize] += 1;
                                    support[out_u[i].1 as usize] += 1;
                                    support[out_v[j].1 as usize] += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                support
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = vec![0u32; m];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

/// Computes per-triangle K4 degrees using `threads` worker threads —
/// the parallel twin of [`crate::four_cliques::k4_degrees`], behind the
/// same thread-count knob as [`triangle_count_parallel`]. Triangles are
/// independent, so each worker fills a disjoint slice of the output;
/// ranges are balanced by the triangles' total endpoint degree (the
/// three-way intersection cost).
pub fn k4_degrees_parallel(g: &CsrGraph, tris: &TriangleList, threads: usize) -> Vec<u32> {
    let n = tris.len();
    let mut deg = vec![0u32; n];
    let weights: Vec<usize> = tris
        .vertices
        .iter()
        .map(|&[u, v, w]| g.degree(u) + g.degree(v) + g.degree(w) + 1)
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    fill_ranges_scoped(
        &mut deg,
        ranges,
        |range| range.len(),
        |range, chunk| {
            for (slot, &[u, v, w]) in chunk.iter_mut().zip(&tris.vertices[range]) {
                let mut c = 0u32;
                intersect3_sorted(g.neighbors(u), g.neighbors(v), g.neighbors(w), |_| c += 1);
                *slot = c;
            }
        },
    );
    deg
}

/// Computes per-vertex triangle counts using `threads` worker threads —
/// the parallel twin of [`crate::triangles::vertex_triangle_counts`].
/// Same private-partials-then-sum scheme as [`edge_supports_parallel`].
pub fn vertex_triangle_counts_parallel(g: &CsrGraph, threads: usize) -> Vec<u32> {
    let oriented = OrientedAdjacency::build(g);
    let weights: Vec<usize> = (0..g.n() as u32)
        .map(|u| {
            let d = oriented.out(u).len();
            d * d + d
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    let n = g.n();
    let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let oriented = &oriented;
                scope.spawn(move || {
                    let mut deg = vec![0u32; n];
                    for u in range {
                        for_each_triangle_from(oriented, u as u32, &mut |a, b, c, _, _, _| {
                            deg[a as usize] += 1;
                            deg[b as usize] += 1;
                            deg[c as usize] += 1;
                        });
                    }
                    deg
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = vec![0u32; n];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

/// Computes per-edge K4 degrees using `threads` worker threads — the
/// parallel twin of [`crate::four_cliques::k4_edge_degrees`]. Edges are
/// independent given the [`TriangleIndex`], so each worker fills a
/// disjoint slice; ranges are balanced by the quadratic pair-scan cost
/// over each edge's third-vertex list.
pub fn k4_edge_degrees_parallel(g: &CsrGraph, index: &TriangleIndex, threads: usize) -> Vec<u32> {
    let m = g.m();
    let mut deg = vec![0u32; m];
    let weights: Vec<usize> = (0..m as u32)
        .map(|e| {
            let t = index.thirds(e).len();
            t * t + 1
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    fill_ranges_scoped(
        &mut deg,
        ranges,
        |range| range.len(),
        |range, chunk| {
            for (slot, e) in chunk.iter_mut().zip(range) {
                *slot = k4_degree_of_edge(g, index.thirds(e as u32));
            }
        },
    );
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::four_cliques::{k4_degrees, k4_edge_degrees};
    use crate::triangles::{edge_supports, triangle_count, vertex_triangle_counts};

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn matches_serial_on_clique() {
        let g = complete(20);
        for threads in [1, 2, 4, 7] {
            assert_eq!(triangle_count_parallel(&g, threads), triangle_count(&g));
            assert_eq!(edge_supports_parallel(&g, threads), edge_supports(&g));
        }
    }

    #[test]
    fn matches_serial_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let edges: Vec<(u32, u32)> = (0..2000)
            .map(|_| (rng.gen_range(0..300u32), rng.gen_range(0..300u32)))
            .collect();
        let g = CsrGraph::from_edges(300, &edges);
        assert_eq!(triangle_count_parallel(&g, 4), triangle_count(&g));
        assert_eq!(edge_supports_parallel(&g, 4), edge_supports(&g));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(triangle_count_parallel(&g, 4), 0);
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(triangle_count_parallel(&g, 4), 0);
        assert_eq!(edge_supports_parallel(&g, 4), vec![0]);
    }

    /// Asserts the ranges are disjoint, ordered, cover `len` items, and
    /// respect the `parts` cap.
    fn check_cover(ranges: &[std::ops::Range<usize>], len: usize, parts: usize) {
        assert!(ranges.len() <= parts.max(1), "{ranges:?} exceeds {parts}");
        let mut covered = vec![false; len];
        for r in ranges {
            for i in r.clone() {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "gap in {ranges:?}");
    }

    #[test]
    fn balanced_ranges_cover_everything() {
        let w = vec![5, 1, 1, 1, 10, 1, 1];
        for parts in 1..=8 {
            check_cover(&balanced_ranges(&w, parts), w.len(), parts);
        }
        // degenerate cases
        assert_eq!(balanced_ranges(&[], 3).len(), 1);
        assert_eq!(balanced_ranges(&[1], 1), vec![0..1]);
    }

    #[test]
    fn balanced_ranges_never_exceed_parts() {
        // A zero-weight tail used to produce parts + 1 ranges: the loop
        // consumed all the weight early and the leftover indices became
        // an extra range.
        let ranges = balanced_ranges(&[1, 0], 1);
        assert_eq!(ranges, vec![0..2]);
        let ranges = balanced_ranges(&[3, 3, 0, 0, 0], 2);
        check_cover(&ranges, 5, 2);
        // heavy head + zero tail at several part counts
        let w = vec![9, 9, 9, 0, 0, 0, 0];
        for parts in 1..=10 {
            check_cover(&balanced_ranges(&w, parts), w.len(), parts);
        }
    }

    #[test]
    fn balanced_ranges_all_zero_weights() {
        let w = vec![0usize; 6];
        for parts in [1, 2, 3, 7] {
            let ranges = balanced_ranges(&w, parts);
            check_cover(&ranges, w.len(), parts);
        }
    }

    #[test]
    fn balanced_ranges_more_parts_than_items() {
        let w = vec![2, 1];
        for parts in [3, 5, 100] {
            let ranges = balanced_ranges(&w, parts);
            check_cover(&ranges, w.len(), parts);
            // no empty ranges are handed to workers
            assert!(ranges.iter().all(|r| !r.is_empty()), "{ranges:?}");
        }
        // parts = 0 is clamped to 1
        assert_eq!(balanced_ranges(&w, 0), vec![0..2]);
    }

    #[test]
    fn vertex_triangle_counts_parallel_matches_serial() {
        let g = complete(15);
        let serial = vertex_triangle_counts(&g);
        for threads in [1, 2, 4, 7] {
            assert_eq!(vertex_triangle_counts_parallel(&g, threads), serial);
        }

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let edges: Vec<(u32, u32)> = (0..2000)
            .map(|_| (rng.gen_range(0..300u32), rng.gen_range(0..300u32)))
            .collect();
        let g = CsrGraph::from_edges(300, &edges);
        let serial = vertex_triangle_counts(&g);
        for threads in [2, 3, 8] {
            assert_eq!(vertex_triangle_counts_parallel(&g, threads), serial);
        }

        let g = CsrGraph::from_edges(0, &[]);
        assert!(vertex_triangle_counts_parallel(&g, 4).is_empty());
    }

    #[test]
    fn k4_edge_degrees_parallel_matches_serial() {
        let g = complete(12);
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let serial = k4_edge_degrees(&g, &idx);
        for threads in [1, 2, 4, 7] {
            assert_eq!(k4_edge_degrees_parallel(&g, &idx, threads), serial);
        }

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        let edges: Vec<(u32, u32)> = (0..1500)
            .map(|_| (rng.gen_range(0..160u32), rng.gen_range(0..160u32)))
            .collect();
        let g = CsrGraph::from_edges(160, &edges);
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let serial = k4_edge_degrees(&g, &idx);
        for threads in [2, 3, 8] {
            assert_eq!(k4_edge_degrees_parallel(&g, &idx, threads), serial);
        }
    }

    #[test]
    fn k4_degrees_parallel_matches_serial() {
        let g = complete(12);
        let tl = TriangleList::build(&g);
        let serial = k4_degrees(&g, &tl);
        for threads in [1, 2, 4, 7] {
            assert_eq!(k4_degrees_parallel(&g, &tl, threads), serial);
        }

        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let edges: Vec<(u32, u32)> = (0..1500)
            .map(|_| (rng.gen_range(0..160u32), rng.gen_range(0..160u32)))
            .collect();
        let g = CsrGraph::from_edges(160, &edges);
        let tl = TriangleList::build(&g);
        let serial = k4_degrees(&g, &tl);
        for threads in [1, 3, 8] {
            assert_eq!(k4_degrees_parallel(&g, &tl, threads), serial);
        }

        // no triangles at all
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let tl = TriangleList::build(&g);
        assert_eq!(k4_degrees_parallel(&g, &tl, 4), Vec::<u32>::new());
    }
}
