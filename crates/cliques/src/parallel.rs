//! Parallel triangle counting with `std::thread::scope` — a first step
//! toward the paper's closing future-work item ("adapting the existing
//! parallel peeling algorithms for the hierarchy computation"). The
//! clique-enumeration half of the peeling phase parallelizes trivially;
//! this module provides it without any extra dependency.

use nucleus_graph::CsrGraph;

use crate::triangles::OrientedAdjacency;

/// Splits `0..n` into `parts` ranges with approximately equal total
/// weight (`weight[i]` per item). Returns range boundaries.
fn balanced_ranges(weights: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let total: usize = weights.iter().sum();
    let per_part = total.div_ceil(parts.max(1)).max(1);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if acc >= per_part {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < weights.len() {
        out.push(start..weights.len());
    }
    if out.is_empty() {
        out.push(0..weights.len());
    }
    out
}

/// Counts triangles using `threads` worker threads.
pub fn triangle_count_parallel(g: &CsrGraph, threads: usize) -> u64 {
    let oriented = OrientedAdjacency::build(g);
    let weights: Vec<usize> = (0..g.n() as u32)
        // enumeration cost at u is ~ Σ_{v ∈ out(u)} (|out(u)| + |out(v)|);
        // |out(u)|² is a serviceable proxy
        .map(|u| {
            let d = oriented.out(u).len();
            d * d + d
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let oriented = &oriented;
            handles.push(scope.spawn(move || {
                let mut count = 0u64;
                for u in range {
                    let out_u = oriented.out(u as u32);
                    for &(v, _) in out_u {
                        let out_v = oriented.out(v);
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < out_u.len() && j < out_v.len() {
                            match out_u[i].0.cmp(&out_v[j].0) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    count += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                count
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

/// Computes per-edge triangle supports using `threads` worker threads.
/// Each worker accumulates into a private array; partials are summed at
/// the end (no atomics on the hot path).
pub fn edge_supports_parallel(g: &CsrGraph, threads: usize) -> Vec<u32> {
    let oriented = OrientedAdjacency::build(g);
    let weights: Vec<usize> = (0..g.n() as u32)
        .map(|u| {
            let d = oriented.out(u).len();
            d * d + d
        })
        .collect();
    let ranges = balanced_ranges(&weights, threads);
    let m = g.m();
    let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            let oriented = &oriented;
            handles.push(scope.spawn(move || {
                let mut support = vec![0u32; m];
                for u in range {
                    let out_u = oriented.out(u as u32);
                    for &(v, e_uv) in out_u {
                        let out_v = oriented.out(v);
                        let (mut i, mut j) = (0usize, 0usize);
                        while i < out_u.len() && j < out_v.len() {
                            match out_u[i].0.cmp(&out_v[j].0) {
                                std::cmp::Ordering::Less => i += 1,
                                std::cmp::Ordering::Greater => j += 1,
                                std::cmp::Ordering::Equal => {
                                    support[e_uv as usize] += 1;
                                    support[out_u[i].1 as usize] += 1;
                                    support[out_v[j].1 as usize] += 1;
                                    i += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                }
                support
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut total = vec![0u32; m];
    for partial in partials {
        for (t, p) in total.iter_mut().zip(partial) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::{edge_supports, triangle_count};

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn matches_serial_on_clique() {
        let g = complete(20);
        for threads in [1, 2, 4, 7] {
            assert_eq!(triangle_count_parallel(&g, threads), triangle_count(&g));
            assert_eq!(edge_supports_parallel(&g, threads), edge_supports(&g));
        }
    }

    #[test]
    fn matches_serial_on_random_graph() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let edges: Vec<(u32, u32)> = (0..2000)
            .map(|_| (rng.gen_range(0..300u32), rng.gen_range(0..300u32)))
            .collect();
        let g = CsrGraph::from_edges(300, &edges);
        assert_eq!(triangle_count_parallel(&g, 4), triangle_count(&g));
        assert_eq!(edge_supports_parallel(&g, 4), edge_supports(&g));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(triangle_count_parallel(&g, 4), 0);
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(triangle_count_parallel(&g, 4), 0);
        assert_eq!(edge_supports_parallel(&g, 4), vec![0]);
    }

    #[test]
    fn balanced_ranges_cover_everything() {
        let w = vec![5, 1, 1, 1, 10, 1, 1];
        let ranges = balanced_ranges(&w, 3);
        let mut covered = vec![false; w.len()];
        for r in &ranges {
            for i in r.clone() {
                assert!(!covered[i], "overlap at {i}");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // degenerate cases
        assert_eq!(balanced_ranges(&[], 3).len(), 1);
        assert_eq!(balanced_ranges(&[1], 1), vec![0..1]);
    }
}
