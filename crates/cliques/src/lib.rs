#![warn(missing_docs)]

//! Triangle and small-clique enumeration substrate.
//!
//! The (2,3)- and (3,4)-nucleus decompositions peel edges by triangle
//! count and triangles by four-clique count respectively, so this crate
//! provides:
//!
//! * [`triangles`] — oriented triangle enumeration (degeneracy-ordered,
//!   the standard `O(m · degeneracy)` scheme), per-edge support counts,
//!   and a materialized [`TriangleList`];
//! * [`triangle_index`] — [`TriangleIndex`], a per-edge CSR of
//!   `(third-vertex, triangle-id)` pairs enabling `O(log deg)` triangle
//!   id lookups without hash maps (hot-path requirement, see DESIGN.md);
//! * [`four_cliques`] — per-triangle K4 degrees (the ω₄ values peeled by
//!   the (3,4) decomposition);
//! * [`kclique`] — a simple recursive k-clique enumerator used as the
//!   brute-force reference in tests and for Table 3 statistics;
//! * [`parallel`] — scoped-thread parallel twins for every counting and
//!   enumeration pass (triangle counts, edge supports, vertex triangle
//!   counts, per-triangle and per-edge K4 degrees), plus the
//!   [`balanced_ranges`] work partitioner and the
//!   [`fill_ranges_scoped`]/[`fill_ranges_pair_scoped`] disjoint-chunk
//!   fill helpers they (and the materialized peeling backend in
//!   `nucleus-core`) share. The materializing builders have parallel
//!   constructors of their own ([`TriangleList::build_with_threads`],
//!   [`TriangleIndex::build_with_threads`]) that are **bit-identical**
//!   to their serial counterparts at any thread count.

pub mod four_cliques;
pub mod kclique;
pub mod parallel;
pub mod triangle_index;
pub mod triangles;

pub use four_cliques::k4_edge_degrees;
pub use parallel::{
    balanced_ranges, fill_ranges_pair_scoped, fill_ranges_scoped, k4_degrees_parallel,
    k4_edge_degrees_parallel, vertex_triangle_counts_parallel,
};
pub use triangle_index::TriangleIndex;
pub use triangles::{vertex_triangle_counts, TriangleList};
