//! Per-edge triangle index: hash-free triangle-id lookups.

use nucleus_graph::CsrGraph;

use crate::triangles::TriangleList;

/// For every edge `e = {u, v}`, the sorted list of `(w, tid)` pairs such
/// that `{u, v, w}` is the triangle with id `tid`.
///
/// This replaces a `HashMap<(u32,u32,u32), u32>` on the (3,4) peeling hot
/// path: a triangle id is found with one binary search in the third-vertex
/// list of any of its edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriangleIndex {
    offsets: Vec<usize>,
    /// `(third vertex, triangle id)`, sorted by third vertex per edge.
    entries: Vec<(u32, u32)>,
}

impl TriangleIndex {
    /// Builds the index for `g` from its materialized triangle list.
    pub fn build(g: &CsrGraph, tris: &TriangleList) -> Self {
        let m = g.m();
        let mut counts = vec![0usize; m + 1];
        for es in &tris.edges {
            for &e in es {
                counts[e as usize + 1] += 1;
            }
        }
        for i in 1..=m {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut entries = vec![(0u32, 0u32); offsets[m]];
        let mut cursor = offsets.clone();
        for (tid, (vs, es)) in tris.vertices.iter().zip(&tris.edges).enumerate() {
            let [u, v, w] = *vs;
            let thirds = [w, v, u]; // third vertex for edges (u,v), (u,w), (v,w)
            for (&e, &third) in es.iter().zip(&thirds) {
                entries[cursor[e as usize]] = (third, tid as u32);
                cursor[e as usize] += 1;
            }
        }
        for e in 0..m {
            entries[offsets[e]..offsets[e + 1]].sort_unstable();
        }
        TriangleIndex { offsets, entries }
    }

    /// Builds the index using `threads` worker threads, producing
    /// **exactly** the output of [`TriangleIndex::build`].
    ///
    /// Three passes: (1) per-worker per-edge incidence counts over
    /// balanced triangle ranges, summed then prefix-summed into the CSR
    /// offsets; (2) a relaxed-atomic scatter of `third << 32 | tid`
    /// words into each edge's slot range (per-edge cursors are
    /// `AtomicUsize`, so workers write disjoint cells in arbitrary
    /// order); (3) a per-edge-range sort-and-unpack. The per-edge sort
    /// canonicalizes whatever interleaving the scatter produced: the
    /// packed `u64` order equals `(third, tid)` tuple order, and each
    /// third vertex appears at most once per edge, so the sorted result
    /// is the serial builder's sorted result bit for bit.
    pub fn build_with_threads(g: &CsrGraph, tris: &TriangleList, threads: usize) -> Self {
        if threads <= 1 {
            return Self::build(g, tris);
        }
        use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
        let m = g.m();
        let t = tris.len();
        let tri_ranges = crate::parallel::balanced_ranges(&vec![1usize; t], threads);
        // Pass 1: per-edge incidence counts (3 per triangle).
        let partials: Vec<Vec<u32>> = std::thread::scope(|scope| {
            let handles: Vec<_> = tri_ranges
                .iter()
                .cloned()
                .map(|range| {
                    scope.spawn(move || {
                        let mut counts = vec![0u32; m];
                        for es in &tris.edges[range] {
                            for &e in es {
                                counts[e as usize] += 1;
                            }
                        }
                        counts
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut offsets = vec![0usize; m + 1];
        for partial in partials {
            for (o, p) in offsets[1..].iter_mut().zip(partial) {
                *o += p as usize;
            }
        }
        for i in 1..=m {
            offsets[i] += offsets[i - 1];
        }
        // Pass 2: scatter packed (third, tid) words into slot ranges.
        let total = offsets[m];
        let cursor: Vec<AtomicUsize> = offsets[..m].iter().map(|&o| AtomicUsize::new(o)).collect();
        let packed: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for range in tri_ranges {
                let (cursor, packed) = (&cursor, &packed);
                scope.spawn(move || {
                    let base = range.start;
                    for (i, (vs, es)) in tris.vertices[range.clone()]
                        .iter()
                        .zip(&tris.edges[range])
                        .enumerate()
                    {
                        let tid = (base + i) as u32;
                        let [u, v, w] = *vs;
                        let thirds = [w, v, u]; // per edge (u,v), (u,w), (v,w)
                        for (&e, &third) in es.iter().zip(&thirds) {
                            let slot = cursor[e as usize].fetch_add(1, Ordering::Relaxed);
                            packed[slot]
                                .store((third as u64) << 32 | tid as u64, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let mut packed: Vec<u64> = packed.into_iter().map(|a| a.into_inner()).collect();
        // Pass 3: per-edge sort + unpack, over balanced edge ranges.
        let mut entries = vec![(0u32, 0u32); total];
        let weights: Vec<usize> = (0..m).map(|e| offsets[e + 1] - offsets[e] + 1).collect();
        let edge_ranges = crate::parallel::balanced_ranges(&weights, threads);
        let chunk_lens: Vec<usize> = edge_ranges
            .iter()
            .map(|r| offsets[r.end] - offsets[r.start])
            .collect();
        crate::parallel::fill_ranges_pair_scoped(
            &mut packed,
            &mut entries,
            edge_ranges,
            &chunk_lens,
            |range, pchunk, echunk| {
                let base = offsets[range.start];
                for e in range {
                    let (s, t) = (offsets[e] - base, offsets[e + 1] - base);
                    pchunk[s..t].sort_unstable();
                    for (slot, &p) in echunk[s..t].iter_mut().zip(&pchunk[s..t]) {
                        *slot = ((p >> 32) as u32, p as u32);
                    }
                }
            },
        );
        TriangleIndex { offsets, entries }
    }

    /// `(third vertex, triangle id)` pairs of edge `e`, sorted by vertex.
    #[inline]
    pub fn thirds(&self, e: u32) -> &[(u32, u32)] {
        &self.entries[self.offsets[e as usize]..self.offsets[e as usize + 1]]
    }

    /// Id of the triangle formed by edge `e` and vertex `w`, if any.
    #[inline]
    pub fn tid(&self, e: u32, w: u32) -> Option<u32> {
        let slice = self.thirds(e);
        slice
            .binary_search_by_key(&w, |&(third, _)| third)
            .ok()
            .map(|i| slice[i].1)
    }

    /// Total number of (edge, triangle) incidences (= 3 × #triangles).
    pub fn incidence_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn lookups_match_list() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        assert_eq!(idx.incidence_count(), 3 * tl.len());
        for (tid, (vs, es)) in tl.vertices.iter().zip(&tl.edges).enumerate() {
            let [u, v, w] = *vs;
            assert_eq!(idx.tid(es[0], w), Some(tid as u32));
            assert_eq!(idx.tid(es[1], v), Some(tid as u32));
            assert_eq!(idx.tid(es[2], u), Some(tid as u32));
        }
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let edges: Vec<(u32, u32)> = (0..2500)
            .map(|_| (rng.gen_range(0..250u32), rng.gen_range(0..250u32)))
            .collect();
        let mut k5 = vec![];
        for u in 0..5u32 {
            for v in u + 1..5 {
                k5.push((u, v));
            }
        }
        for g in [
            diamond(),
            CsrGraph::from_edges(5, &k5),
            CsrGraph::from_edges(250, &edges),
        ] {
            let tl = TriangleList::build(&g);
            let serial = TriangleIndex::build(&g, &tl);
            for threads in [1, 2, 4, 7] {
                assert_eq!(TriangleIndex::build_with_threads(&g, &tl, threads), serial);
            }
        }
        // triangle-free graph: all edges have empty third lists
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build_with_threads(&g, &tl, 4);
        assert_eq!(idx.incidence_count(), 0);
        assert_eq!(idx, TriangleIndex::build(&g, &tl));
    }

    #[test]
    fn absent_triangles_return_none() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let e03 = g.edge_id(0, 1).unwrap();
        assert_eq!(idx.tid(e03, 3), None); // {0,1,3} is not a triangle
    }

    #[test]
    fn shared_edge_lists_both_triangles() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let shared = g.edge_id(1, 2).unwrap();
        let thirds: Vec<u32> = idx.thirds(shared).iter().map(|&(w, _)| w).collect();
        assert_eq!(thirds, vec![0, 3]);
    }
}
