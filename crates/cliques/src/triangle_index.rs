//! Per-edge triangle index: hash-free triangle-id lookups.

use nucleus_graph::CsrGraph;

use crate::triangles::TriangleList;

/// For every edge `e = {u, v}`, the sorted list of `(w, tid)` pairs such
/// that `{u, v, w}` is the triangle with id `tid`.
///
/// This replaces a `HashMap<(u32,u32,u32), u32>` on the (3,4) peeling hot
/// path: a triangle id is found with one binary search in the third-vertex
/// list of any of its edges.
#[derive(Clone, Debug)]
pub struct TriangleIndex {
    offsets: Vec<usize>,
    /// `(third vertex, triangle id)`, sorted by third vertex per edge.
    entries: Vec<(u32, u32)>,
}

impl TriangleIndex {
    /// Builds the index for `g` from its materialized triangle list.
    pub fn build(g: &CsrGraph, tris: &TriangleList) -> Self {
        let m = g.m();
        let mut counts = vec![0usize; m + 1];
        for es in &tris.edges {
            for &e in es {
                counts[e as usize + 1] += 1;
            }
        }
        for i in 1..=m {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut entries = vec![(0u32, 0u32); offsets[m]];
        let mut cursor = offsets.clone();
        for (tid, (vs, es)) in tris.vertices.iter().zip(&tris.edges).enumerate() {
            let [u, v, w] = *vs;
            let thirds = [w, v, u]; // third vertex for edges (u,v), (u,w), (v,w)
            for (&e, &third) in es.iter().zip(&thirds) {
                entries[cursor[e as usize]] = (third, tid as u32);
                cursor[e as usize] += 1;
            }
        }
        for e in 0..m {
            entries[offsets[e]..offsets[e + 1]].sort_unstable();
        }
        TriangleIndex { offsets, entries }
    }

    /// `(third vertex, triangle id)` pairs of edge `e`, sorted by vertex.
    #[inline]
    pub fn thirds(&self, e: u32) -> &[(u32, u32)] {
        &self.entries[self.offsets[e as usize]..self.offsets[e as usize + 1]]
    }

    /// Id of the triangle formed by edge `e` and vertex `w`, if any.
    #[inline]
    pub fn tid(&self, e: u32, w: u32) -> Option<u32> {
        let slice = self.thirds(e);
        slice
            .binary_search_by_key(&w, |&(third, _)| third)
            .ok()
            .map(|i| slice[i].1)
    }

    /// Total number of (edge, triangle) incidences (= 3 × #triangles).
    pub fn incidence_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn lookups_match_list() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        assert_eq!(idx.incidence_count(), 3 * tl.len());
        for (tid, (vs, es)) in tl.vertices.iter().zip(&tl.edges).enumerate() {
            let [u, v, w] = *vs;
            assert_eq!(idx.tid(es[0], w), Some(tid as u32));
            assert_eq!(idx.tid(es[1], v), Some(tid as u32));
            assert_eq!(idx.tid(es[2], u), Some(tid as u32));
        }
    }

    #[test]
    fn absent_triangles_return_none() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let e03 = g.edge_id(0, 1).unwrap();
        assert_eq!(idx.tid(e03, 3), None); // {0,1,3} is not a triangle
    }

    #[test]
    fn shared_edge_lists_both_triangles() {
        let g = diamond();
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        let shared = g.edge_id(1, 2).unwrap();
        let thirds: Vec<u32> = idx.thirds(shared).iter().map(|&(w, _)| w).collect();
        assert_eq!(thirds, vec![0, 3]);
    }
}
