//! Four-clique (K4) counting per triangle — the ω₄ degrees peeled by the
//! (3,4)-nucleus decomposition.

use nucleus_graph::CsrGraph;

use crate::triangles::TriangleList;

/// Intersects three sorted slices, calling `f` for every common element.
#[inline]
pub fn intersect3_sorted<F: FnMut(u32)>(a: &[u32], b: &[u32], c: &[u32], mut f: F) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() && k < c.len() {
        let (x, y, z) = (a[i], b[j], c[k]);
        let max = x.max(y).max(z);
        if x == y && y == z {
            f(x);
            i += 1;
            j += 1;
            k += 1;
        } else {
            if x < max {
                i += 1;
            }
            if y < max {
                j += 1;
            }
            if z < max {
                k += 1;
            }
        }
    }
}

/// Number of K4s containing each triangle of `tris`
/// (`ω₄(t) = |N(u) ∩ N(v) ∩ N(w)|` for `t = {u, v, w}`).
pub fn k4_degrees(g: &CsrGraph, tris: &TriangleList) -> Vec<u32> {
    let mut deg = vec![0u32; tris.len()];
    for (t, &[u, v, w]) in tris.vertices.iter().enumerate() {
        let mut c = 0u32;
        intersect3_sorted(g.neighbors(u), g.neighbors(v), g.neighbors(w), |_| c += 1);
        deg[t] = c;
    }
    deg
}

/// Total number of K4s in `g` (each K4 contains 4 triangles).
pub fn k4_count(g: &CsrGraph, tris: &TriangleList) -> u64 {
    let total: u64 = k4_degrees(g, tris).iter().map(|&d| d as u64).sum();
    debug_assert_eq!(total % 4, 0);
    total / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclique::count_cliques;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn k4_count_of_k5() {
        let g = complete(5);
        let tl = TriangleList::build(&g);
        assert_eq!(k4_count(&g, &tl), 5); // C(5,4)
        assert_eq!(count_cliques(&g, 4), 5);
        // every triangle of K5 is in exactly 2 K4s
        assert!(k4_degrees(&g, &tl).iter().all(|&d| d == 2));
    }

    #[test]
    fn k4_free_graph() {
        // diamond has triangles but no K4
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let tl = TriangleList::build(&g);
        assert_eq!(k4_count(&g, &tl), 0);
        assert!(k4_degrees(&g, &tl).iter().all(|&d| d == 0));
    }

    #[test]
    fn intersect3_basics() {
        let mut out = vec![];
        intersect3_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8], &[3, 4, 5, 9], |x| out.push(x));
        assert_eq!(out, vec![3, 5]);
        out.clear();
        intersect3_sorted(&[], &[1], &[1], |x| out.push(x));
        assert!(out.is_empty());
    }
}
