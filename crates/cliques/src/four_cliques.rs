//! Four-clique (K4) counting per triangle — the ω₄ degrees peeled by the
//! (3,4)-nucleus decomposition — and per edge (the (2,4) family).

use nucleus_graph::CsrGraph;

use crate::triangle_index::TriangleIndex;
use crate::triangles::TriangleList;

/// Intersects three sorted slices, calling `f` for every common element.
#[inline]
pub fn intersect3_sorted<F: FnMut(u32)>(a: &[u32], b: &[u32], c: &[u32], mut f: F) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() && k < c.len() {
        let (x, y, z) = (a[i], b[j], c[k]);
        let max = x.max(y).max(z);
        if x == y && y == z {
            f(x);
            i += 1;
            j += 1;
            k += 1;
        } else {
            if x < max {
                i += 1;
            }
            if y < max {
                j += 1;
            }
            if z < max {
                k += 1;
            }
        }
    }
}

/// Number of K4s containing each triangle of `tris`
/// (`ω₄(t) = |N(u) ∩ N(v) ∩ N(w)|` for `t = {u, v, w}`).
pub fn k4_degrees(g: &CsrGraph, tris: &TriangleList) -> Vec<u32> {
    let mut deg = vec![0u32; tris.len()];
    for (t, &[u, v, w]) in tris.vertices.iter().enumerate() {
        let mut c = 0u32;
        intersect3_sorted(g.neighbors(u), g.neighbors(v), g.neighbors(w), |_| c += 1);
        deg[t] = c;
    }
    deg
}

/// Number of K4s containing one edge `e = {u, v}`, given the sorted
/// `(third, tid)` list of triangles over `e`: every K4 through `e` is a
/// pair of thirds `{w, x}` that is itself an edge of `g`.
#[inline]
pub fn k4_degree_of_edge(g: &CsrGraph, thirds: &[(u32, u32)]) -> u32 {
    let mut c = 0u32;
    for (i, &(w, _)) in thirds.iter().enumerate() {
        for &(x, _) in &thirds[i + 1..] {
            if g.edge_id(w, x).is_some() {
                c += 1;
            }
        }
    }
    c
}

/// Number of K4s containing each *edge* of `g` (the ω₄ degrees peeled by
/// the (2,4)-nucleus decomposition), indexed by edge id.
pub fn k4_edge_degrees(g: &CsrGraph, index: &TriangleIndex) -> Vec<u32> {
    let m = g.m();
    let mut deg = vec![0u32; m];
    for e in 0..m as u32 {
        deg[e as usize] = k4_degree_of_edge(g, index.thirds(e));
    }
    deg
}

/// Total number of K4s in `g` (each K4 contains 4 triangles).
pub fn k4_count(g: &CsrGraph, tris: &TriangleList) -> u64 {
    let total: u64 = k4_degrees(g, tris).iter().map(|&d| d as u64).sum();
    debug_assert_eq!(total % 4, 0);
    total / 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kclique::count_cliques;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = vec![];
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn k4_count_of_k5() {
        let g = complete(5);
        let tl = TriangleList::build(&g);
        assert_eq!(k4_count(&g, &tl), 5); // C(5,4)
        assert_eq!(count_cliques(&g, 4), 5);
        // every triangle of K5 is in exactly 2 K4s
        assert!(k4_degrees(&g, &tl).iter().all(|&d| d == 2));
    }

    #[test]
    fn k4_free_graph() {
        // diamond has triangles but no K4
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let tl = TriangleList::build(&g);
        assert_eq!(k4_count(&g, &tl), 0);
        assert!(k4_degrees(&g, &tl).iter().all(|&d| d == 0));
    }

    #[test]
    fn k4_edge_degrees_of_k5_and_diamond() {
        let g = complete(5);
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        // every edge of K5 is in exactly C(3,2) = 3 K4s
        assert!(k4_edge_degrees(&g, &idx).iter().all(|&d| d == 3));
        // consistency: Σ_e ω₄(e) = 6 × #K4 (each K4 has 6 edges)
        let sum: u64 = k4_edge_degrees(&g, &idx).iter().map(|&d| d as u64).sum();
        assert_eq!(sum, 6 * k4_count(&g, &tl));

        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let tl = TriangleList::build(&g);
        let idx = TriangleIndex::build(&g, &tl);
        assert!(k4_edge_degrees(&g, &idx).iter().all(|&d| d == 0));
    }

    #[test]
    fn intersect3_basics() {
        let mut out = vec![];
        intersect3_sorted(&[1, 3, 5, 7], &[2, 3, 5, 8], &[3, 4, 5, 9], |x| out.push(x));
        assert_eq!(out, vec![3, 5]);
        out.clear();
        intersect3_sorted(&[], &[1], &[1], |x| out.push(x));
        assert!(out.is_empty());
    }
}
