//! Generator contracts: every generator emits a simple graph (no self
//! loops, no duplicates — guaranteed by CsrGraph, checked here by edge
//! accounting), with the model's documented shape, deterministically.

use proptest::prelude::*;

use nucleus_gen::ba::barabasi_albert;
use nucleus_gen::er::{gnm, gnp};
use nucleus_gen::holme_kim::holme_kim;
use nucleus_gen::planted::{planted_cliques, planted_partition};
use nucleus_gen::rmat::{rmat, RmatParams};
use nucleus_gen::ws::watts_strogatz;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gnm_is_exact_and_deterministic(n in 4u32..60, seed in 0u64..1000) {
        let max = (n as usize * (n as usize - 1)) / 2;
        let m = max / 2;
        let a = gnm(n, m, seed);
        let b = gnm(n, m, seed);
        prop_assert_eq!(a.m(), m);
        prop_assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }

    #[test]
    fn gnp_stays_simple(n in 4u32..80, p in 0.0f64..0.3, seed in 0u64..1000) {
        let g = gnp(n, p, seed);
        prop_assert_eq!(g.n(), n as usize);
        for (_, u, v) in g.edges() {
            prop_assert!(u < v);
        }
    }

    #[test]
    fn ba_degrees_and_determinism(n in 6u32..80, m in 1u32..5, seed in 0u64..1000) {
        prop_assume!(n > m);
        let g = barabasi_albert(n, m, seed);
        prop_assert!(g.vertices().all(|v| g.degree(v) >= m as usize));
        let g2 = barabasi_albert(n, m, seed);
        prop_assert_eq!(g.edge_endpoints(), g2.edge_endpoints());
    }

    #[test]
    fn holme_kim_edge_budget(n in 6u32..60, m in 1u32..4, p in 0.0f64..1.0, seed in 0u64..500) {
        prop_assume!(n > m);
        let g = holme_kim(n, m, p, seed);
        let seed_edges = (m as usize + 1) * m as usize / 2;
        prop_assert_eq!(g.m(), seed_edges + (n - m - 1) as usize * m as usize);
    }

    #[test]
    fn rmat_bounds(scale in 3u32..9, ef in 1u32..6, seed in 0u64..500) {
        let g = rmat(scale, ef, RmatParams::skewed(), seed);
        prop_assert_eq!(g.n(), 1usize << scale);
        prop_assert!(g.m() <= (ef as usize) << scale);
    }

    #[test]
    fn ws_preserves_edge_count(n in 10u32..80, seed in 0u64..500) {
        let g = watts_strogatz(n, 4, 0.2, seed);
        prop_assert_eq!(g.m(), n as usize * 2);
    }

    #[test]
    fn planted_partition_shape(blocks in 2u32..6, size in 4u32..20, seed in 0u64..200) {
        let g = planted_partition(blocks, size, 0.5, 0.02, seed);
        prop_assert_eq!(g.n(), (blocks * size) as usize);
    }

    #[test]
    fn planted_cliques_connected_and_clique_complete(count in 1u32..6, seed in 0u64..200) {
        let g = planted_cliques(count, &[4, 5], seed);
        let (_, comps) = nucleus_graph::traversal::connected_components(&g);
        prop_assert_eq!(comps, 1);
        // first clique (size 4) is complete
        for u in 0..4u32 {
            for v in u + 1..4 {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }
}
