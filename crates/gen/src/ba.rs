//! Barabási–Albert preferential attachment.

use nucleus_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BA model: starts from a clique on `m_attach + 1` vertices; each new
/// vertex attaches to `m_attach` distinct existing vertices chosen with
/// probability proportional to degree (via the repeated-endpoints trick).
///
/// # Panics
/// Panics if `n <= m_attach`.
pub fn barabasi_albert(n: u32, m_attach: u32, seed: u64) -> CsrGraph {
    assert!(n > m_attach, "need n > m_attach");
    assert!(m_attach >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * m_attach as usize);
    // Every edge endpoint appended here; sampling an index uniformly is a
    // degree-proportional vertex draw.
    let mut endpoints: Vec<u32> = Vec::new();
    let seed_vertices = m_attach + 1;
    for u in 0..seed_vertices {
        for v in u + 1..seed_vertices {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets: Vec<u32> = Vec::with_capacity(m_attach as usize);
    for v in seed_vertices..n {
        targets.clear();
        while targets.len() < m_attach as usize {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((t, v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_formula() {
        let (n, m) = (500u32, 4u32);
        let g = barabasi_albert(n, m, 3);
        let seed_edges = (m as usize + 1) * m as usize / 2;
        assert_eq!(g.m(), seed_edges + (n - m - 1) as usize * m as usize);
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 3, 9);
        assert!(g.vertices().all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(2000, 2, 5);
        assert!(
            g.max_degree() > 20,
            "max degree {} too small for BA",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(100, 2, 77);
        let b = barabasi_albert(100, 2, 77);
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }
}
