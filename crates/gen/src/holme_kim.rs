//! Holme–Kim "powerlaw cluster" model: Barabási–Albert growth with an
//! extra triad-formation step, producing power-law degree distributions
//! *and* high clustering — our surrogate for social-feed graphs like the
//! paper's `twitter-hb` (which has |△|/|E| ≈ 6.6).

use nucleus_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Holme–Kim model. Like BA with `m_attach` links per new vertex, but
/// after each preferential link, with probability `triad_p` the *next*
/// link closes a triangle (random neighbor of the previous target).
pub fn holme_kim(n: u32, m_attach: u32, triad_p: f64, seed: u64) -> CsrGraph {
    assert!(n > m_attach, "need n > m_attach");
    assert!(m_attach >= 1);
    assert!((0.0..=1.0).contains(&triad_p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let mut endpoints: Vec<u32> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let connect = |a: u32,
                   b: u32,
                   adj: &mut Vec<Vec<u32>>,
                   endpoints: &mut Vec<u32>,
                   edges: &mut Vec<(u32, u32)>| {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
        endpoints.push(a);
        endpoints.push(b);
        edges.push((a, b));
    };
    let seed_vertices = m_attach + 1;
    for u in 0..seed_vertices {
        for v in u + 1..seed_vertices {
            connect(u, v, &mut adj, &mut endpoints, &mut edges);
        }
    }
    for v in seed_vertices..n {
        let mut last_target: Option<u32> = None;
        let mut linked: Vec<u32> = Vec::with_capacity(m_attach as usize);
        let mut links_made = 0;
        while links_made < m_attach {
            let mut target = None;
            if let Some(prev) = last_target {
                if rng.gen_bool(triad_p) {
                    // Triad step: a random neighbor of the previous target.
                    let nbrs = &adj[prev as usize];
                    if !nbrs.is_empty() {
                        let cand = nbrs[rng.gen_range(0..nbrs.len())];
                        if cand != v && !linked.contains(&cand) {
                            target = Some(cand);
                        }
                    }
                }
            }
            let t = target.unwrap_or_else(|| {
                // Preferential attachment step (rejecting duplicates).
                loop {
                    let cand = endpoints[rng.gen_range(0..endpoints.len())];
                    if cand != v && !linked.contains(&cand) {
                        return cand;
                    }
                }
            });
            connect(t, v, &mut adj, &mut endpoints, &mut edges);
            linked.push(t);
            last_target = Some(t);
            links_made += 1;
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_count_brute(g: &CsrGraph) -> u64 {
        let mut c = 0;
        for (_, u, v) in g.edges() {
            let (a, b) = (g.neighbors(u), g.neighbors(v));
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        c += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        c / 3
    }

    #[test]
    fn clusters_more_than_plain_ba() {
        let hk = holme_kim(1500, 3, 0.9, 4);
        let ba = crate::ba::barabasi_albert(1500, 3, 4);
        assert!(
            triangle_count_brute(&hk) > 2 * triangle_count_brute(&ba),
            "triad formation should create many more triangles"
        );
    }

    #[test]
    fn edge_count_formula() {
        let (n, m) = (400u32, 3u32);
        let g = holme_kim(n, m, 0.5, 8);
        let seed_edges = (m as usize + 1) * m as usize / 2;
        assert_eq!(g.m(), seed_edges + (n - m - 1) as usize * m as usize);
    }

    #[test]
    fn deterministic() {
        let a = holme_kim(200, 2, 0.7, 13);
        let b = holme_kim(200, 2, 0.7, 13);
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }
}
