#![warn(missing_docs)]

//! Deterministic synthetic graph generators.
//!
//! The VLDB'16 evaluation runs on nine real-world networks (SNAP, UF,
//! Network Repository) that cannot be redistributed or fetched offline.
//! This crate provides seeded generators whose outputs exercise the same
//! structural regimes (see `DESIGN.md` for the per-dataset mapping), plus
//! the classic deterministic graphs and the paper's illustrative figure
//! graphs used throughout the test suite.
//!
//! All generators take an explicit `u64` seed and are fully reproducible.

pub mod ba;
pub mod classic;
pub mod er;
pub mod holme_kim;
pub mod karate;
pub mod paper;
pub mod planted;
pub mod rmat;
pub mod surrogate;
pub mod ws;

pub use surrogate::{dataset, dataset_names, Scale};
