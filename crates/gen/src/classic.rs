//! Deterministic classic graphs used by tests, examples and docs.

use nucleus_graph::{CsrGraph, GraphBuilder};

/// Complete graph K_n.
pub fn complete(n: u32) -> CsrGraph {
    let mut edges = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

/// Path graph P_n (n vertices, n-1 edges).
pub fn path(n: u32) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    CsrGraph::from_edges(n as usize, &edges)
}

/// Cycle graph C_n.
pub fn cycle(n: u32) -> CsrGraph {
    assert!(n >= 3, "cycle needs n >= 3");
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    edges.push((n - 1, 0));
    CsrGraph::from_edges(n as usize, &edges)
}

/// Star graph: center 0 with `leaves` leaves.
pub fn star(leaves: u32) -> CsrGraph {
    let edges: Vec<(u32, u32)> = (1..=leaves).map(|v| (0, v)).collect();
    CsrGraph::from_edges(leaves as usize + 1, &edges)
}

/// Complete bipartite graph K_{a,b}.
pub fn complete_bipartite(a: u32, b: u32) -> CsrGraph {
    let mut edges = Vec::with_capacity(a as usize * b as usize);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    CsrGraph::from_edges((a + b) as usize, &edges)
}

/// rows × cols grid graph.
pub fn grid(rows: u32, cols: u32) -> CsrGraph {
    let id = |r: u32, c: u32| r * cols + c;
    let mut b = GraphBuilder::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build_with_n((rows * cols) as usize)
}

/// Two K_k cliques joined by a path with `bridge` interior vertices.
pub fn barbell(k: u32, bridge: u32) -> CsrGraph {
    assert!(k >= 2);
    let mut b = GraphBuilder::new();
    let add_clique = |b: &mut GraphBuilder, base: u32| {
        for u in 0..k {
            for v in u + 1..k {
                b.add_edge(base + u, base + v);
            }
        }
    };
    add_clique(&mut b, 0);
    add_clique(&mut b, k);
    // Path from vertex k-1 (first clique) to vertex k (second clique).
    let mut prev = k - 1;
    for i in 0..bridge {
        let mid = 2 * k + i;
        b.add_edge(prev, mid);
        prev = mid;
    }
    b.add_edge(prev, k);
    b.build_with_n((2 * k + bridge) as usize)
}

/// K_k with a path of `tail` vertices hanging off vertex 0.
pub fn lollipop(k: u32, tail: u32) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..k {
        for v in u + 1..k {
            b.add_edge(u, v);
        }
    }
    let mut prev = 0;
    for i in 0..tail {
        b.add_edge(prev, k + i);
        prev = k + i;
    }
    b.build_with_n((k + tail) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).m(), 4);
        let c = cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 6);
        assert!((1..=6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn bipartite_has_no_triangles() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.m(), 12);
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    assert!(!g.has_edge(u.min(v), u.max(v)));
                }
            }
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
    }

    #[test]
    fn barbell_connects_cliques() {
        let g = barbell(4, 2);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 6 + 6 + 3);
        assert_eq!(g.degree(8), 2); // bridge vertex
    }

    #[test]
    fn lollipop_tail() {
        let g = lollipop(4, 3);
        assert_eq!(g.n(), 7);
        assert_eq!(g.degree(6), 1);
    }
}
