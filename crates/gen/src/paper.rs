//! The illustrative graphs used by the paper's figures, reconstructed
//! for the test suite. Where a figure does not fully specify its graph,
//! we build the smallest graph exhibiting the property the figure
//! illustrates (documented per function).

use nucleus_graph::{CsrGraph, GraphBuilder};

/// Figure 2: a graph whose 2-core contains **two distinct 3-cores**,
/// indistinguishable from λ values alone.
///
/// Construction: two K4s (vertices 0–3 and 4–7) joined through the
/// path 3–8–9–4. Path vertices have degree 2 and λ₂ = 2, K4 vertices
/// have λ₂ = 3; the whole (connected) graph is the single 2-core and
/// the K4s are the two 3-cores inside it.
pub fn fig2_two_three_cores() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for base in [0u32, 4u32] {
        for u in 0..4 {
            for v in u + 1..4 {
                b.add_edge(base + u, base + v);
            }
        }
    }
    b.add_edge(3, 8);
    b.add_edge(8, 9);
    b.add_edge(9, 4);
    b.build()
}

/// Figure 3's point: connectivity semantics split k-truss variants.
/// The *bowtie* (two triangles sharing one vertex) is one connected
/// subgraph where every edge lies in ≥ 1 triangle — a single classical
/// k-truss / k-dense — but its two triangles are **not**
/// triangle-connected, so it contains **two** (2,3)-nuclei (k-truss
/// communities) at λ₃ = 1.
pub fn fig3_bowtie() -> CsrGraph {
    CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
}

/// Figure 4: sub-(1,2)-nuclei (T₁,₂) of equal λ that belong to the same
/// k-core without being adjacent. Three K4 "towers" F, D, G (λ = 3)
/// are chained by degree-2 "bridges" A (between F and D) and E (between
/// D and G); bridges have λ = 2. A and E are distinct T₁,₂s in the same
/// 2-core, separated by higher-λ regions — the case the hierarchy
/// algorithms must resolve.
///
/// Returns `(graph, [f, d, g, a, e])` where the array holds one
/// representative vertex per region.
pub fn fig4_chained_towers() -> (CsrGraph, [u32; 5]) {
    let mut b = GraphBuilder::new();
    // K4 towers at bases 0, 4, 8.
    for base in [0u32, 4, 8] {
        for u in 0..4 {
            for v in u + 1..4 {
                b.add_edge(base + u, base + v);
            }
        }
    }
    // Bridge A: vertices 12, 13 linking tower F (0..4) and tower D
    // (4..8); bridge vertices have degree exactly 2, so λ₂ = 2.
    b.add_edge(0, 12);
    b.add_edge(12, 13);
    b.add_edge(13, 4);
    // Bridge E: vertices 14, 15 linking tower D (4..8) and tower G (8..12).
    b.add_edge(6, 14);
    b.add_edge(14, 15);
    b.add_edge(15, 8);
    (b.build(), [0, 4, 8, 12, 14])
}

/// A small graph with a 3-level (1,2) hierarchy: K5 inside a 2-core ring
/// inside a whole-graph root with a pendant vertex. Handy for asserting
/// exact hierarchy shapes in tests.
///
/// Layout: vertices 0–4 form K5 (λ=4); vertices 5–8 form a cycle attached
/// to the K5 at 0 and 1 (λ=2); vertex 9 hangs off vertex 5 (λ=1).
pub fn three_level_core_hierarchy() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            b.add_edge(u, v);
        }
    }
    // cycle 0-5-6-7-8-1 closing through K5 edge (0,1)
    b.add_edge(0, 5);
    b.add_edge(5, 6);
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    b.add_edge(8, 1);
    // pendant
    b.add_edge(5, 9);
    b.build()
}

/// Figure 1-style example: a graph where triangle-based and
/// four-clique-based nuclei disagree. An octahedron (K_{2,2,2}: every
/// edge in exactly 2 triangles, **zero** K4s) shares the edge {0, 1}
/// with a K5 (every triangle in 2 K4s). The (2,3) decomposition keeps
/// both halves in dense nuclei; the (3,4) decomposition gives the
/// octahedron's triangles λ₄ = 0 and only the K5 survives.
///
/// Octahedron vertices: 0–5 with antipodal (non-adjacent) pairs
/// (0,3), (1,4), (2,5). K5 vertices: {0, 1, 6, 7, 8}.
pub fn fig1_nucleus_contrast() -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..6u32 {
        for v in u + 1..6 {
            if !matches!((u, v), (0, 3) | (1, 4) | (2, 5)) {
                b.add_edge(u, v);
            }
        }
    }
    let k5 = [0u32, 1, 6, 7, 8];
    for i in 0..5 {
        for j in i + 1..5 {
            if (k5[i], k5[j]) != (0, 1) {
                b.add_edge(k5[i], k5[j]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucleus_graph::order::degeneracy_order;

    #[test]
    fn fig2_every_vertex_in_two_core() {
        let g = fig2_two_three_cores();
        // min degree 2 overall; two K4s present
        assert!(g.vertices().all(|v| g.degree(v) >= 2));
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 3);
    }

    #[test]
    fn fig3_bowtie_shape() {
        let g = fig3_bowtie();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn fig4_regions_have_expected_degrees() {
        let (g, reps) = fig4_chained_towers();
        assert_eq!(g.n(), 16);
        for tower_rep in &reps[..3] {
            assert!(g.degree(*tower_rep) >= 3);
        }
        for bridge_rep in &reps[3..] {
            assert_eq!(g.degree(*bridge_rep), 2);
        }
    }

    #[test]
    fn three_level_shape() {
        let g = three_level_core_hierarchy();
        assert_eq!(g.n(), 10);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 4);
        assert_eq!(g.degree(9), 1);
    }

    #[test]
    fn fig1_octahedron_half_is_k4_free() {
        let g = fig1_nucleus_contrast();
        assert_eq!(g.n(), 9);
        // octahedron contributes 12 edges, K5 contributes 10 but shares (0,1)
        assert_eq!(g.m(), 12 + 9);
        // antipodal pairs are non-adjacent
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 4));
        assert!(!g.has_edge(2, 5));
        // a pure-octahedron 4-set is never a K4
        for quad in [[0u32, 1, 2, 4], [2, 3, 4, 5], [0, 2, 4, 5]] {
            let mut complete = true;
            for i in 0..4 {
                for j in i + 1..4 {
                    let (a, b) = (quad[i].min(quad[j]), quad[i].max(quad[j]));
                    complete &= g.has_edge(a, b);
                }
            }
            assert!(!complete, "octahedron quad {quad:?} must not be a K4");
        }
    }
}
