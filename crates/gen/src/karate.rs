//! Zachary's karate club (1977) — the classic 34-vertex, 78-edge social
//! network, embedded for examples and sanity tests. Vertices are
//! 0-indexed (the literature's vertex 1 is our 0).

use nucleus_graph::CsrGraph;

/// The 78 undirected edges, 1-indexed as in the original paper.
const EDGES_1INDEXED: [(u32, u32); 78] = [
    (1, 2),
    (1, 3),
    (1, 4),
    (1, 5),
    (1, 6),
    (1, 7),
    (1, 8),
    (1, 9),
    (1, 11),
    (1, 12),
    (1, 13),
    (1, 14),
    (1, 18),
    (1, 20),
    (1, 22),
    (1, 32),
    (2, 3),
    (2, 4),
    (2, 8),
    (2, 14),
    (2, 18),
    (2, 20),
    (2, 22),
    (2, 31),
    (3, 4),
    (3, 8),
    (3, 9),
    (3, 10),
    (3, 14),
    (3, 28),
    (3, 29),
    (3, 33),
    (4, 8),
    (4, 13),
    (4, 14),
    (5, 7),
    (5, 11),
    (6, 7),
    (6, 11),
    (6, 17),
    (7, 17),
    (9, 31),
    (9, 33),
    (9, 34),
    (10, 34),
    (14, 34),
    (15, 33),
    (15, 34),
    (16, 33),
    (16, 34),
    (19, 33),
    (19, 34),
    (20, 34),
    (21, 33),
    (21, 34),
    (23, 33),
    (23, 34),
    (24, 26),
    (24, 28),
    (24, 30),
    (24, 33),
    (24, 34),
    (25, 26),
    (25, 28),
    (25, 32),
    (26, 32),
    (27, 30),
    (27, 34),
    (28, 34),
    (29, 32),
    (29, 34),
    (30, 33),
    (30, 34),
    (31, 33),
    (31, 34),
    (32, 33),
    (32, 34),
    (33, 34),
];

/// Builds the karate club graph (n = 34, m = 78, 0-indexed).
pub fn karate_club() -> CsrGraph {
    let edges: Vec<(u32, u32)> = EDGES_1INDEXED
        .iter()
        .map(|&(u, v)| (u - 1, v - 1))
        .collect();
    CsrGraph::from_edges(34, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucleus_graph::order::degeneracy_order;
    use nucleus_graph::traversal::connected_components;

    #[test]
    fn canonical_shape() {
        let g = karate_club();
        assert_eq!(g.n(), 34);
        assert_eq!(g.m(), 78);
        assert_eq!(g.degree(0), 16); // Mr. Hi
        assert_eq!(g.degree(33), 17); // the president
        assert_eq!(g.degree(32), 12);
    }

    #[test]
    fn connected_and_degeneracy_four() {
        let g = karate_club();
        let (_, c) = connected_components(&g);
        assert_eq!(c, 1);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 4, "karate club degeneracy is famously 4");
    }
}
