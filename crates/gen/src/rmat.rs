//! R-MAT (recursive matrix) generator — the standard synthetic stand-in
//! for skewed web/internet graphs (our surrogate regime for `skitter`,
//! `Google`, `wiki-0611`).

use nucleus_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters: quadrant probabilities (must sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// top-left quadrant probability
    pub a: f64,
    /// top-right
    pub b: f64,
    /// bottom-left
    pub c: f64,
    /// bottom-right
    pub d: f64,
}

impl RmatParams {
    /// The classic skewed default (0.57, 0.19, 0.19, 0.05).
    pub fn skewed() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Graph500-ish heavier skew.
    pub fn heavy() -> Self {
        RmatParams {
            a: 0.65,
            b: 0.15,
            c: 0.15,
            d: 0.05,
        }
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// (up to) `edge_factor · 2^scale` edges; self-loops and duplicates are
/// removed, so the final edge count is slightly lower.
pub fn rmat(scale: u32, edge_factor: u32, params: RmatParams, seed: u64) -> CsrGraph {
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let n = 1u64 << scale;
    let m = n * edge_factor as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_bounds() {
        let g = rmat(10, 8, RmatParams::skewed(), 1);
        assert_eq!(g.n(), 1024);
        assert!(g.m() <= 8 * 1024);
        assert!(g.m() > 4 * 1024, "dedup removed too much: m={}", g.m());
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(12, 8, RmatParams::skewed(), 2);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(g.max_degree() as f64 > 8.0 * avg, "R-MAT should have hubs");
    }

    #[test]
    fn deterministic() {
        let a = rmat(8, 4, RmatParams::heavy(), 5);
        let b = rmat(8, 4, RmatParams::heavy(), 5);
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_params() {
        rmat(
            4,
            2,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
