//! Watts–Strogatz small-world graphs.

use nucleus_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Watts–Strogatz: ring lattice where each vertex connects to its `k`
/// nearest neighbors (`k/2` per side), each edge rewired with probability
/// `beta` to a uniform random non-duplicate target.
///
/// # Panics
/// Panics unless `k` is even, `k >= 2` and `n > k`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> CsrGraph {
    assert!(
        k.is_multiple_of(2) && k >= 2 && n > k,
        "need even k >= 2 and n > k"
    );
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::<u64>::new();
    let key = |a: u32, b: u32| ((a.min(b) as u64) << 32) | a.max(b) as u64;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n as usize * (k / 2) as usize);
    for u in 0..n {
        for off in 1..=k / 2 {
            let v = (u + off) % n;
            edges.push((u, v));
            seen.insert(key(u, v));
        }
    }
    for e in edges.iter_mut() {
        if rng.gen_bool(beta) {
            let (u, old_v) = *e;
            // try a few times to find a fresh target; keep original on failure
            for _ in 0..16 {
                let w = rng.gen_range(0..n);
                if w != u && !seen.contains(&key(u, w)) {
                    seen.remove(&key(u, old_v));
                    seen.insert(key(u, w));
                    *e = (u, w);
                    break;
                }
            }
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_when_beta_zero() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.m(), 40);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(g.has_edge(0, 1) && (g.has_edge(0, 2) || g.has_edge(2, 0)));
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let g = watts_strogatz(100, 6, 0.3, 2);
        assert_eq!(g.m(), 300);
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(64, 4, 0.2, 9);
        let b = watts_strogatz(64, 4, 0.2, 9);
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }
}
