//! Named surrogate datasets standing in for the paper's nine real-world
//! networks (Table 3). Each surrogate is a seeded generator whose
//! parameters put it in the same structural regime as the original —
//! see `DESIGN.md` ("Substitutions") for the mapping rationale.
//!
//! Three scales are provided so tests (Small), default benches (Medium)
//! and patient full runs (Large) can share one registry.

use nucleus_graph::CsrGraph;

use crate::ba::barabasi_albert;
use crate::holme_kim::holme_kim;
use crate::planted::{planted_cliques, planted_partition};
use crate::rmat::{rmat, RmatParams};

/// Dataset scale knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for unit/integration tests (< 2k vertices).
    Small,
    /// Default bench scale: seconds per decomposition on a laptop.
    Medium,
    /// Stress scale for full reproduction runs.
    Large,
}

/// All registered surrogate names, in Table 3 row order.
pub fn dataset_names() -> &'static [&'static str] {
    &[
        "skitter-s",    // internet topology → RMAT skewed
        "berkeley13-s", // facebook: planted partition, dense blocks
        "mit-s",        // facebook, smaller
        "stanford3-s",  // facebook
        "texas84-s",    // facebook, larger
        "twitter-hb-s", // retweet cascade → Holme–Kim
        "google-s",     // web → RMAT heavy
        "uk2005-s",     // web with huge cliques → planted cliques
        "wiki-s",       // wiki links → BA
    ]
}

/// Generates the named surrogate at the given scale.
///
/// # Panics
/// Panics on unknown names; use [`dataset_names`] for the registry.
pub fn dataset(name: &str, scale: Scale) -> CsrGraph {
    use Scale::*;
    match name {
        "skitter-s" => match scale {
            Small => rmat(9, 6, RmatParams::skewed(), 101),
            Medium => rmat(15, 8, RmatParams::skewed(), 101),
            Large => rmat(18, 10, RmatParams::skewed(), 101),
        },
        "berkeley13-s" => match scale {
            Small => planted_partition(6, 40, 0.35, 0.01, 102),
            Medium => planted_partition(40, 120, 0.30, 0.004, 102),
            Large => planted_partition(80, 260, 0.25, 0.002, 102),
        },
        "mit-s" => match scale {
            Small => planted_partition(4, 40, 0.40, 0.02, 103),
            Medium => planted_partition(20, 120, 0.38, 0.008, 103),
            Large => planted_partition(40, 180, 0.35, 0.005, 103),
        },
        "stanford3-s" => match scale {
            Small => planted_partition(5, 45, 0.38, 0.015, 104),
            Medium => planted_partition(30, 130, 0.33, 0.006, 104),
            Large => planted_partition(60, 200, 0.30, 0.004, 104),
        },
        "texas84-s" => match scale {
            Small => planted_partition(7, 40, 0.33, 0.012, 105),
            Medium => planted_partition(50, 130, 0.28, 0.004, 105),
            Large => planted_partition(90, 220, 0.26, 0.003, 105),
        },
        "twitter-hb-s" => match scale {
            Small => holme_kim(600, 5, 0.8, 106),
            Medium => holme_kim(30_000, 8, 0.8, 106),
            Large => holme_kim(150_000, 10, 0.85, 106),
        },
        "google-s" => match scale {
            Small => rmat(9, 5, RmatParams::heavy(), 107),
            Medium => rmat(15, 6, RmatParams::heavy(), 107),
            Large => rmat(18, 8, RmatParams::heavy(), 107),
        },
        "uk2005-s" => match scale {
            Small => planted_cliques(12, &[8, 12, 16], 108),
            Medium => planted_cliques(150, &[15, 20, 25, 30], 108),
            Large => planted_cliques(400, &[20, 30, 40, 50], 108),
        },
        "wiki-s" => match scale {
            Small => barabasi_albert(700, 5, 109),
            Medium => barabasi_albert(60_000, 7, 109),
            Large => barabasi_albert(400_000, 8, 109),
        },
        other => panic!("unknown surrogate dataset {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate_small() {
        for name in dataset_names() {
            let g = dataset(name, Scale::Small);
            assert!(g.n() > 0, "{name} empty");
            assert!(g.m() > 0, "{name} has no edges");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset("skitter-s", Scale::Small);
        let b = dataset("skitter-s", Scale::Small);
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }

    #[test]
    #[should_panic]
    fn unknown_name_panics() {
        dataset("nope", Scale::Small);
    }
}
