//! Erdős–Rényi random graphs.

use nucleus_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// G(n, p): every pair independently with probability `p`, sampled with
/// the Batagelj–Brandes geometric-skip method in expected `O(n + m)`.
pub fn gnp(n: u32, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if n >= 2 && p > 0.0 {
        if (p - 1.0).abs() < f64::EPSILON {
            for u in 0..n {
                for v in u + 1..n {
                    edges.push((u, v));
                }
            }
        } else {
            let lp = (1.0 - p).ln();
            let mut v: i64 = 1;
            let mut w: i64 = -1;
            while (v as u32) < n {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                w += 1 + (r.ln() / lp).floor() as i64;
                while w >= v && (v as u32) < n {
                    w -= v;
                    v += 1;
                }
                if (v as u32) < n {
                    edges.push((w as u32, v as u32));
                }
            }
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

/// G(n, m): exactly `m` distinct edges chosen uniformly at random.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn gnm(n: u32, m: usize, seed: u64) -> CsrGraph {
    let max = (n as u64 * (n as u64 - 1)) / 2;
    assert!(m as u64 <= max, "m={m} exceeds max edges {max}");
    let mut rng = StdRng::seed_from_u64(seed);
    // Rejection sampling on packed pair keys; fine while m is not a huge
    // fraction of max (our use). Falls back to dense enumeration if it is.
    if (m as u64) * 3 > max * 2 {
        // dense regime: shuffle all pairs
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(max as usize);
        for u in 0..n {
            for v in u + 1..n {
                all.push((u, v));
            }
        }
        // Partial Fisher–Yates for the first m picks.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
        }
        all.truncate(m);
        return CsrGraph::from_edges(n as usize, &all);
    }
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (a, b) = (u.min(v), u.max(v));
        let key = (a as u64) << 32 | b as u64;
        if seen.insert(key) {
            edges.push((a, b));
        }
    }
    CsrGraph::from_edges(n as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 500, 7);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 500);
    }

    #[test]
    fn gnm_dense_regime() {
        let g = gnm(10, 44, 7); // out of 45 possible
        assert_eq!(g.m(), 44);
    }

    #[test]
    fn gnp_expected_density() {
        let g = gnp(400, 0.05, 11);
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < expected * 0.2,
            "m={m} vs expected {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = gnp(200, 0.03, 42);
        let b = gnp(200, 0.03, 42);
        assert_eq!(a.m(), b.m());
        let c = gnp(200, 0.03, 43);
        // overwhelmingly likely to differ
        assert!(a.m() != c.m() || a.edge_endpoints() != c.edge_endpoints());
        assert_eq!(a.edge_endpoints(), b.edge_endpoints());
    }
}
