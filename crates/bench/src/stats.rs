//! Dataset statistics for Table 3: |V|, |E|, |△|, |K4|, clique ratios,
//! sub-nucleus counts |T_{r,s}| / |T*_{r,s}| and |c↓(T*_{r,s})|.

use nucleus_cliques::four_cliques::k4_count;
use nucleus_cliques::TriangleList;
use nucleus_core::algo::dft::dft;
use nucleus_core::algo::fnd::fnd;
use nucleus_core::peel::peel;
use nucleus_core::space::{EdgeSpace, TriangleSpace, VertexSpace};
use nucleus_graph::CsrGraph;

/// One Table 3 row.
#[derive(Clone, Debug, Default)]
pub struct DatasetStats {
    /// Dataset label.
    pub name: String,
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Triangle count.
    pub triangles: u64,
    /// Four-clique count.
    pub k4s: u64,
    /// |T_{1,2}| (maximal sub-nuclei, from DFT).
    pub t12: usize,
    /// |T*_{1,2}| (FND sub-nuclei).
    pub t12_star: usize,
    /// |T_{2,3}|.
    pub t23: usize,
    /// |T*_{2,3}|.
    pub t23_star: usize,
    /// |T_{3,4}|.
    pub t34: usize,
    /// |T*_{3,4}|.
    pub t34_star: usize,
    /// |c↓(T*_{2,3})|.
    pub c23: usize,
    /// |c↓(T*_{3,4})|.
    pub c34: usize,
}

impl DatasetStats {
    /// |E| / |V|.
    pub fn edge_ratio(&self) -> f64 {
        self.m as f64 / self.n.max(1) as f64
    }

    /// |△| / |E|.
    pub fn triangle_ratio(&self) -> f64 {
        self.triangles as f64 / self.m.max(1) as f64
    }

    /// |K4| / |△|.
    pub fn k4_ratio(&self) -> f64 {
        self.k4s as f64 / self.triangles.max(1) as f64
    }
}

/// Computes the full statistics row for a graph (runs DFT and FND on all
/// three spaces — this is the expensive, thorough version used by the
/// Table 3 binary).
pub fn dataset_stats(name: &str, g: &CsrGraph) -> DatasetStats {
    let tris = TriangleList::build(g);
    let mut s = DatasetStats {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        triangles: tris.len() as u64,
        k4s: k4_count(g, &tris),
        ..Default::default()
    };
    drop(tris);

    let vs = VertexSpace::new(g);
    let p = peel(&vs);
    let (_, d) = dft(&vs, &p);
    s.t12 = d.subnuclei;
    let f = fnd(&vs);
    s.t12_star = f.stats.subnuclei;

    let es = EdgeSpace::new(g);
    let p = peel(&es);
    let (_, d) = dft(&es, &p);
    s.t23 = d.subnuclei;
    let f = fnd(&es);
    s.t23_star = f.stats.subnuclei;
    s.c23 = f.stats.adj_connections;

    let ts = TriangleSpace::new(g);
    let p = peel(&ts);
    let (_, d) = dft(&ts, &p);
    s.t34 = d.subnuclei;
    let f = fnd(&ts);
    s.t34_star = f.stats.subnuclei;
    s.c34 = f.stats.adj_connections;

    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_bridged_cliques_match_table3_regime() {
        // The uk-2005 regime: |T| == |T*|, c↓ == 0.
        let g = nucleus_gen::planted::planted_cliques(5, &[6], 1);
        let s = dataset_stats("uk-mini", &g);
        assert_eq!(s.n, 30);
        assert_eq!(s.triangles, 5 * 20); // 5 × C(6,3)
        assert_eq!(s.k4s, 5 * 15); // 5 × C(6,4)
        assert_eq!(s.t23, 5);
        assert_eq!(s.t23_star, 5);
        assert_eq!(s.c23, 0);
        assert_eq!(s.c34, 0);
        assert!(s.t12 >= 1);
    }

    #[test]
    fn star_counts_in_t12() {
        // T* can exceed T: the FND star-graph artifact (§4.3).
        let g = nucleus_gen::classic::star(8);
        let s = dataset_stats("star", &g);
        assert_eq!(s.t12, 1);
        assert!(s.t12_star >= s.t12);
        assert_eq!(s.triangles, 0);
    }

    #[test]
    fn ratios_compute() {
        let g = nucleus_gen::classic::complete(6);
        let s = dataset_stats("k6", &g);
        assert!((s.edge_ratio() - 2.5).abs() < 1e-9);
        assert!((s.triangle_ratio() - 20.0 / 15.0).abs() < 1e-9);
        assert!((s.k4_ratio() - 15.0 / 20.0).abs() < 1e-9);
    }
}
