//! Experiment drivers: one function per paper artifact (Tables 1/3/4/5,
//! Figure 6). The `table*` / `figure6` binaries are thin wrappers so the
//! integration tests can run every experiment at Small scale.

use nucleus_core::prelude::*;
use nucleus_gen::Scale;

use crate::stats::dataset_stats;
use crate::{
    all_datasets, fmt_duration, load, run_algorithm, run_hypo, run_tcp_construction, speedup,
    RunResult, Table, TABLE1_DATASETS,
};

/// Whether the expensive Naive (3,4) baseline should run at this scale.
pub fn naive34_enabled(scale: Scale) -> bool {
    scale == Scale::Small || std::env::args().any(|a| a == "--naive34")
}

/// Table 3: dataset statistics.
pub fn table3(scale: Scale) -> Table {
    let mut t = Table::new([
        "dataset", "|V|", "|E|", "|tri|", "|K4|", "E/V", "tri/E", "K4/tri", "|T12|", "|T*12|",
        "|T23|", "|T*23|", "|T34|", "|T*34|", "c(T*23)", "c(T*34)",
    ]);
    for name in all_datasets() {
        let g = load(name, scale);
        let s = dataset_stats(name, &g);
        t.row([
            s.name.clone(),
            s.n.to_string(),
            s.m.to_string(),
            s.triangles.to_string(),
            s.k4s.to_string(),
            format!("{:.2}", s.edge_ratio()),
            format!("{:.2}", s.triangle_ratio()),
            format!("{:.2}", s.k4_ratio()),
            s.t12.to_string(),
            s.t12_star.to_string(),
            s.t23.to_string(),
            s.t23_star.to_string(),
            s.t34.to_string(),
            s.t34_star.to_string(),
            s.c23.to_string(),
            s.c34.to_string(),
        ]);
    }
    t
}

/// Table 4: k-core decomposition — every algorithm, speedups of the
/// fastest (expected: LCPS) over the rest.
pub fn table4(scale: Scale) -> Table {
    let mut t = Table::new([
        "dataset",
        "vs Hypo",
        "vs Naive",
        "vs DFT",
        "vs FND",
        "LCPS time",
        "nuclei",
    ]);
    for name in all_datasets() {
        let g = load(name, scale);
        let hypo = run_hypo(&g, Kind::Core);
        let naive = run_algorithm(&g, Kind::Core, Algorithm::Naive);
        let dft = run_algorithm(&g, Kind::Core, Algorithm::Dft);
        let fnd = run_algorithm(&g, Kind::Core, Algorithm::Fnd);
        let lcps = run_algorithm(&g, Kind::Core, Algorithm::Lcps);
        assert_eq!(naive.nuclei, lcps.nuclei, "{name}: hierarchy mismatch");
        t.row([
            name.to_string(),
            speedup(hypo.total(), lcps.total()),
            speedup(naive.total(), lcps.total()),
            speedup(dft.total(), lcps.total()),
            speedup(fnd.total(), lcps.total()),
            fmt_duration(lcps.total()),
            lcps.nuclei.to_string(),
        ]);
    }
    t
}

/// Table 5, (2,3) half: Hypo / Naive / TCP* / DFT vs the fastest
/// (expected: FND).
pub fn table5_truss(scale: Scale) -> Table {
    let mut t = Table::new([
        "dataset", "vs Hypo", "vs Naive", "vs TCP*", "vs DFT", "FND time", "nuclei",
    ]);
    for name in all_datasets() {
        let g = load(name, scale);
        let hypo = run_hypo(&g, Kind::Truss);
        let naive = run_algorithm(&g, Kind::Truss, Algorithm::Naive);
        let tcp = run_tcp_construction(&g);
        let dft = run_algorithm(&g, Kind::Truss, Algorithm::Dft);
        let fnd = run_algorithm(&g, Kind::Truss, Algorithm::Fnd);
        assert_eq!(naive.nuclei, fnd.nuclei, "{name}: hierarchy mismatch");
        t.row([
            name.to_string(),
            speedup(hypo.total(), fnd.total()),
            speedup(naive.total(), fnd.total()),
            speedup(tcp.total(), fnd.total()),
            speedup(dft.total(), fnd.total()),
            fmt_duration(fnd.total()),
            fnd.nuclei.to_string(),
        ]);
    }
    t
}

/// Table 5, (3,4) half. The Naive column is a lower bound at larger
/// scales (the paper's "did not finish in 2 days" regime) unless
/// `--naive34` forces it.
pub fn table5_nucleus34(scale: Scale) -> Table {
    let run_naive = naive34_enabled(scale);
    let mut t = Table::new([
        "dataset", "vs Hypo", "vs Naive", "vs DFT", "FND time", "nuclei",
    ]);
    for name in all_datasets() {
        let g = load(name, scale);
        let hypo = run_hypo(&g, Kind::Nucleus34);
        let dft = run_algorithm(&g, Kind::Nucleus34, Algorithm::Dft);
        let fnd = run_algorithm(&g, Kind::Nucleus34, Algorithm::Fnd);
        let naive_cell = if run_naive {
            let naive = run_algorithm(&g, Kind::Nucleus34, Algorithm::Naive);
            assert_eq!(naive.nuclei, fnd.nuclei, "{name}: hierarchy mismatch");
            speedup(naive.total(), fnd.total())
        } else {
            "skipped*".to_string()
        };
        t.row([
            name.to_string(),
            speedup(hypo.total(), fnd.total()),
            naive_cell,
            speedup(dft.total(), fnd.total()),
            fmt_duration(fnd.total()),
            fnd.nuclei.to_string(),
        ]);
    }
    t
}

/// Table 1: headline speedups of the best algorithm per decomposition on
/// the three showcased datasets.
pub fn table1(scale: Scale) -> Table {
    let run_naive = naive34_enabled(scale);
    let mut t = Table::new([
        "dataset",
        "core: vs Naive",
        "core: vs Hypo",
        "truss: vs Naive",
        "truss: vs TCP*",
        "truss: vs Hypo",
        "(3,4): vs Naive",
    ]);
    for name in TABLE1_DATASETS {
        let g = load(name, scale);
        // k-core: best = LCPS
        let lcps = run_algorithm(&g, Kind::Core, Algorithm::Lcps);
        let core_naive = run_algorithm(&g, Kind::Core, Algorithm::Naive);
        let core_hypo = run_hypo(&g, Kind::Core);
        // truss: best = FND
        let fnd23 = run_algorithm(&g, Kind::Truss, Algorithm::Fnd);
        let truss_naive = run_algorithm(&g, Kind::Truss, Algorithm::Naive);
        let truss_tcp = run_tcp_construction(&g);
        let truss_hypo = run_hypo(&g, Kind::Truss);
        // (3,4): best = FND
        let fnd34 = run_algorithm(&g, Kind::Nucleus34, Algorithm::Fnd);
        let n34 = if run_naive {
            let naive34 = run_algorithm(&g, Kind::Nucleus34, Algorithm::Naive);
            speedup(naive34.total(), fnd34.total())
        } else {
            "skipped*".to_string()
        };
        t.row([
            name.to_string(),
            speedup(core_naive.total(), lcps.total()),
            speedup(core_hypo.total(), lcps.total()),
            speedup(truss_naive.total(), fnd23.total()),
            speedup(truss_tcp.total(), fnd23.total()),
            speedup(truss_hypo.total(), fnd23.total()),
            n34,
        ]);
    }
    t
}

/// Figure 6: peeling vs post-processing of DFT and FND, normalized to
/// total DFT time (in %), for the (2,3) and (3,4) decompositions.
pub fn figure6(scale: Scale) -> Table {
    let mut t = Table::new([
        "dataset",
        "kind",
        "DFT peel %",
        "DFT post %",
        "FND peel %",
        "FND post %",
        "DFT total",
    ]);
    for name in all_datasets() {
        for kind in [Kind::Truss, Kind::Nucleus34] {
            let g = load(name, scale);
            let dft = run_algorithm(&g, kind, Algorithm::Dft);
            let fnd = run_algorithm(&g, kind, Algorithm::Fnd);
            let base = dft.total().as_secs_f64().max(1e-12);
            let pct = |d: std::time::Duration| format!("{:.1}", 100.0 * d.as_secs_f64() / base);
            t.row([
                name.to_string(),
                format!("{kind}"),
                pct(dft.peel),
                pct(dft.post),
                pct(fnd.peel),
                pct(fnd.post),
                fmt_duration(dft.total()),
            ]);
        }
    }
    t
}

/// Convenience: the raw per-algorithm timing grid behind Tables 4/5,
/// useful for EXPERIMENTS.md appendices.
pub fn timing_grid(scale: Scale, kind: Kind) -> Table {
    let mut t = Table::new(["dataset", "algorithm", "peel", "post", "total", "nuclei"]);
    for name in all_datasets() {
        let g = load(name, scale);
        let mut runs: Vec<RunResult> = vec![run_hypo(&g, kind)];
        for &algo in Algorithm::for_kind(kind) {
            if algo == Algorithm::Naive && kind == Kind::Nucleus34 && !naive34_enabled(scale) {
                continue;
            }
            runs.push(run_algorithm(&g, kind, algo));
        }
        if kind == Kind::Truss {
            runs.push(run_tcp_construction(&g));
        }
        for r in runs {
            t.row([
                name.to_string(),
                r.label.clone(),
                fmt_duration(r.peel),
                fmt_duration(r.post),
                fmt_duration(r.total()),
                r.nuclei.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_runs_at_small_scale() {
        // smoke: each driver completes and yields one row per dataset
        let t = table4(Scale::Small);
        assert_eq!(t.to_csv().lines().count(), all_datasets().len() + 1);
        let t = table5_truss(Scale::Small);
        assert_eq!(t.to_csv().lines().count(), all_datasets().len() + 1);
        let t = figure6(Scale::Small);
        assert_eq!(t.to_csv().lines().count(), all_datasets().len() * 2 + 1);
        let t = table1(Scale::Small);
        assert_eq!(t.to_csv().lines().count(), TABLE1_DATASETS.len() + 1);
    }
}
